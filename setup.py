"""Setup shim.

The execution environment has no ``wheel`` package, so PEP-517
editable installs (which build a wheel) fail.  This setup.py lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path, which needs only setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Two-Phase Commit Optimizations and Tradeoffs "
        "in the Commercial Environment' (ICDE 1993)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    entry_points={"console_scripts": ["repro-2pc = repro.cli:main"]},
)
