"""Tests for the observability layer: span tracing, reports, profiling.

The span-tree shape tests pin the tracer's output to the paper's
figures: Figure 1 (simple 2PC, one coordinator and one subordinate)
and Figure 2's Presumed Abort flow/force sequence (prepare, vote-yes,
commit, ack per subordinate; prepared and committed forced at the
subordinate, committed forced and end unforced at the coordinator).
"""

import json

import pytest

from repro.cli import main as cli_main
from repro.core.cluster import Cluster
from repro.core.config import BASIC_2PC, PRESUMED_ABORT, PRESUMED_NOTHING
from repro.core.spec import flat_tree
from repro.lrm.operations import write_op
from repro.obs import (
    KIND_LOG,
    KIND_MESSAGE,
    KIND_PHASE,
    KIND_TXN,
    KernelProfiler,
    RunReport,
    Span,
    SpanTracer,
    build_tree,
    render_span_tree,
    spans_from_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.sim.kernel import Simulator


def committing_spec(root, children, txn_id="T1"):
    spec = flat_tree(root, children, txn_id=txn_id)
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    return spec


def traced_commit(config, nodes, txn_id="T1"):
    cluster = Cluster(config, nodes=nodes)
    tracer = SpanTracer().attach(cluster)
    handle = cluster.run_transaction(
        committing_spec(nodes[0], nodes[1:], txn_id=txn_id))
    tracer.finish()
    return cluster, tracer, handle


class TestSpanTreePA:
    """Figure 2: Presumed Abort, one coordinator, two subordinates."""

    @pytest.fixture(scope="class")
    def run(self):
        return traced_commit(PRESUMED_ABORT, ["Coord", "Sub1", "Sub2"])

    def test_root_span(self, run):
        __, tracer, handle = run
        assert handle.outcome == "commit"
        roots = [s for s in tracer.spans if s.kind == KIND_TXN]
        assert len(roots) == 1
        root = roots[0]
        assert root.node == "Coord"
        assert root.txn_id == "T1"
        assert root.attributes["coordinator"] == "Coord"
        assert root.attributes["outcome"] == "committed"
        assert root.finished

    def test_every_span_descends_from_the_root(self, run):
        __, tracer, __h = run
        tree_roots, __children = build_tree(tracer.spans)
        assert len(tree_roots) == 1
        assert tree_roots[0].kind == KIND_TXN

    def test_figure2_message_sequence(self, run):
        __, tracer, __h = run
        messages = [s.name for s in tracer.spans if s.kind == KIND_MESSAGE
                    and not s.name.endswith(":data")]
        commit_msgs = [m for m in messages if m != "msg:data"]
        # 8 commit-phase flows: prepare x2, vote-yes x2, commit x2, ack x2.
        assert sorted(commit_msgs) == [
            "msg:ack", "msg:ack", "msg:commit", "msg:commit",
            "msg:prepare", "msg:prepare", "msg:vote-yes", "msg:vote-yes"]

    def test_figure2_force_sequence(self, run):
        __, tracer, __h = run
        forces = sorted((s.name, s.node) for s in tracer.spans
                        if s.kind == KIND_LOG)
        # Subordinates force prepared then committed; the coordinator
        # forces committed only (its end record is unforced under PA,
        # so no log-force span exists for it).
        assert forces == [
            ("log-force:committed", "Coord"),
            ("log-force:committed", "Sub1"),
            ("log-force:committed", "Sub2"),
            ("log-force:prepared", "Sub1"),
            ("log-force:prepared", "Sub2"),
        ]

    def test_phase_spans_per_node(self, run):
        __, tracer, __h = run
        phases = {(s.name, s.node) for s in tracer.spans
                  if s.kind == KIND_PHASE}
        assert phases == {
            ("prepare", "Coord"), ("prepare", "Sub1"), ("prepare", "Sub2"),
            ("in-doubt", "Sub1"), ("in-doubt", "Sub2"),
            ("commit", "Coord"), ("commit", "Sub1"), ("commit", "Sub2"),
        }

    def test_subordinate_prepared_force_inside_its_prepare_phase(self, run):
        __, tracer, __h = run
        by_id = {s.span_id: s for s in tracer.spans}
        for sub in ("Sub1", "Sub2"):
            force = next(s for s in tracer.spans
                         if s.name == "log-force:prepared"
                         and s.node == sub)
            parent = by_id[force.parent_id]
            assert (parent.name, parent.node) == ("prepare", sub)

    def test_all_spans_closed_and_ordered(self, run):
        __, tracer, __h = run
        for span in tracer.spans:
            assert span.finished, span
            assert span.end >= span.start, span

    def test_in_doubt_window_covers_the_decision_round_trip(self, run):
        __, tracer, __h = run
        in_doubt = next(s for s in tracer.spans
                        if s.name == "in-doubt" and s.node == "Sub1")
        # vote travels up (1 unit), decision forces + travels back down.
        assert in_doubt.duration >= 2.0


class TestSpanTreePN:
    """Figure 1 topology under Presumed Nothing: the coordinator
    forces commit-pending before any prepare, the subordinate forces
    an initiator record before its prepared record."""

    @pytest.fixture(scope="class")
    def run(self):
        return traced_commit(PRESUMED_NOTHING, ["Coord", "Sub"])

    def test_commit_pending_forced_before_prepare_phase(self, run):
        __, tracer, __h = run
        pending = next(s for s in tracer.spans
                       if s.name == "log-force:commit-pending")
        assert pending.node == "Coord"
        prepare = next(s for s in tracer.spans
                       if s.name == "prepare" and s.node == "Coord")
        assert pending.start <= prepare.start

    def test_subordinate_forces_initiator_then_prepared(self, run):
        __, tracer, __h = run
        sub_forces = [s.name for s in tracer.spans
                      if s.kind == KIND_LOG and s.node == "Sub"]
        assert sub_forces[:2] == ["log-force:initiator",
                                  "log-force:prepared"]

    def test_basic_2pc_has_no_pn_extras(self):
        __, tracer, __h = traced_commit(BASIC_2PC, ["Coord", "Sub"])
        names = {s.name for s in tracer.spans}
        assert "log-force:commit-pending" not in names
        assert "log-force:initiator" not in names


class TestAttachDetach:
    def test_attach_twice_same_cluster_is_noop(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        tracer = SpanTracer()
        tracer.attach(cluster)
        hooks_before = len(cluster.network.on_send)
        tracer.attach(cluster)
        assert len(cluster.network.on_send) == hooks_before

    def test_attach_other_cluster_while_attached_raises(self):
        first = Cluster(PRESUMED_ABORT, nodes=["a"])
        second = Cluster(PRESUMED_ABORT, nodes=["a"])
        tracer = SpanTracer().attach(first)
        with pytest.raises(RuntimeError):
            tracer.attach(second)

    def test_detach_removes_every_hook(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        tracer = SpanTracer().attach(cluster)
        tracer.detach()
        assert not cluster.network.on_send
        assert not cluster.network.on_deliver
        for node in cluster.nodes.values():
            assert not node.on_transition
            assert not node.on_note
            assert not node.log.on_write
            assert not node.log.on_flush
        tracer.detach()  # idempotent
        assert not tracer.attached

    def test_detached_tracer_records_nothing_further(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        tracer = SpanTracer().attach(cluster)
        tracer.detach()
        cluster.run_transaction(committing_spec("a", ["b"]))
        assert tracer.spans == []


class TestSerialisation:
    def make_spans(self):
        __, tracer, __h = traced_commit(PRESUMED_ABORT,
                                        ["Coord", "Sub1", "Sub2"])
        return tracer.spans

    def test_jsonl_round_trip(self):
        spans = self.make_spans()
        restored = spans_from_jsonl(spans_to_jsonl(spans))
        assert len(restored) == len(spans)
        for original, copy in zip(sorted(spans, key=lambda s: s.span_id),
                                  restored):
            assert copy.to_dict() == original.to_dict()

    def test_jsonl_bad_json_names_line(self):
        with pytest.raises(ValueError, match="line 2"):
            spans_from_jsonl('{"span_id": 1, "name": "x", "kind": "txn", '
                             '"node": "a", "txn_id": "t", "start": 0}\n'
                             'not json')

    def test_jsonl_missing_field_names_line(self):
        with pytest.raises(ValueError, match="line 1"):
            spans_from_jsonl('{"span_id": 1}')

    def test_chrome_export_structure(self):
        spans = self.make_spans()
        doc = spans_to_chrome(spans)
        events = doc["traceEvents"]
        assert events
        complete = [e for e in events if e["ph"] == "X"]
        metadata = [e for e in events if e["ph"] == "M"]
        assert len(complete) == len(spans)  # every span finished
        for event in complete:
            assert event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
            assert "ts" in event and "args" in event
        # One process per transaction, one named thread per node lane.
        assert {e["args"]["name"] for e in metadata
                if e["name"] == "process_name"} == {"txn T1"}
        assert {e["args"]["name"] for e in metadata
                if e["name"] == "thread_name"} == {"Coord", "Sub1", "Sub2"}

    def test_render_tree_shows_hierarchy(self):
        spans = self.make_spans()
        text = render_span_tree(spans)
        lines = text.splitlines()
        assert lines[0].startswith("[")       # root at zero indent
        assert any(line.startswith("  ") for line in lines)
        assert "txn T1 @Coord" in lines[0]

    def test_unfinished_span_renders_open_and_exports_instant(self):
        span = Span(span_id=1, name="x", kind=KIND_PHASE, node="a",
                    txn_id="t", start=1.0)
        assert "open" in render_span_tree([span])
        doc = spans_to_chrome([span])
        instant = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant


class TestZeroOverheadWhenDisabled:
    """With no tracer attached and no profiler installed, the hot
    paths must do no observability work at all."""

    def test_no_spans_created_without_tracer(self, monkeypatch):
        calls = []
        original = Span.__init__

        def spy(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Span, "__init__", spy)
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        cluster.run_transaction(committing_spec("a", ["b"]))
        assert calls == []

    def test_kernel_never_times_events_without_profiler(self, monkeypatch):
        calls = []
        import repro.sim.kernel as kernel_module

        def spy():
            calls.append(1)
            return 0.0

        monkeypatch.setattr(kernel_module, "perf_counter", spy)
        simulator = Simulator()
        fired = []
        for i in range(5):
            simulator.schedule(float(i), lambda: fired.append(1))
        simulator.run()
        simulator.schedule(10.0, lambda: fired.append(1))
        while simulator.step():
            pass
        assert fired and calls == []

    def test_profiler_record_not_called_without_activation(self,
                                                           monkeypatch):
        calls = []
        monkeypatch.setattr(
            KernelProfiler, "record",
            lambda self, event, seconds: calls.append(event))
        KernelProfiler()  # constructed but never activated/installed
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        cluster.run_transaction(committing_spec("a", ["b"]))
        assert calls == []

    def test_hook_lists_stay_empty_without_attach(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        cluster.run_transaction(committing_spec("a", ["b"]))
        assert not cluster.network.on_send
        assert not cluster.network.on_deliver
        for node in cluster.nodes.values():
            assert not node.on_transition
            assert not node.log.on_flush


class TestKernelProfiler:
    def test_records_by_event_type(self):
        profiler = KernelProfiler()
        simulator = Simulator()
        simulator.set_profiler(profiler)
        simulator.schedule(1.0, lambda: None, name="log-io:a")
        simulator.schedule(2.0, lambda: None, name="log-io:b")
        simulator.schedule(3.0, lambda: None, name="deliver:x")
        simulator.run()
        assert profiler.events == 3
        assert profiler.by_type["log-io"].count == 2
        assert profiler.by_type["deliver"].count == 1
        assert profiler.total_seconds >= 0
        assert profiler.histogram.count == 3

    def test_activation_reaches_simulators_built_later(self):
        profiler = KernelProfiler()
        with profiler:
            simulator = Simulator()
            simulator.schedule(0.0, lambda: None, name="tick")
            simulator.run()
        assert profiler.events == 1
        assert Simulator.default_profiler is None
        # Simulators built after deactivation are unprofiled.
        after = Simulator()
        assert after.profiler is None

    def test_deactivate_does_not_clobber_other_profiler(self):
        first, second = KernelProfiler(), KernelProfiler()
        first.activate()
        try:
            second.deactivate()  # not the active one; must be a no-op
            assert Simulator.default_profiler is first
        finally:
            first.deactivate()
        assert Simulator.default_profiler is None

    def test_render_and_to_dict(self):
        profiler = KernelProfiler()
        simulator = Simulator()
        simulator.set_profiler(profiler)
        simulator.schedule(1.0, lambda: None, name="deliver:x")
        simulator.run()
        text = profiler.render()
        assert "deliver" in text and "event type" in text
        data = profiler.to_dict()
        assert data["events"] == 1
        assert "deliver" in data["by_type"]
        assert KernelProfiler().render().startswith("kernel profile")

    def test_step_path_profiles_too(self):
        profiler = KernelProfiler()
        simulator = Simulator()
        simulator.set_profiler(profiler)
        simulator.schedule(1.0, lambda: None, name="tick")
        while simulator.step():
            pass
        assert profiler.events == 1


class TestRunReport:
    def test_from_run_collects_distributions(self):
        cluster, tracer, __h = traced_commit(PRESUMED_ABORT,
                                             ["Coord", "Sub1", "Sub2"])
        report = RunReport.from_run(cluster, tracer)
        assert report.counters["transactions"] == 1
        assert report.counters["commits"] == 1
        assert report.counters["commit flows"] == 8
        latency = report.distributions["txn latency"]
        assert latency.count == 1
        assert latency.mean > 0
        assert report.distributions["log-force latency"].count == 5
        assert "phase: commit" in report.distributions
        text = report.render()
        assert "txn latency" in text and "p99" in text
        parsed = json.loads(report.to_json())
        assert parsed["counters"]["commits"] == 1

    def test_report_without_tracer(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
        cluster.run_transaction(committing_spec("a", ["b"]))
        report = RunReport.from_run(cluster)
        assert report.counters["transactions"] == 1
        assert not any(name.startswith("phase:")
                       for name in report.distributions)

    def test_merge_accumulates(self):
        def one_report():
            cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
            cluster.run_transaction(committing_spec("a", ["b"]))
            return RunReport.from_run(cluster)

        merged = one_report().merge(one_report())
        assert merged.counters["transactions"] == 2
        assert merged.distributions["txn latency"].count == 2


class TestTraceCli:
    def test_trace_default_chrome_is_valid_trace_event_json(self, capsys):
        assert cli_main(["trace", "default", "--format", "chrome"]) == 0
        doc = json.loads(capsys.readouterr().out)
        events = doc["traceEvents"]
        assert events
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # The default workload is the Figure 2 PA topology: 8
        # commit-phase message spans plus 5 forced-log spans.
        commit_msgs = [e for e in events if e["ph"] == "X"
                       and e["name"].startswith("msg:")
                       and e["name"] != "msg:data"]
        assert len(commit_msgs) == 8
        forces = [e for e in events if e["ph"] == "X"
                  and e["name"].startswith("log-force:")]
        assert len(forces) == 5

    def test_trace_default_spans(self, capsys):
        assert cli_main(["trace", "default"]) == 0
        out = capsys.readouterr().out
        assert "txn T1 @Coord" in out
        assert "log-force:prepared @Sub1" in out

    def test_trace_default_jsonl_round_trips(self, capsys):
        assert cli_main(["trace", "default", "--format", "json"]) == 0
        spans = spans_from_jsonl(capsys.readouterr().out)
        assert any(s.kind == KIND_TXN for s in spans)

    def test_trace_transcript(self, capsys):
        assert cli_main(["trace", "default",
                         "--format", "transcript"]) == 0
        out = capsys.readouterr().out
        assert "Coord -> Sub1: prepare" in out

    def test_trace_profile_workload(self, capsys):
        assert cli_main(["trace", "read-mostly-reporting",
                         "--format", "json"]) == 0
        spans = spans_from_jsonl(capsys.readouterr().out)
        assert spans

    def test_trace_unknown_txn_fails(self, capsys):
        assert cli_main(["trace", "default", "--txn", "nope"]) == 1
        assert "no spans" in capsys.readouterr().err

    def test_trace_unknown_workload_fails(self, capsys):
        assert cli_main(["trace", "bogus"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_profile_obs_prints_run_report(self, capsys):
        assert cli_main(["profile", "read-mostly-reporting",
                         "--obs"]) == 0
        out = capsys.readouterr().out
        assert "Run report" in out and "txn latency" in out
