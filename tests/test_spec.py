"""Unit tests for transaction specifications and tree validation."""

import pytest

from repro.core.spec import (
    ParticipantSpec,
    TransactionSpec,
    chain_tree,
    flat_tree,
)
from repro.errors import ConfigurationError
from repro.lrm.operations import write_op


def test_flat_tree_shape():
    spec = flat_tree("r", ["a", "b"])
    assert spec.root.node == "r"
    assert [c.node for c in spec.children_of("r")] == ["a", "b"]
    assert spec.size == 3


def test_chain_tree_shape():
    spec = chain_tree(["a", "b", "c"])
    assert spec.root.node == "a"
    assert spec.participant("c").parent == "b"


def test_chain_tree_empty_rejected():
    with pytest.raises(ConfigurationError):
        chain_tree([])


def test_txn_ids_unique_by_default():
    assert flat_tree("r", []).txn_id != flat_tree("r", []).txn_id


def test_explicit_txn_id():
    assert flat_tree("r", [], txn_id="mine").txn_id == "mine"


def test_no_root_rejected():
    with pytest.raises(ConfigurationError, match="exactly one root"):
        TransactionSpec(participants=[
            ParticipantSpec(node="a", parent="b"),
            ParticipantSpec(node="b", parent="a")])


def test_two_roots_rejected():
    with pytest.raises(ConfigurationError, match="exactly one root"):
        TransactionSpec(participants=[
            ParticipantSpec(node="a"), ParticipantSpec(node="b")])


def test_duplicate_nodes_rejected():
    with pytest.raises(ConfigurationError, match="duplicate"):
        TransactionSpec(participants=[
            ParticipantSpec(node="a"),
            ParticipantSpec(node="a", parent="a")])


def test_unknown_parent_rejected():
    with pytest.raises(ConfigurationError, match="unknown parent"):
        TransactionSpec(participants=[
            ParticipantSpec(node="a"),
            ParticipantSpec(node="b", parent="ghost")])


def test_disconnected_tree_rejected():
    with pytest.raises(ConfigurationError):
        TransactionSpec(participants=[
            ParticipantSpec(node="a"),
            ParticipantSpec(node="b", parent="c"),
            ParticipantSpec(node="c", parent="b")])


def test_root_cannot_be_last_agent():
    with pytest.raises(ConfigurationError, match="root"):
        TransactionSpec(participants=[
            ParticipantSpec(node="a", last_agent=True)])


def test_two_last_agents_per_parent_rejected():
    with pytest.raises(ConfigurationError, match="more than one"):
        TransactionSpec(participants=[
            ParticipantSpec(node="r"),
            ParticipantSpec(node="a", parent="r", last_agent=True),
            ParticipantSpec(node="b", parent="r", last_agent=True)])


def test_chained_last_agents_allowed():
    spec = TransactionSpec(participants=[
        ParticipantSpec(node="r"),
        ParticipantSpec(node="a", parent="r", last_agent=True),
        ParticipantSpec(node="b", parent="a", last_agent=True)])
    assert spec.participant("b").last_agent


def test_participant_lookup():
    spec = flat_tree("r", ["a"])
    assert spec.participant("a").parent == "r"
    with pytest.raises(KeyError):
        spec.participant("ghost")
    assert spec.has_participant("a")
    assert not spec.has_participant("ghost")


def test_ops_carried_through():
    spec = flat_tree("r", ["a"])
    spec.participant("a").ops.append(write_op("k", 1))
    assert spec.participant("a").ops[0].key == "k"
