"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import TransactionSpec, flat_tree
from repro.lrm.operations import write_op
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator


def _loopback_available() -> bool:
    import socket
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
            probe.listen(1)
        finally:
            probe.close()
        return True
    except OSError:
        return False


def pytest_collection_modifyitems(config, items) -> None:
    """Skip ``live``-marked tests on sandboxes without loopback TCP."""
    if _loopback_available():
        return
    skip = pytest.mark.skip(reason="loopback networking unavailable")
    for item in items:
        if "live" in item.keywords:
            item.add_marker(skip)


@pytest.fixture
def simulator() -> Simulator:
    return Simulator(seed=7)


@pytest.fixture
def metrics() -> MetricsCollector:
    return MetricsCollector()


@pytest.fixture
def two_node_cluster() -> Cluster:
    return Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])


def updating_spec(root: str, children, **kwargs) -> TransactionSpec:
    """A flat tree where every participant performs one update."""
    spec = flat_tree(root, children, **kwargs)
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    return spec


def assert_atomic(cluster: Cluster, spec: TransactionSpec) -> str:
    """Assert every participant durably agrees on one outcome.

    Heuristic states count as disagreement unless they match the
    decided outcome.  Returns the agreed outcome ("commit"/"abort").
    """
    outcomes = {}
    for participant in spec.participants:
        recorded = cluster.recorded_outcome(participant.node, spec.txn_id)
        outcomes[participant.node] = recorded
    decided = {o for o in outcomes.values()
               if o in ("commit", "abort")}
    assert len(decided) <= 1, f"conflicting outcomes: {outcomes}"
    if not decided:
        # Nothing durable anywhere: uniformly aborted-by-presumption.
        return "abort"
    outcome = decided.pop()
    for node, recorded in outcomes.items():
        if recorded is None:
            # No record can only mean abort under PA presumption or a
            # read-only participant; it never contradicts an abort.
            assert outcome == "abort" or _node_was_read_only(
                cluster, spec, node), \
                f"{node} lost a committed transaction: {outcomes}"
    return outcome


def _node_was_read_only(cluster: Cluster, spec: TransactionSpec,
                        node: str) -> bool:
    participant = spec.participant(node)
    no_updates = all(not op.is_update for op in participant.ops) and \
        all(not op.is_update for ops in participant.rm_ops.values()
            for op in ops)
    return no_updates
