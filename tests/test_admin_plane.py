"""The admin plane over a live cluster: /metrics, /status, /indoubt,
/resolve, and the graceful drain path.

Everything here drives real sockets, so every test carries the
``live`` marker (skipped on sandboxes without loopback TCP).  The
scenarios mirror the paper's operational story: a partition strands an
in-doubt participant holding locks, the operator inspects it over
HTTP, forces a heuristic outcome through the wire, and the system
detects the damage when the true outcome arrives.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.core.config import PRESUMED_ABORT
from repro.core.spec import flat_tree
from repro.lrm.operations import write_op
from repro.net.message import MessageType
from repro.obs import JournalRecorder, MetricsRegistry, Watchdog
from repro.ops import OperatorConsole
from repro.transport import AdminServer, LiveCluster, ServeControl, serve
from repro.transport.wire import encode_frame, read_frame, spec_to_wire

from tests.test_registry import check_histograms, parse_exposition

pytestmark = pytest.mark.live


async def http_get(address, target, method="GET"):
    """One ``Connection: close`` HTTP request against the admin plane."""
    host, port = address
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"{method} {target} HTTP/1.1\r\n"
                 f"Host: {host}\r\n\r\n".encode("ascii"))
    raw = await asyncio.wait_for(reader.read(-1), 10)
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("ascii").split("\r\n")
    status = int(lines[0].split(" ", 2)[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    assert int(headers["content-length"]) == len(body)
    return status, headers, body.decode("utf-8")


def updating_spec(txn_id: str):
    spec = flat_tree("c", ["s"], txn_id=txn_id)
    spec.participant("c").ops.append(write_op("ledger", 1))
    spec.participant("s").ops.append(write_op("till", 1))
    return spec


async def start_plane(cluster):
    """The full operations plane on an already-built cluster."""
    registry = MetricsRegistry().attach(cluster)
    recorder = JournalRecorder().attach(cluster)
    admin = AdminServer(cluster, registry=registry, recorder=recorder,
                        watchdog=Watchdog(), console=OperatorConsole(cluster))
    await cluster.start()
    address = await admin.start()
    return admin, address, registry, recorder


# ----------------------------------------------------------------------
# Serve wiring: the full plane rides along with repro-2pc serve
# ----------------------------------------------------------------------
class TestServeWiring:
    def test_metrics_and_status_after_commit(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"

        async def scenario():
            addresses = {}
            up = asyncio.Event()
            holder = {}

            def ready(cluster, addrs):
                addresses.update(addrs)
                holder["cluster"] = cluster
                up.set()

            control = ServeControl()
            server = asyncio.ensure_future(serve(
                PRESUMED_ABORT, ["c", "s"], ready=ready, control=control,
                journal_path=str(journal_path)))
            await asyncio.wait_for(up.wait(), 10)
            host, port = addresses["c"]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(encode_frame({
                "kind": "begin",
                "spec": spec_to_wire(updating_spec("adm-1"))}))
            outcome = await asyncio.wait_for(read_frame(reader), 10)
            writer.close()

            admin = holder["cluster"].admin_address
            metrics = await http_get(admin, "/metrics")
            status = await http_get(admin, "/status")
            indoubt = await http_get(admin, "/indoubt")
            missing = await http_get(admin, "/nope")
            bad_method = await http_get(admin, "/metrics", method="POST")

            control.request_drain("test")
            await asyncio.wait_for(server, 15)
            return (outcome, metrics, status, indoubt, missing,
                    bad_method)

        outcome, metrics, status, indoubt, missing, bad_method = \
            asyncio.run(scenario())
        assert outcome["outcome"] == "commit"

        code, headers, body = metrics
        assert code == 200
        assert headers["content-type"].startswith(
            "text/plain; version=0.0.4")
        families = parse_exposition(body)
        check_histograms(families)
        sample = families["repro_transactions_total"]["samples"]
        assert sample[("", (("outcome", "commit"),))] == 1

        code, __, body = status
        assert code == 200
        data = json.loads(body)
        assert data["accepting"] is True
        assert data["transactions"]["completed"] == 1
        assert data["transactions"]["outcomes"] == {"commit": 1}
        assert data["transactions"]["in_doubt"] == 0
        assert data["heuristics"] == {"total": 0, "damaged": 0}
        assert set(data["nodes"]) == {"c", "s"}
        assert data["frames"]["sent"] > 0
        assert data["frames"]["received"] > 0

        assert missing[0] == 404
        assert bad_method[0] == 405

        # The `repro-2pc top` dashboard renders this admin state.
        from repro.obs import TopSnapshot, render_top
        snapshot = TopSnapshot.from_admin(data, json.loads(indoubt[2]))
        rendered = render_top(snapshot)
        assert "admin" in rendered
        assert "commit" in rendered
        assert "in-doubt (0)" in rendered

        # The drain flushed the journal with its reason in the header.
        header = json.loads(journal_path.read_text().splitlines()[0])
        assert header["meta"]["drain_reason"] == "test"
        assert header["meta"]["protocol"] == "presumed-abort"

    def test_sigterm_drains_and_flushes(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"

        async def scenario():
            up = asyncio.Event()
            server = asyncio.ensure_future(serve(
                PRESUMED_ABORT, ["c", "s"],
                ready=lambda cluster, addrs: up.set(),
                journal_path=str(journal_path)))
            await asyncio.wait_for(up.wait(), 10)
            os.kill(os.getpid(), signal.SIGTERM)
            await asyncio.wait_for(server, 15)

        asyncio.run(scenario())
        header = json.loads(journal_path.read_text().splitlines()[0])
        assert header["meta"]["drain_reason"] == "SIGTERM"


# ----------------------------------------------------------------------
# The operator's in-doubt workflow over HTTP
# ----------------------------------------------------------------------
class TestInDoubtConsole:
    def test_indoubt_resolve_and_damage(self):
        async def scenario():
            # Coordinator decides commit but the COMMIT to the
            # subordinate is swallowed; retries are quick so the true
            # outcome arrives promptly once the line heals.
            config = PRESUMED_ABORT.with_options(ack_timeout=0.2,
                                                 retry_interval=0.2)
            cluster = LiveCluster(config, nodes=["c", "s"])
            admin, address, registry, recorder = await start_plane(cluster)
            cluster.network.set_drop_filter(
                lambda m: m.msg_type is MessageType.COMMIT
                and m.dst == "s")
            try:
                handle = cluster.start_transaction(updating_spec("blk-1"))
                await cluster.wait_quiescent(timeout=10)
                # The coordinator decided (it still awaits the ACK, so
                # the handle completes only after the line heals).
                context = cluster.nodes["c"].ctx("blk-1")
                assert context.state.value == "committing"

                code, __, body = await http_get(address, "/indoubt")
                entries = json.loads(body)
                assert code == 200 and len(entries) == 1
                entry = entries[0]
                assert entry["node"] == "s" and entry["txn"] == "blk-1"
                assert entry["coordinator"] == "c"
                assert entry["phase"] == "prepared"
                assert entry["in_doubt_for"] > 0
                assert "till" in entry["held_keys"]

                # Scoped queries and the continuous watchdog agree.
                code, __, body = await http_get(address, "/indoubt?node=c")
                assert code == 200 and json.loads(body) == []
                code, __, __body = await http_get(address,
                                                  "/indoubt?node=ghost")
                assert code == 404
                code, __, body = await http_get(address, "/status")
                status = json.loads(body)
                assert status["transactions"]["in_doubt"] == 1
                assert status["watchdog"]["findings"]["in_doubt"] >= 1
                families = parse_exposition(
                    (await http_get(address, "/metrics"))[2])
                gauge = families["repro_txns_in_doubt"]["samples"]
                assert gauge[("", (("node", "s"),))] == 1
                wd = families["repro_watchdog_findings"]["samples"]
                assert wd[("", (("detector", "in_doubt"),))] >= 1

                # Bad operator input first...
                code, __, body = await http_get(
                    address, "/resolve?node=s&txn=blk-1&decision=maybe")
                assert code == 400
                code, __, __body = await http_get(
                    address, "/resolve?node=ghost&txn=blk-1&decision=abort")
                assert code == 404
                code, __, __body = await http_get(
                    address, "/resolve?node=s&txn=nope&decision=abort")
                assert code == 409

                # ...then the (wrong) heuristic call: abort at s while
                # the tree committed.
                code, __, body = await http_get(
                    address, "/resolve?node=s&txn=blk-1&decision=abort")
                assert code == 200
                resolved = json.loads(body)
                assert resolved["resolved"]["decision"] == "abort"
                # The heuristic event lands with the force-log write
                # (real I/O here), so wait for it rather than reading
                # the count out of the immediate response.
                await cluster.wait_quiescent(timeout=10)
                assert len(cluster.metrics.heuristics) == 1

                # A second resolve finds nothing in doubt.
                code, __, __body = await http_get(
                    address, "/resolve?node=s&txn=blk-1&decision=abort")
                assert code == 409

                # Heal the line; the retried COMMIT exposes the damage.
                cluster.network.set_drop_filter(None)
                for __attempt in range(100):
                    if cluster.metrics.damaged_heuristics():
                        break
                    await asyncio.sleep(0.05)
                assert cluster.metrics.damaged_heuristics()
                await cluster.wait_quiescent(timeout=10)
                assert handle.committed
                code, __, body = await http_get(address, "/status")
                status = json.loads(body)
                assert status["heuristics"]["total"] == 1
                assert status["heuristics"]["damaged"] == 1
                assert status["transactions"]["in_doubt"] == 0
            finally:
                await admin.stop()
                recorder.detach()
                registry.detach()
                await cluster.stop()

        asyncio.run(scenario())


# ----------------------------------------------------------------------
# Drain refusal at the transaction port
# ----------------------------------------------------------------------
class TestDrainRefusal:
    def test_begin_refused_while_draining(self):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["c", "s"])
            addresses = await cluster.start()
            cluster.accepting = False
            try:
                host, port = addresses["c"]
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame({
                    "kind": "begin",
                    "spec": spec_to_wire(updating_spec("late-1"))}))
                reply = await asyncio.wait_for(read_frame(reader), 10)
                writer.close()
                return reply
            finally:
                await cluster.stop()

        reply = asyncio.run(scenario())
        assert reply["kind"] == "error"
        assert reply["error"] == "draining"

    def test_admin_routes_without_collaborators(self):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["c"])
            await cluster.start()
            admin = AdminServer(cluster)     # no registry/console
            address = await admin.start()
            try:
                metrics = await http_get(address, "/metrics")
                indoubt = await http_get(address, "/indoubt")
                status = await http_get(address, "/status")
                return metrics, indoubt, status
            finally:
                await admin.stop()
                await cluster.stop()

        metrics, indoubt, status = asyncio.run(scenario())
        assert metrics[0] == 503
        assert indoubt[0] == 503
        assert status[0] == 200      # status degrades gracefully
