"""Wait For Outcome (§4): one recovery attempt, then complete with an
'outcome pending' indication while recovery continues in background."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT

from tests.conftest import updating_spec


def build(wait_for_outcome: bool):
    config = PRESUMED_ABORT.with_options(
        wait_for_outcome=wait_for_outcome, ack_timeout=10.0,
        retry_interval=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    # The subordinate commits but its ack is lost; the partition stays
    # up long enough to exhaust the single sanctioned retry.
    cluster.partition_at("c", "s", 5.25)
    cluster.heal_at("c", "s", 100.0)
    handle = cluster.start_transaction(spec)
    return cluster, spec, handle


def test_completes_early_with_outcome_pending():
    cluster, __, handle = build(wait_for_outcome=True)
    cluster.run_until(80.0)
    assert handle.done and handle.committed
    assert handle.outcome_pending
    assert handle.completed_at < 80.0


def test_background_recovery_resolves_after_heal():
    cluster, spec, handle = build(wait_for_outcome=True)
    cluster.run_until(400.0)
    assert handle.done and not handle.outcome_pending
    assert handle.recovery_completed_at is not None
    assert handle.recovery_completed_at > 100.0
    assert cluster.value("s", "key-s") == 1


def test_blocking_variant_waits_for_heal():
    cluster, __, handle = build(wait_for_outcome=False)
    cluster.run_until(80.0)
    assert not handle.done          # blocked on the missing ack
    cluster.run_until(400.0)
    assert handle.done and handle.committed
    assert not handle.outcome_pending
    assert handle.completed_at > 100.0


def test_wait_for_outcome_beats_blocking_on_latency():
    pending_cluster, __, pending_handle = build(wait_for_outcome=True)
    pending_cluster.run_until(400.0)
    blocking_cluster, __, blocking_handle = build(wait_for_outcome=False)
    blocking_cluster.run_until(400.0)
    assert pending_handle.completed_at < blocking_handle.completed_at


def test_normal_case_unaffected():
    """Failure-free runs look identical with or without the option."""
    config = PRESUMED_ABORT.with_options(wait_for_outcome=True,
                                         ack_timeout=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert not handle.outcome_pending
    assert cluster.metrics.recovery_flows(txn=spec.txn_id) == 0


def test_single_attempt_then_background():
    """§4: 'one attempt to contact a failed partner is attempted'
    before the operation completes as pending."""
    cluster, spec, handle = build(wait_for_outcome=True)
    cluster.run_until(80.0)
    completed_at = handle.completed_at
    # The first recovery attempt (one OUTCOME flow) preceded completion.
    recovery_before = cluster.metrics.flows.total(
        phase="recovery", txn=spec.txn_id)
    assert recovery_before >= 1
    assert handle.outcome_pending
    assert completed_at > 10.0  # not before the first ack timeout
