"""Operator console tests."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT, PRESUMED_NOTHING
from repro.errors import ConfigurationError, ProtocolError
from repro.ops import OperatorConsole

from tests.conftest import updating_spec


def stuck_in_doubt(config=None):
    """A subordinate stranded in the in-doubt window by a partition."""
    config = (config or PRESUMED_ABORT).with_options(
        ack_timeout=100.0, retry_interval=100.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    handle = cluster.start_transaction(spec)
    cluster.run_until(30.0)
    return cluster, spec, handle


def test_in_doubt_listing():
    cluster, spec, __ = stuck_in_doubt()
    console = OperatorConsole(cluster)
    entries = console.in_doubt_transactions()
    assert len(entries) == 1
    entry = entries[0]
    assert entry.node == "s" and entry.txn_id == spec.txn_id
    assert entry.coordinator == "c"
    assert entry.in_doubt_for > 20.0
    assert "key-s" in entry.held_keys
    assert spec.txn_id in str(entry)


def test_in_doubt_listing_scoped_to_node():
    cluster, __, __h = stuck_in_doubt()
    console = OperatorConsole(cluster)
    assert console.in_doubt_transactions(node="c") == []
    assert len(console.in_doubt_transactions(node="s")) == 1


def test_force_commit_matches_outcome():
    cluster, spec, handle = stuck_in_doubt()
    console = OperatorConsole(cluster)
    console.force_commit("s", spec.txn_id)
    cluster.heal("c", "s")
    cluster.run_until(400.0)
    assert handle.committed
    assert console.damage_report() == []   # operator guessed right
    assert len(console.heuristic_log()) == 1
    assert cluster.value("s", "key-s") == 1


def test_force_abort_creates_damage():
    cluster, spec, handle = stuck_in_doubt()
    console = OperatorConsole(cluster)
    console.force_abort("s", spec.txn_id)
    cluster.heal("c", "s")
    cluster.run_until(400.0)
    assert handle.committed        # the tree had decided commit
    damaged = console.damage_report()
    assert len(damaged) == 1 and damaged[0].node == "s"
    assert cluster.value("s", "key-s") is None


def test_force_outcome_frees_locks_immediately():
    cluster, spec, __ = stuck_in_doubt()
    console = OperatorConsole(cluster)
    console.force_abort("s", spec.txn_id)
    cluster.run_until(35.0)
    cluster.node("s").default_rm.locks.assert_released(spec.txn_id)


def test_resync_resolves_without_waiting():
    cluster, spec, handle = stuck_in_doubt()
    cluster.heal("c", "s")
    console = OperatorConsole(cluster)
    console.resync("s", spec.txn_id)
    cluster.run_until(60.0)       # well before the 100-unit retry timer
    assert handle.committed
    assert cluster.value("s", "key-s") == 1


def test_resync_rejected_under_pn():
    cluster, spec, __ = stuck_in_doubt(PRESUMED_NOTHING)
    console = OperatorConsole(cluster)
    with pytest.raises(ProtocolError, match="coordinator-driven"):
        console.resync("s", spec.txn_id)


def test_interventions_validate_state():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.run_transaction(spec)   # clean commit: nothing in doubt
    console = OperatorConsole(cluster)
    assert console.in_doubt_transactions() == []
    with pytest.raises(ProtocolError, match="not in doubt"):
        console.force_abort("s", spec.txn_id)
    with pytest.raises(ProtocolError):
        console.force_commit("s", "ghost")
    with pytest.raises(ConfigurationError):
        console.force_commit("ghost-node", spec.txn_id)


def test_bad_decision_value_rejected():
    cluster, spec, __ = stuck_in_doubt()
    console = OperatorConsole(cluster)
    with pytest.raises(ValueError):
        console.force_outcome("s", spec.txn_id, "maybe")
