"""Unit tests for the columnar observability storage layer."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.metrics.columns import (
    ColumnarTraceLog,
    CostTape,
    FloatColumn,
    IntColumn,
    PairColumn,
    StringInterner,
)
from repro.metrics.histogram import Histogram
from repro.obs import CostLedger
from repro.trace.recorder import TraceEvent, Tracer

from tests.conftest import updating_spec


class TestTypedColumns:
    def test_reads_like_a_list(self):
        column = FloatColumn([1.0, 2.5, 3.0])
        assert len(column) == 3
        assert list(column) == [1.0, 2.5, 3.0]
        assert column[1] == 2.5
        assert column[-1] == 3.0
        assert column == [1.0, 2.5, 3.0]
        assert column != [1.0, 2.5]
        assert bool(column)
        assert not bool(FloatColumn())

    def test_slice_returns_column(self):
        column = FloatColumn([float(i) for i in range(10)])
        window = column[4:]
        assert isinstance(window, FloatColumn)
        assert window == [4.0, 5.0, 6.0, 7.0, 8.0, 9.0]

    def test_growth_past_initial_capacity(self):
        column = IntColumn()
        for value in range(10_000):
            column.append(value)
        assert len(column) == 10_000
        assert column[9_999] == 9_999
        assert sum(column) == sum(range(10_000))

    def test_index_errors(self):
        column = FloatColumn([1.0])
        with pytest.raises(IndexError):
            column[1]
        with pytest.raises(IndexError):
            column[-2]

    def test_to_list(self):
        assert FloatColumn([0.5, 1.5]).to_list() == [0.5, 1.5]


class TestStringInterner:
    def test_roundtrip_and_none(self):
        interner = StringInterner()
        a = interner.intern("n0")
        b = interner.intern("n1")
        assert interner.intern("n0") == a != b
        assert interner.lookup(a) == "n0"
        assert interner.intern(None) == -1
        assert interner.lookup(-1) is None
        assert len(interner) == 2


class TestPairColumn:
    def test_reads_like_tuple_list(self):
        pairs = PairColumn([("a", 1.0), ("b", 2.0), ("a", 3.0)])
        assert len(pairs) == 3
        assert list(pairs) == [("a", 1.0), ("b", 2.0), ("a", 3.0)]
        assert pairs == [("a", 1.0), ("b", 2.0), ("a", 3.0)]
        assert pairs[1] == ("b", 2.0)

    def test_slice_shares_interner(self):
        pairs = PairColumn([("n", float(i)) for i in range(6)])
        window = pairs[4:]
        assert isinstance(window, PairColumn)
        assert window == [("n", 4.0), ("n", 5.0)]


class TestColumnarTraceLog:
    def _run_traced(self, columnar):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        tracer = Tracer(columnar=columnar).attach(cluster)
        # explicit txn id: the default draws from a process-global
        # counter, which would differ between the two runs compared
        spec = updating_spec("c", ["s"])
        spec.txn_id = "trace-diff"
        cluster.run_transaction(spec)
        return tracer

    def test_identical_to_list_backed_tracer(self):
        plain = self._run_traced(columnar=False)
        columnar = self._run_traced(columnar=True)
        assert isinstance(columnar.events, ColumnarTraceLog)
        assert len(columnar.events) == len(plain.events)
        assert list(columnar.events) == list(plain.events)

    def test_queries_materialize_events(self):
        tracer = self._run_traced(columnar=True)
        event = tracer.events[0]
        assert isinstance(event, TraceEvent)
        assert tracer.events[-1] == list(tracer.events)[-1]
        assert tracer.events[1:3] == list(tracer.events)[1:3]
        flows = tracer.flows()
        assert flows and all(e.kind == "flow" for e in flows)
        assert tracer.transcript()  # renders without error

    def test_out_of_range(self):
        log = ColumnarTraceLog()
        log.append(TraceEvent(time=1.0, kind="note", node="n",
                              text="hello"))
        assert log[0].text == "hello"
        with pytest.raises(IndexError):
            log[1]


class TestCostTape:
    def test_tape_records_cost_timeline(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger(tape=True).attach(cluster)
        spec = updating_spec("c", ["s"])
        cluster.run_transaction(spec)
        assert ledger.tape is not None and len(ledger.tape)
        by_kind = ledger.tape.counts_by_kind()
        assert by_kind["send"] == sum(
            entry.commit_flows + entry.data_flows + entry.recovery_flows
            for entry in ledger.entries.values())
        rows = ledger.tape.for_txn(spec.txn_id)
        assert rows
        times = [time for time, __, __ in rows]
        assert times == sorted(times)
        kinds = {kind for __, __, kind in rows}
        assert "send" in kinds and ("force" in kinds or "write" in kinds)

    def test_tape_off_by_default(self):
        assert CostLedger().tape is None


class TestHistogramTypedCounts:
    def test_serialisation_roundtrip(self):
        histogram = Histogram()
        for value in (0.01, 0.5, 2.0, 2.0, 150.0):
            histogram.record(value)
        clone = Histogram.from_dict(histogram.to_dict())
        assert list(clone.counts) == list(histogram.counts)
        assert clone.summary() == histogram.summary()
        merged = Histogram().merge(histogram).merge(clone)
        assert merged.count == 10
