"""Unit tests for the resource manager (2PC local participant)."""

import pytest

from repro.errors import DeadlockError
from repro.log.manager import LogManager
from repro.log.records import LogRecordType
from repro.lrm.operations import read_op, write_op
from repro.lrm.resource_manager import ResourceManager, Vote
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator


@pytest.fixture
def env(simulator, metrics):
    log = LogManager(simulator, metrics, "node", io_latency=0.1)
    return simulator, metrics, log


def make_rm(env, **kwargs):
    simulator, metrics, log = env
    return ResourceManager("rm", "node", simulator, metrics, log, **kwargs)


def run_ops(simulator, rm, txn, ops):
    done = []
    rm.perform(txn, ops, on_done=lambda: done.append(True))
    simulator.run()
    assert done


def prepare(simulator, rm, txn, allow_read_only=True):
    votes = []
    rm.prepare(txn, votes.append, allow_read_only=allow_read_only)
    simulator.run()
    assert len(votes) == 1
    return votes[0]


class TestDataPhase:
    def test_reads_and_writes_under_locks(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 5), read_op("k")])
        assert rm.store.read("t", "k") == 5
        assert rm.has_updates("t")
        assert rm.keys_touched("t") == {"k"}

    def test_wal_record_written_per_update(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("a", 1), write_op("b", 2)])
        assert metrics.total_log_writes(include_data=True) == 2
        assert metrics.total_log_writes() == 0  # protocol records only

    def test_deadlock_reported_via_callback(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        errors = []
        run_ops(simulator, rm, "t1", [write_op("a", 1)])
        run_ops(simulator, rm, "t2", [write_op("b", 1)])
        rm.perform("t1", [write_op("b", 2)], on_done=lambda: None)
        rm.perform("t2", [write_op("a", 2)], on_done=lambda: None,
                   on_error=errors.append)
        simulator.run()
        assert len(errors) == 1
        assert isinstance(errors[0], DeadlockError)

    def test_work_after_prepare_rejected(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("a", 1)])
        prepare(simulator, rm, "t")
        with pytest.raises(RuntimeError):
            rm.perform("t", [write_op("b", 2)], on_done=lambda: None)


class TestIntegratedVoting:
    def test_updater_votes_yes_and_keeps_locks(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        assert prepare(simulator, rm, "t") is Vote.YES
        assert rm.locks.holds("t", "k")

    def test_reader_votes_read_only_and_releases(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [read_op("k")])
        assert prepare(simulator, rm, "t") is Vote.READ_ONLY
        assert not rm.locks.holds("t", "k")
        assert rm.is_finished("t")

    def test_reader_votes_yes_when_read_only_disabled(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [read_op("k")])
        assert prepare(simulator, rm, "t",
                       allow_read_only=False) is Vote.YES
        assert rm.locks.holds("t", "k")  # baseline keeps 2PL locks

    def test_veto_votes_no_and_rolls_back(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        rm.veto_txns.add("t")
        assert prepare(simulator, rm, "t") is Vote.NO
        assert rm.store.get("k") is None
        assert not rm.locks.holds("t", "k")

    def test_commit_applies_and_releases(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        prepare(simulator, rm, "t")
        done = []
        rm.commit("t", on_done=lambda: done.append(True))
        simulator.run()
        assert done and rm.store.get("k") == 1
        assert not rm.locks.holds("t", "k")

    def test_abort_undoes_and_releases(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        rm.store.redo_write("k", "old")
        run_ops(simulator, rm, "t", [write_op("k", "new")])
        prepare(simulator, rm, "t")
        rm.abort("t")
        simulator.run()
        assert rm.store.get("k") == "old"

    def test_integrated_mode_writes_no_protocol_records(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        prepare(simulator, rm, "t")
        rm.commit("t")
        simulator.run()
        assert metrics.total_log_writes() == 0


class TestDetachedVoting:
    def test_own_log_forces_prepared_and_committed(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env, detached=True, shares_tm_log=False)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        assert prepare(simulator, rm, "t") is Vote.YES
        rm.commit("t")
        simulator.run()
        assert metrics.total_log_writes(node="node/rm") == 3
        assert metrics.forced_log_writes(node="node/rm") == 2

    def test_shared_log_forces_nothing(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env, detached=True, shares_tm_log=True)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        assert prepare(simulator, rm, "t") is Vote.YES
        rm.commit("t")
        simulator.run()
        assert metrics.total_log_writes(node="node/rm") == 3
        assert metrics.forced_log_writes(node="node/rm") == 0

    def test_local_flows_counted(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env, detached=True)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        prepare(simulator, rm, "t")
        rm.commit("t")
        simulator.run()
        kinds = metrics.local_flows.group_by("kind")
        assert kinds == {"prepare": 1, "vote": 1, "commit": 1, "ack": 1}

    def test_detached_abort_records(self, env):
        simulator, metrics, __ = env
        rm = make_rm(env, detached=True, shares_tm_log=False)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        prepare(simulator, rm, "t")
        rm.abort("t")
        simulator.run()
        by_type = metrics.log_writes.group_by("record_type",
                                              node="node/rm")
        assert by_type.get("lrm-aborted") == 1


class TestCrashRecovery:
    def test_crash_resets_volatile_state(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        run_ops(simulator, rm, "t", [write_op("k", 1)])
        rm.crash()
        assert rm.store.get("k") is None
        assert not rm.locks.holds("t", "k")

    def test_redo_and_relock(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        rm.redo("t", "k", 7)
        rm.relock("t", {"k"})
        simulator.run()
        assert rm.store.get("k") == 7
        assert rm.locks.holds("t", "k")

    def test_resolve_in_doubt_commit_releases(self, env):
        simulator, __, __log = env
        rm = make_rm(env)
        rm.redo("t", "k", 7)
        rm.relock("t", {"k"})
        simulator.run()
        rm.resolve_in_doubt("t", commit=True)
        assert not rm.locks.holds("t", "k")
        assert rm.store.get("k") == 7

    def test_reliable_flag_exposed(self, env):
        rm = make_rm(env, reliable=True)
        assert rm.reliable
