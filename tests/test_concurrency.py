"""Concurrent distributed transactions: contention, deadlock victims
propagating through 2PC, and isolation."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import read_op, write_op

from tests.conftest import assert_atomic


def two_node_cluster():
    return Cluster(PRESUMED_ABORT, nodes=["app", "db"])


def spec_touching(txn_keys, txn_id=None):
    participants = [
        ParticipantSpec(node="app",
                        ops=[write_op(f"local-{txn_id or 'x'}", 1)]),
        ParticipantSpec(node="db", parent="app",
                        ops=[write_op(k, txn_id or "v")
                             for k in txn_keys]),
    ]
    kwargs = {"txn_id": txn_id} if txn_id else {}
    return TransactionSpec(participants=participants, **kwargs)


def test_contending_transactions_serialize():
    """Two transactions writing the same key run one after the other;
    the final value is the later committer's."""
    cluster = two_node_cluster()
    first = cluster.start_transaction(spec_touching(["hot"], "t-first"))
    second_holder = {}

    def launch_second():
        second_holder["handle"] = cluster.start_transaction(
            spec_touching(["hot"], "t-second"))

    cluster.simulator.at(0.5, launch_second)
    cluster.run()
    assert first.committed and second_holder["handle"].committed
    assert cluster.value("db", "hot") in ("t-first", "t-second")
    # Strict 2PL: the second could only write after the first released,
    # so its commit finished later.
    assert second_holder["handle"].completed_at > first.completed_at


def test_distributed_deadlock_victim_aborts_cleanly():
    """Opposite-order key acquisition across two concurrent distributed
    transactions: the lock manager picks a victim, that participant
    votes NO, and the whole victim transaction aborts while the
    survivor commits."""
    cluster = two_node_cluster()
    first = TransactionSpec(txn_id="t-ab", participants=[
        ParticipantSpec(node="app", ops=[]),
        ParticipantSpec(node="db", parent="app",
                        ops=[write_op("a", 1), write_op("b", 1)])])
    second = TransactionSpec(txn_id="t-ba", participants=[
        ParticipantSpec(node="app", ops=[]),
        ParticipantSpec(node="db", parent="app",
                        ops=[write_op("b", 2), write_op("a", 2)])])
    handle_first = cluster.start_transaction(first)
    handle_second_holder = {}
    # Interleave: both grab their first key before either grabs its
    # second.  Enrollment takes 1 time unit; ops run on arrival, and
    # lock grants are processed in event order, so starting the second
    # transaction within the same delivery instant interleaves them.
    cluster.simulator.at(
        0.0, lambda: handle_second_holder.update(
            handle=cluster.start_transaction(second)))
    cluster.run()
    handle_second = handle_second_holder["handle"]
    outcomes = {handle_first.outcome, handle_second.outcome}
    # Either they serialized cleanly (both commit) or the deadlock was
    # broken by aborting exactly one.
    assert "commit" in outcomes
    if "abort" in outcomes:
        # The victim's effects are fully rolled back.
        victim = handle_first if handle_first.aborted else handle_second
        assert cluster.value("db", "a") != (
            1 if victim is handle_first else 2) or \
            cluster.value("db", "b") != (
            1 if victim is handle_first else 2)
    assert_atomic(cluster, first)
    assert_atomic(cluster, second)
    cluster.node("db").default_rm.locks.assert_released("t-ab")
    cluster.node("db").default_rm.locks.assert_released("t-ba")


def test_reader_blocks_writer_until_baseline_commit():
    """Without the read-only optimization a reader holds its shared
    lock to the end, stalling a writer for the full commit."""
    from repro.core.config import BASIC_2PC
    cluster = Cluster(BASIC_2PC, nodes=["app", "db"])
    cluster.node("db").default_rm.store.redo_write("item", "v0")
    reader = TransactionSpec(txn_id="t-reader", participants=[
        ParticipantSpec(node="app", ops=[write_op("r-log", 1)]),
        ParticipantSpec(node="db", parent="app", ops=[read_op("item")])])
    writer = TransactionSpec(txn_id="t-writer", participants=[
        ParticipantSpec(node="app", ops=[write_op("w-log", 1)]),
        ParticipantSpec(node="db", parent="app",
                        ops=[write_op("item", "v1")])])
    reader_handle = cluster.start_transaction(reader)
    writer_holder = {}
    cluster.simulator.at(1.5, lambda: writer_holder.update(
        handle=cluster.start_transaction(writer)))
    cluster.run()
    assert reader_handle.committed and writer_holder["handle"].committed
    assert writer_holder["handle"].completed_at > \
        reader_handle.completed_at
    assert cluster.value("db", "item") == "v1"


def test_many_disjoint_transactions_interleave_freely():
    """No contention: fifty overlapping transactions all commit and
    none waits on another's locks."""
    cluster = two_node_cluster()
    handles = []
    for i in range(50):
        spec = spec_touching([f"k{i}"], f"t-{i}")
        cluster.simulator.at(i * 0.05,
                             lambda s=spec: handles.append(
                                 cluster.start_transaction(s)))
    cluster.run()
    assert len(handles) == 50
    assert all(h.committed for h in handles)
    assert cluster.metrics.lock_holds  # measured, all short
    assert cluster.metrics.max_lock_hold() < 15.0
