"""Figures 1-8: the traced protocol runs must reproduce the papers'
sequence charts (arrow order, forced-write placement)."""

import pytest

from repro.net.message import MessageType
from repro.trace.figures import ALL_FIGURES


@pytest.fixture(scope="module")
def figures():
    return {num: build() for num, build in ALL_FIGURES.items()}


def flow_sequence(result, txn_index=0):
    txn = result.txn_ids[txn_index]
    return [(e.node, e.dst, e.text.split(" ")[0])
            for e in result.tracer.flows(txn)]


def test_all_figures_render(figures):
    for number, result in figures.items():
        assert result.diagram.strip(), f"figure {number} empty"
        assert f"Figure {number}" in result.diagram


def test_figure1_arrow_order(figures):
    flows = flow_sequence(figures[1])
    commit_flows = [f for f in flows if f[2] != "data"]
    assert [f[2] for f in commit_flows] == [
        "prepare", "vote-yes", "commit", "ack"]


def test_figure1_forced_writes_placement(figures):
    """Subordinate forces prepared before voting; coordinator forces
    committed before sending commit."""
    result = figures[1]
    events = result.tracer.for_txn(result.txn_ids[0])
    kinds = [(e.kind, e.node, e.text) for e in events
             if e.kind == "log" and e.forced]
    assert kinds[0] == ("log", "subordinate", "prepared")
    assert ("log", "coordinator", "committed") in kinds


def test_figure2_cascaded_propagation(figures):
    flows = [f for f in flow_sequence(figures[2]) if f[2] == "prepare"]
    assert flows == [("coordinator", "cascaded", "prepare"),
                     ("cascaded", "subordinate", "prepare")]


def test_figure3_pn_commit_pending_first(figures):
    """PN: the commit-pending force precedes the first prepare."""
    result = figures[3]
    events = result.tracer.for_txn(result.txn_ids[0])
    indexed = [(i, e) for i, e in enumerate(events)]
    pending = next(i for i, e in indexed
                   if e.kind == "log" and e.text == "commit-pending"
                   and e.node == "coordinator")
    prepare = next(i for i, e in indexed
                   if e.kind == "flow" and e.text.startswith("prepare"))
    assert pending < prepare


def test_figure3_late_acks_bubble_up(figures):
    result = figures[3]
    flows = flow_sequence(result)
    acks = [f for f in flows if f[2] == "ack"]
    assert acks == [("subordinate", "cascaded", "ack"),
                    ("cascaded", "coordinator", "ack")]


def test_figure4_reader_left_out_of_phase_two(figures):
    result = figures[4]
    flows = flow_sequence(result)
    to_reader = [f for f in flows if f[1] == "reader"]
    from_reader = [f for f in flows if f[0] == "reader" and f[2] != "data"]
    assert [f[2] for f in to_reader if f[2] != "data"] == ["prepare"]
    assert [f[2] for f in from_reader] == ["vote-read-only"]


def test_figure5_demonstrates_divergent_outcomes(figures):
    result = figures[5]
    assert "commit" in result.commentary and "abort" in result.commentary
    assert "different outcomes" in result.commentary


def test_figure6_two_flow_exchange(figures):
    flows = [f for f in flow_sequence(figures[6]) if f[2] != "data"]
    assert [f[2] for f in flows] == ["vote-yes", "commit"]
    assert flows[0][0] == "coordinator"   # delegation out
    assert flows[1][0] == "last-agent"    # decision back


def test_figure7_ack_piggybacks_on_next_transaction(figures):
    result = figures[7]
    first_txn = result.txn_ids[0]
    # No standalone ack flow in the first transaction...
    acks = [e for e in result.tracer.flows(first_txn)
            if e.text.startswith("ack")]
    assert acks == []
    # ...exactly three commit-protocol flows.
    commit_flows = [e for e in result.tracer.flows(first_txn)
                    if not e.text.startswith("data")]
    assert len(commit_flows) == 3


def test_figure8_no_acks_with_reliable_votes(figures):
    result = figures[8]
    flows = flow_sequence(result)
    assert not any(f[2] == "ack" for f in flows)
    votes = [f for f in flows if f[2] == "vote-yes"]
    assert len(votes) == 2  # subordinate->cascaded, cascaded->coordinator


def test_diagrams_mark_forced_writes(figures):
    assert "*log prepared" in figures[1].diagram
    assert "*log committed" in figures[1].diagram
    assert "log end" in figures[1].diagram


def test_transcript_contains_timestamps(figures):
    transcript = figures[1].tracer.transcript(figures[1].txn_ids[0])
    assert "[" in transcript and "->" in transcript
