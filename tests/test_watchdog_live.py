"""Watchdog in live-hook mode, and hook-chain restoration when the
full observability stack (tracer, ledger, journal, registry, watchdog)
attaches and detaches in arbitrary orders.

The watchdog's detectors are tested post-hoc in test_journal; here
they run *while the cluster is live* — attached through the internal
journal recorder, scanned mid-run the way the admin plane's recurring
timer does it.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.obs import (CostLedger, JournalRecorder, MetricsRegistry,
                       SpanTracer, Watchdog)

from tests.conftest import updating_spec
from tests.test_journal import _hook_state


def stuck_in_doubt_cluster():
    """A subordinate stranded in the in-doubt window by a partition."""
    config = PRESUMED_ABORT.with_options(ack_timeout=100.0,
                                         retry_interval=100.0)
    cluster = Cluster(config, nodes=["c", "s"])
    cluster.partition_at("c", "s", 4.5)
    return cluster, updating_spec("c", ["s"], txn_id="wd-1")


# ----------------------------------------------------------------------
# Live-hook mode
# ----------------------------------------------------------------------
class TestWatchdogLive:
    def test_findings_while_running(self):
        cluster, spec = stuck_in_doubt_cluster()
        watchdog = Watchdog(in_doubt_threshold=10.0).attach(cluster)
        assert watchdog.attached
        cluster.start_transaction(spec)
        cluster.run_until(30.0)
        # Scanned mid-run: the in-doubt window is still open, so it
        # fires at any duration; the swallowed COMMIT is an orphan.
        findings = watchdog.findings()
        detectors = {finding.detector for finding in findings}
        assert "in_doubt" in detectors
        assert "orphan" in detectors
        stuck = [f for f in findings if f.detector == "in_doubt"]
        assert stuck[0].txn == "wd-1" and stuck[0].node == "s"
        watchdog.detach()
        assert not watchdog.attached

    def test_quiet_cluster_no_findings(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        watchdog = Watchdog().attach(cluster)
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="ok-1"))
        assert watchdog.findings() == []
        watchdog.detach()

    def test_findings_resolve_when_window_closes(self):
        cluster, spec = stuck_in_doubt_cluster()
        watchdog = Watchdog(in_doubt_threshold=1000.0).attach(cluster)
        cluster.start_transaction(spec)
        cluster.run_until(30.0)
        assert any(f.detector == "in_doubt" for f in watchdog.findings())
        cluster.heal("c", "s")
        cluster.run_until(400.0)
        # The window closed under the (huge) threshold: no in-doubt
        # finding survives; the retried COMMIT closed the orphan too.
        detectors = {f.detector for f in watchdog.findings()}
        assert "in_doubt" not in detectors
        watchdog.detach()

    def test_detach_before_attach_is_noop(self):
        watchdog = Watchdog()
        watchdog.detach()
        assert not watchdog.attached
        assert watchdog.findings() == []


# ----------------------------------------------------------------------
# Attach/detach symmetry across the full stack
# ----------------------------------------------------------------------
def full_stack():
    return [SpanTracer(), CostLedger(), JournalRecorder(),
            MetricsRegistry(), Watchdog()]


# 120 permutations of 5 instruments is overkill for CI; every 5th
# covers each instrument in each position.
@pytest.mark.parametrize("order",
                         list(itertools.permutations(range(5)))[::5])
def test_full_stack_detach_any_order(order):
    """All five instruments detached in any order must restore the
    exact pre-attach hook chains, preserving foreign hooks."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])

    def sentinel(*args, **kwargs):
        pass

    cluster.network.on_send.append(sentinel)
    cluster.nodes["s1"].on_transition.append(sentinel)
    cluster.metrics.on_transaction.append(sentinel)
    before = _hook_state(cluster)
    before["metrics.on_transaction"] = list(cluster.metrics.on_transaction)
    before["metrics.on_heuristic"] = list(cluster.metrics.on_heuristic)

    instruments = full_stack()
    for instrument in instruments:
        instrument.attach(cluster)
    cluster.run_transaction(
        updating_spec("c", ["s1", "s2"], txn_id=f"stack-{order}"))
    assert _hook_state(cluster) != before

    for index in order:
        instruments[index].detach()
    after = _hook_state(cluster)
    after["metrics.on_transaction"] = list(cluster.metrics.on_transaction)
    after["metrics.on_heuristic"] = list(cluster.metrics.on_heuristic)
    assert after == before
    assert sentinel in cluster.network.on_send
    assert sentinel in cluster.metrics.on_transaction


def test_stacked_instruments_all_observe():
    """One transaction, five instruments: each captures its view."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
    tracer, ledger, recorder, registry, watchdog = full_stack()
    for instrument in (tracer, ledger, recorder, registry, watchdog):
        instrument.attach(cluster)
    cluster.run_transaction(updating_spec("c", ["s1", "s2"],
                                          txn_id="all-1"))
    tracer.finish()
    assert tracer.spans
    assert "all-1" in ledger.txn_ids()
    assert len(recorder) > 0
    assert registry.counter_samples()[
        'repro_transactions_total{outcome="commit"}'] == 1
    assert watchdog.findings() == []
    assert len(watchdog.entries()) == len(recorder)
    for instrument in (tracer, ledger, recorder, registry, watchdog):
        instrument.detach()
