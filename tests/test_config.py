"""Unit tests for protocol configuration."""

import pytest

from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
    Presumption,
    ProtocolConfig,
)
from repro.errors import ConfigurationError


def test_presets_presumptions():
    assert BASIC_2PC.presumption is Presumption.BASIC
    assert PRESUMED_ABORT.presumption is Presumption.ABORT
    assert PRESUMED_NOTHING.presumption is Presumption.NOTHING
    assert PRESUMED_COMMIT.presumption is Presumption.COMMIT


def test_baseline_has_no_optimizations():
    assert not BASIC_2PC.read_only
    assert not BASIC_2PC.leave_out
    assert not BASIC_2PC.last_agent


def test_pa_includes_paper_defaults():
    """Per §3: PA incorporates read-only and leave-inactive-partners-out."""
    assert PRESUMED_ABORT.read_only
    assert PRESUMED_ABORT.leave_out


def test_derived_logging_rules():
    assert PRESUMED_NOTHING.coordinator_logs_before_prepare
    assert PRESUMED_COMMIT.coordinator_logs_before_prepare
    assert not PRESUMED_ABORT.coordinator_logs_before_prepare
    assert not BASIC_2PC.coordinator_logs_before_prepare


def test_derived_ack_rules():
    assert not PRESUMED_ABORT.abort_needs_acks
    assert BASIC_2PC.abort_needs_acks
    assert not PRESUMED_COMMIT.commit_needs_acks
    assert PRESUMED_ABORT.commit_needs_acks


def test_derived_force_rules():
    assert not PRESUMED_COMMIT.subordinate_commit_forced
    assert PRESUMED_ABORT.subordinate_commit_forced
    assert not PRESUMED_ABORT.subordinate_abort_forced
    assert BASIC_2PC.subordinate_abort_forced


def test_pn_specifics():
    assert PRESUMED_NOTHING.subordinate_logs_initiator_record
    assert PRESUMED_NOTHING.coordinator_driven_recovery
    assert PRESUMED_NOTHING.reports_to_root
    assert not PRESUMED_ABORT.reports_to_root


def test_reports_to_root_override():
    config = PRESUMED_ABORT.with_options(propagate_heuristic_reports=True)
    assert config.reports_to_root


def test_with_options_returns_new_config():
    config = PRESUMED_ABORT.with_options(last_agent=True)
    assert config.last_agent
    assert not PRESUMED_ABORT.last_agent


def test_pn_early_ack_rejected():
    with pytest.raises(ConfigurationError):
        PRESUMED_NOTHING.with_options(early_ack=True)


@pytest.mark.parametrize("field", ["heuristic_timeout", "ack_timeout",
                                   "vote_timeout"])
def test_non_positive_timeouts_rejected(field):
    with pytest.raises(ConfigurationError):
        ProtocolConfig(**{field: 0.0})


def test_negative_io_latency_rejected():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(io_latency=-0.1)


def test_retry_interval_positive():
    with pytest.raises(ConfigurationError):
        ProtocolConfig(retry_interval=0.0)


def test_config_is_frozen():
    with pytest.raises(Exception):
        PRESUMED_ABORT.read_only = False
