"""Unit tests for stable storage."""

import pytest

from repro.log.records import LogRecord, LogRecordType
from repro.log.storage import StableStorage


def rec(lsn, txn="t", rtype=LogRecordType.PREPARED, **payload):
    return LogRecord(lsn=lsn, txn_id=txn, record_type=rtype, node="n",
                     forced=True, written_at=0.0, payload=payload)


def test_append_and_read_back():
    storage = StableStorage()
    storage.append([rec(1), rec(2, rtype=LogRecordType.COMMITTED)])
    assert len(storage) == 2
    assert storage.durable_lsn == 2


def test_out_of_order_append_rejected():
    storage = StableStorage()
    storage.append([rec(5)])
    with pytest.raises(ValueError):
        storage.append([rec(3)])


def test_records_for_txn():
    storage = StableStorage()
    storage.append([rec(1, "a"), rec(2, "b"), rec(3, "a")])
    assert len(storage.records_for("a")) == 2
    assert storage.records_for("missing") == []


def test_last_record_for_finds_most_recent():
    storage = StableStorage()
    storage.append([
        rec(1, "t", LogRecordType.PREPARED),
        rec(2, "t", LogRecordType.COMMITTED),
        rec(3, "t", LogRecordType.END),
    ])
    assert storage.last_record_for("t").record_type is LogRecordType.END
    assert storage.last_record_for(
        "t", LogRecordType.COMMITTED).lsn == 2
    assert storage.last_record_for("t", LogRecordType.ABORTED) is None


def test_has_record():
    storage = StableStorage()
    storage.append([rec(1, "t", LogRecordType.COMMIT_PENDING)])
    assert storage.has_record("t", LogRecordType.COMMIT_PENDING)
    assert not storage.has_record("t", LogRecordType.COMMITTED)


def test_records_returns_copy():
    storage = StableStorage()
    storage.append([rec(1)])
    listing = storage.records()
    listing.clear()
    assert len(storage) == 1


def test_empty_storage():
    storage = StableStorage()
    assert storage.durable_lsn == 0
    assert storage.last_record_for("t") is None


def test_record_payload_access():
    record = rec(1, coordinator="c")
    assert record.get("coordinator") == "c"
    assert record.get("missing", "dflt") == "dflt"
    assert "prepared" in record.describe()
    assert record.describe().startswith("*")  # forced marker
