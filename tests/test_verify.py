"""Tests for the runtime protocol checker — including that it actually
catches seeded violations."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import chain_tree
from repro.lrm.operations import write_op
from repro.net.message import MessageType
from repro.verify import ProtocolChecker

from tests.conftest import updating_spec


@pytest.mark.parametrize("config", [
    pytest.param(BASIC_2PC, id="basic"),
    pytest.param(PRESUMED_ABORT, id="pa"),
    pytest.param(PRESUMED_NOTHING, id="pn"),
    pytest.param(PRESUMED_COMMIT, id="pc"),
])
def test_clean_commit_has_no_violations(config):
    cluster = Cluster(config, nodes=["c", "s1", "s2"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s1", "s2"])
    cluster.run_transaction(spec)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()


def test_clean_abort_has_no_violations():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s1", "s2"])
    spec.participant("s2").veto = True
    cluster.run_transaction(spec)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()


def test_clean_under_crash_recovery():
    config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                         retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s"])
    cluster.crash_at("s", 4.5)
    cluster.restart_at("s", 40.0)
    cluster.start_transaction(spec)
    cluster.run_until(300.0)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()


def test_clean_with_optimizations():
    config = PRESUMED_ABORT.with_options(last_agent=True, long_locks=True,
                                         vote_reliable=True)
    cluster = Cluster(config, nodes=["c", "s"], reliable_nodes=["s"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s"])
    spec.participant("s").last_agent = True
    cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    checker.assert_clean()


class TestSeededViolations:
    """The checker must catch deliberately broken behaviour."""

    def test_commit_without_committed_record_flagged(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        checker = ProtocolChecker().attach(cluster)
        # A rogue COMMIT with no decision behind it.
        cluster.node("c").send(MessageType.COMMIT, "s", "rogue-txn")
        cluster.run()
        rules = {v.rule for v in checker.violations}
        assert "R3" in rules
        with pytest.raises(AssertionError):
            checker.assert_clean()

    def test_unsolicited_unprepared_vote_flagged(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        checker = ProtocolChecker().attach(cluster)
        cluster.node("s").send(MessageType.VOTE_YES, "c", "rogue-txn")
        cluster.run()
        rules = {v.rule for v in checker.violations}
        assert "R1" in rules and "R2" in rules

    def test_conflicting_outcomes_flagged(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        checker = ProtocolChecker().attach(cluster)
        cluster.node("c").log.write("dup", __import__(
            "repro.log.records", fromlist=["LogRecordType"]
        ).LogRecordType.COMMITTED)
        cluster.node("c").send(MessageType.COMMIT, "s", "dup")
        cluster.node("c").send(MessageType.ABORT, "s", "dup")
        cluster.run()
        assert any(v.rule == "R4" for v in checker.violations)

    def test_rogue_ack_flagged(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        checker = ProtocolChecker().attach(cluster)
        cluster.node("s").send(MessageType.ACK, "c", "rogue-txn",
                               payload={"reports": [],
                                        "outcome_pending": False})
        cluster.run()
        assert any(v.rule == "R5" for v in checker.violations)

    def test_atomicity_violation_flagged(self):
        """Seed divergent durable outcomes directly."""
        from repro.log.records import LogRecordType
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        checker = ProtocolChecker().attach(cluster)
        cluster.node("c").log.write("split", LogRecordType.COMMITTED,
                                    force=True)
        cluster.node("s").log.write("split", LogRecordType.ABORTED,
                                    force=True)
        cluster.run()
        checker.check_atomicity("split")
        assert any(v.rule == "R6" for v in checker.violations)


def test_violation_str():
    from repro.verify import Violation
    violation = Violation(rule="R1", txn_id="t", detail="broken")
    assert "[R1]" in str(violation) and "broken" in str(violation)


def test_check_atomicity_requires_attachment():
    checker = ProtocolChecker()
    with pytest.raises(RuntimeError):
        checker.check_atomicity("t")


def test_heuristic_damage_is_not_a_violation():
    """Heuristic mixed outcomes are damage (reported), not protocol
    violations — R6 carves them out."""
    from repro.core.config import HeuristicChoice
    config = PRESUMED_ABORT.with_options(
        heuristic_timeout=8.0, heuristic_choice=HeuristicChoice.ABORT,
        ack_timeout=15.0, retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    cluster.heal_at("c", "s", 60.0)
    cluster.start_transaction(spec)
    cluster.run_until(400.0)
    assert cluster.metrics.damaged_heuristics()
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()
