"""The PN/PC extension formulas must match the simulator, like the
paper's own PA rows do."""

import pytest

from repro.analysis.formulas import (
    TABLE3_PC_FORMULAS,
    TABLE3_PN_FORMULAS,
    pc_commit_costs,
    pn_commit_costs,
)
from repro.analysis.scenarios import run_table3_scenario
from repro.core.config import PRESUMED_COMMIT, PRESUMED_NOTHING

SCENARIO_KEYS = ["read_only", "last_agent", "unsolicited_vote",
                 "leave_out", "vote_reliable", "shared_logs",
                 "long_locks"]


@pytest.mark.parametrize("key", SCENARIO_KEYS)
@pytest.mark.parametrize("n,m", [(4, 1), (7, 3), (11, 4)])
def test_pn_formula_matches_simulation(key, n, m):
    analytic = TABLE3_PN_FORMULAS[key].costs(n, m)
    measured = run_table3_scenario(key, n, m,
                                   base=PRESUMED_NOTHING).total
    assert analytic.as_tuple() == measured.as_tuple(), \
        f"PN {key}(n={n}, m={m}): {analytic} vs {measured}"


@pytest.mark.parametrize("key", SCENARIO_KEYS)
@pytest.mark.parametrize("n,m", [(4, 1), (7, 3), (11, 4)])
def test_pc_formula_matches_simulation(key, n, m):
    analytic = TABLE3_PC_FORMULAS[key].costs(n, m)
    measured = run_table3_scenario(key, n, m,
                                   base=PRESUMED_COMMIT).total
    assert analytic.as_tuple() == measured.as_tuple(), \
        f"PC {key}(n={n}, m={m}): {analytic} vs {measured}"


def test_bases_match_whole_protocol_formulas():
    for n in (2, 5, 11):
        assert TABLE3_PN_FORMULAS["base"].costs(n, 0).as_tuple() == \
            pn_commit_costs(n).as_tuple()
        assert TABLE3_PC_FORMULAS["base"].costs(n, 0).as_tuple() == \
            pc_commit_costs(n).as_tuple()


class TestExtensionFindings:
    """The qualitative conclusions the extension tables support."""

    def test_last_agent_hurts_pc_logging(self):
        base = TABLE3_PC_FORMULAS["base"].costs(11, 0)
        optimized = TABLE3_PC_FORMULAS["last_agent"].costs(11, 4)
        assert optimized.forced_writes > base.forced_writes
        assert optimized.flows < base.flows  # still saves flows

    def test_long_locks_is_a_noop_under_pc(self):
        base = TABLE3_PC_FORMULAS["base"].costs(11, 0)
        optimized = TABLE3_PC_FORMULAS["long_locks"].costs(11, 4)
        assert optimized.as_tuple() == base.as_tuple()

    def test_vote_reliable_is_a_noop_under_pc(self):
        base = TABLE3_PC_FORMULAS["base"].costs(11, 0)
        optimized = TABLE3_PC_FORMULAS["vote_reliable"].costs(11, 4)
        assert optimized.as_tuple() == base.as_tuple()

    def test_read_only_saves_less_under_pc(self):
        """PC subordinates already skip the ack, so read-only removes
        one flow per member, not two."""
        from repro.analysis.formulas import TABLE3_FORMULAS
        pa_saving = (TABLE3_FORMULAS["basic"].costs(11, 0).flows
                     - TABLE3_FORMULAS["read_only"].costs(11, 4).flows)
        pc_saving = (TABLE3_PC_FORMULAS["base"].costs(11, 0).flows
                     - TABLE3_PC_FORMULAS["read_only"].costs(11, 4).flows)
        assert pa_saving == 8 and pc_saving == 4

    def test_shared_logs_strongest_under_pn(self):
        """PN's subordinates force three records each, so co-locating
        them as shared-log LRMs saves the most forces."""
        pn_saving = (TABLE3_PN_FORMULAS["base"].costs(11, 0).forced_writes
                     - TABLE3_PN_FORMULAS["shared_logs"].costs(
                         11, 4).forced_writes)
        from repro.analysis.formulas import TABLE3_FORMULAS
        pa_saving = (TABLE3_FORMULAS["basic"].costs(11, 0).forced_writes
                     - TABLE3_FORMULAS["shared_logs"].costs(
                         11, 4).forced_writes)
        assert pn_saving > pa_saving
