"""Flight-recorder journal, causal DAG, divergence differ, watchdogs.

The journal is the oracle plane for the deployment twin: it must (a)
record every flow / log write / force / lock event with correct causal
parents, (b) serialise losslessly, (c) diff *empty* on every pair the
repo guarantees identical — record vs replay, wheel vs heap scheduler,
serial vs parallel shards, artifact replays — and (d) localize a
seeded single-event mutation to the exact first divergent event.
Attach/detach symmetry across all stacked obs components is the
regression the hook-install contract demands.
"""

import itertools
import json

import pytest

from repro.cli import main as cli_main
from repro.core.cluster import Cluster
from repro.core.config import BASIC_2PC, PRESUMED_ABORT
from repro.obs import (
    CausalGraph,
    CostLedger,
    JournalEntry,
    JournalRecorder,
    SpanTracer,
    RunReport,
    Watchdog,
    build_causal_graph,
    diff_journals,
    journal_from_jsonl,
    journal_to_jsonl,
    normalize_txn_ids,
    prometheus_text,
    record_workload_journal,
    run_journal_self_check,
)
from repro.parallel.pool import RunSpec, run_specs
from repro.sim.events import HeapEventQueue, WheelEventQueue
from repro.sim.kernel import Simulator
from tests.conftest import updating_spec


@pytest.fixture
def default_queue():
    """Restore ``Simulator.default_queue_class`` after each test."""
    saved = Simulator.default_queue_class
    yield
    Simulator.default_queue_class = saved


def record_simple_run(columnar=False, txns=2):
    """Journal ``txns`` 3-node PA commits; returns (entries, cluster)."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
    recorder = JournalRecorder(columnar=columnar).attach(cluster)
    for i in range(txns):
        cluster.run_transaction(
            updating_spec("c", ["s1", "s2"], txn_id=f"T{i}"))
    recorder.detach()
    return recorder.entries(), cluster


def record_contended_run():
    """Two transactions racing for one key: exercises wait->grant."""
    cluster = Cluster(BASIC_2PC, nodes=["c", "s"])
    recorder = JournalRecorder().attach(cluster)
    from repro.core.spec import flat_tree
    from repro.lrm.operations import write_op
    handles = []
    for i in range(2):
        spec = flat_tree("c", ["s"], txn_id=f"race-{i}")
        for participant in spec.participants:
            participant.ops.append(write_op("shared-key", i))
        handles.append(cluster.start_transaction(spec))
    cluster.run()
    recorder.detach()
    return recorder.entries(), [h.outcome for h in handles]


# ----------------------------------------------------------------------
# Recorder
# ----------------------------------------------------------------------
class TestJournalRecorder:
    def test_entries_have_dense_stable_ids(self):
        entries, __ = record_simple_run()
        assert [e.eid for e in entries] == list(range(len(entries)))
        times = [e.t for e in entries]
        assert times == sorted(times)

    def test_all_event_kinds_recorded(self):
        entries, cluster = record_simple_run()
        kinds = {e.kind for e in entries}
        assert {"transition", "send", "deliver", "write", "harden",
                "grant", "release"} <= kinds
        sends = [e for e in entries if e.kind == "send"]
        assert len(sends) == cluster.network.sent

    def test_deliver_links_to_its_send(self):
        entries, __ = record_simple_run()
        by_eid = {e.eid: e for e in entries}
        delivers = [e for e in entries if e.kind == "deliver"]
        assert delivers
        for deliver in delivers:
            # One parent is the matching send (cross edge); the other,
            # if any, is the site's program-order predecessor.
            matches = [by_eid[p] for p in deliver.parents
                       if by_eid[p].kind == "send"
                       and by_eid[p].node == deliver.peer]
            assert len(matches) == 1
            send = matches[0]
            assert send.ref == deliver.ref
            assert send.peer == deliver.node

    def test_harden_links_to_its_write(self):
        entries, __ = record_simple_run()
        by_eid = {e.eid: e for e in entries}
        hardens = [e for e in entries if e.kind == "harden"]
        assert hardens
        for harden in hardens:
            matches = [by_eid[p] for p in harden.parents
                       if by_eid[p].kind == "write"
                       and by_eid[p].lsn == harden.lsn]
            assert len(matches) == 1
            assert matches[0].node == harden.node

    def test_release_links_to_grant(self):
        entries, __ = record_simple_run()
        by_eid = {e.eid: e for e in entries}
        releases = [e for e in entries if e.kind == "release"]
        assert releases
        for release in releases:
            grants = [by_eid[p] for p in release.parents
                      if by_eid[p].kind == "grant"]
            assert len(grants) == 1
            assert grants[0].ref == release.ref
            assert grants[0].txn == release.txn

    def test_wait_to_grant_edge_under_contention(self):
        entries, outcomes = record_contended_run()
        assert outcomes == ["commit", "commit"]
        by_eid = {e.eid: e for e in entries}
        waits = [e for e in entries if e.kind == "wait"]
        assert waits, "contended run must park a lock request"
        for wait in waits:
            grant = next(e for e in entries if e.kind == "grant"
                         and e.node == wait.node and e.txn == wait.txn
                         and e.ref == wait.ref and e.eid > wait.eid)
            assert wait.eid in grant.parents
            # The loser's grant causally follows the winner's release.
            graph = build_causal_graph(entries)
            releases = [e.eid for e in entries if e.kind == "release"
                        and e.ref == wait.ref and e.txn != wait.txn]
            assert any(graph.happens_before(r, grant.eid)
                       for r in releases)
        assert by_eid  # silence unused warning on small runs

    def test_parent_child_txn_edge_at_enrollment(self):
        entries, __ = record_simple_run(txns=1)
        by_eid = {e.eid: e for e in entries}
        # The subordinate's context-creation transition must link back
        # to the coordinator's side of the same transaction.
        creation = next(e for e in entries if e.kind == "transition"
                        and e.node == "s1" and e.peer is None)
        cross = [by_eid[p] for p in creation.parents
                 if by_eid[p].node == "c"]
        assert cross and all(p.txn == creation.txn for p in cross)

    def test_phase_stamped_from_protocol_state(self):
        entries, __ = record_simple_run(txns=1)
        prepare_sends = [e for e in entries if e.kind == "send"
                         and e.ref == "prepare"]
        assert prepare_sends
        # The coordinator is preparing when PREPAREs leave it.
        assert all(e.phase == "preparing" for e in prepare_sends)
        forced_commit_writes = [e for e in entries if e.kind == "write"
                                and e.ref == "commit" and e.forced]
        assert all(e.phase in ("committing", "preparing")
                   for e in forced_commit_writes)

    def test_columnar_storage_is_identical(self):
        plain, __ = record_simple_run(columnar=False)
        columnar, __ = record_simple_run(columnar=True)
        assert normalize_txn_ids(columnar) == normalize_txn_ids(plain)

    def test_attach_contract(self):
        first = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        second = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        recorder = JournalRecorder().attach(first)
        assert recorder.attach(first) is recorder
        with pytest.raises(RuntimeError):
            recorder.attach(second)
        recorder.detach()
        recorder.detach()  # idempotent
        assert not recorder.attached

    def test_detach_stops_recording(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        recorder = JournalRecorder().attach(cluster)
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="J1"))
        recorded = len(recorder)
        recorder.detach()
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="J2"))
        assert len(recorder) == recorded

    def test_kernel_events_opt_in(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        recorder = JournalRecorder(kernel_events=True).attach(cluster)
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="K1"))
        recorder.detach()
        kinds = {e.kind for e in recorder.entries()}
        assert "kernel" in kinds
        assert not cluster.simulator._event_hooks


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
class TestJournalSerialisation:
    def test_jsonl_round_trip(self):
        entries, __ = record_simple_run()
        text = journal_to_jsonl(entries, meta={"workload": "test"})
        meta, back = journal_from_jsonl(text)
        assert meta == {"workload": "test"}
        assert back == entries

    def test_unsupported_schema_rejected(self):
        text = json.dumps({"schema": "repro-journal/999", "meta": {}})
        with pytest.raises(ValueError, match="repro-journal/999"):
            journal_from_jsonl(text)

    def test_malformed_line_named(self):
        entries, __ = record_simple_run(txns=1)
        text = journal_to_jsonl(entries)
        broken = text.splitlines()
        broken[3] = "{not json"
        with pytest.raises(ValueError, match="line 4"):
            journal_from_jsonl("\n".join(broken))

    def test_missing_field_named(self):
        header = json.dumps({"schema": "repro-journal/1", "meta": {}})
        entry = json.dumps({"eid": 0, "t": 0.0, "kind": "send"})
        with pytest.raises(ValueError, match="line 2.*node"):
            journal_from_jsonl(header + "\n" + entry)

    def test_empty_journal_rejected(self):
        with pytest.raises(ValueError, match="schema header"):
            journal_from_jsonl("")

    def test_normalize_txn_ids_by_first_appearance(self):
        entries = [
            JournalEntry(0, 0.0, "send", "a", "txn-99", "active"),
            JournalEntry(1, 1.0, "send", "a", "txn-42", "active"),
            JournalEntry(2, 2.0, "send", "a", "txn-99", "active"),
            JournalEntry(3, 3.0, "kernel", "a", None, None),
        ]
        normalized = normalize_txn_ids(entries)
        assert [e.txn for e in normalized] == ["t0", "t1", "t0", None]
        # Input untouched.
        assert entries[0].txn == "txn-99"


# ----------------------------------------------------------------------
# Causal DAG
# ----------------------------------------------------------------------
class TestCausalGraph:
    def test_linearize_respects_parents(self):
        entries, __ = record_simple_run()
        graph = build_causal_graph(entries)
        order = {e.eid: i for i, e in enumerate(graph.linearize())}
        assert len(order) == len(entries)
        for entry in entries:
            for parent in entry.parents:
                assert order[parent] < order[entry.eid]

    def test_happens_before_send_deliver(self):
        entries, __ = record_simple_run(txns=1)
        graph = build_causal_graph(entries)
        deliver = next(e for e in entries if e.kind == "deliver")
        send = next(p for p in deliver.parents
                    if graph.entry(p).kind == "send")
        assert graph.happens_before(send, deliver.eid)
        assert not graph.happens_before(deliver.eid, send)

    def test_txn_cone_covers_transaction(self):
        entries, __ = record_simple_run(txns=2)
        graph = build_causal_graph(entries)
        txns = graph.txn_ids()
        assert len(txns) == 2
        cone = graph.txn_cone(txns[0])
        own = [e.eid for e in entries if e.txn == txns[0]]
        assert set(own) <= set(cone.by_eid)

    def test_critical_path_is_a_causal_chain(self):
        entries, __ = record_simple_run(txns=1)
        graph = build_causal_graph(entries)
        path = graph.critical_path()
        assert len(path) > 5
        for earlier, later in zip(path, path[1:]):
            assert earlier.eid in later.parents

    def test_cycle_detection(self):
        cyclic = [
            JournalEntry(0, 0.0, "send", "a", None, None, parents=[1]),
            JournalEntry(1, 1.0, "send", "a", None, None, parents=[0]),
        ]
        with pytest.raises(ValueError, match="cycle"):
            CausalGraph(cyclic).linearize()

    def test_roots_have_no_parents(self):
        entries, __ = record_simple_run(txns=1)
        graph = build_causal_graph(entries)
        roots = graph.roots()
        assert roots
        for eid in roots:
            assert not graph.parents_of(eid)


# ----------------------------------------------------------------------
# Divergence differ
# ----------------------------------------------------------------------
def _journal_text_for_seed(seed):
    """Module-level worker entry (picklable by reference)."""
    return journal_to_jsonl(
        record_workload_journal(PRESUMED_ABORT, seed=seed, txns=3))


class TestDiff:
    def test_record_replay_empty_for_all_protocols(self):
        results = run_journal_self_check(seed=13, txns=4)
        assert set(results) == {"basic", "presumed_abort",
                                "presumed_nothing", "presumed_commit"}
        for protocol, divergence in results.items():
            assert divergence is None, (
                f"{protocol}: {divergence.describe()}")

    def test_wheel_vs_heap_journals_equivalent(self, default_queue):
        Simulator.default_queue_class = WheelEventQueue
        wheel = record_workload_journal(PRESUMED_ABORT, seed=9, txns=5)
        Simulator.default_queue_class = HeapEventQueue
        heap = record_workload_journal(PRESUMED_ABORT, seed=9, txns=5)
        assert diff_journals(wheel, heap) is None

    def test_serial_vs_parallel_journals_equivalent(self):
        specs = [RunSpec(label=f"journal-{seed}",
                         fn=_journal_text_for_seed,
                         kwargs={"seed": seed}) for seed in (5, 6)]
        serial = run_specs(specs, workers=1)
        parallel = run_specs(specs, workers=2)
        for text_a, text_b in zip(serial, parallel):
            __, a = journal_from_jsonl(text_a)
            __, b = journal_from_jsonl(text_b)
            assert diff_journals(a, b) is None

    def test_global_interleaving_is_permitted(self):
        entries, __ = record_simple_run()
        # Stable sort by site preserves per-site order but scrambles
        # the global interleaving completely.
        reordered = sorted(entries, key=lambda e: e.node)
        assert diff_journals(entries, reordered) is None

    def test_single_event_mutation_localized(self):
        entries, __ = record_simple_run()
        mutated = list(entries)
        victim_index = next(
            i for i, e in enumerate(entries)
            if e.kind == "write" and e.forced and e.eid > 20)
        victim = entries[victim_index]
        clone = JournalEntry.from_dict(victim.to_dict())
        clone.forced = False
        mutated[victim_index] = clone
        divergence = diff_journals(entries, mutated)
        assert divergence is not None
        assert divergence.site == victim.node
        assert divergence.expected.eid == victim.eid
        assert divergence.observed.forced is False
        text = divergence.describe()
        assert victim.node in text and "expected" in text

    def test_earliest_divergence_wins(self):
        entries, __ = record_simple_run()
        mutated = [JournalEntry.from_dict(e.to_dict()) for e in entries]
        writes = [i for i, e in enumerate(entries) if e.kind == "write"]
        early, late = writes[1], writes[-1]
        mutated[early].ref = "mutated-early"
        mutated[late].ref = "mutated-late"
        divergence = diff_journals(entries, mutated)
        assert divergence.expected.eid == entries[early].eid

    def test_truncated_journal_ends_early(self):
        entries, __ = record_simple_run()
        divergence = diff_journals(entries, entries[:len(entries) // 2])
        assert divergence is not None
        assert "ends early" in divergence.reason

    def test_cross_edge_mispairing_detected(self):
        def pair(wiring):
            sends = [JournalEntry(0, 1.0, "send", "a", "t0", "active",
                                  ref="PREPARE", peer="b"),
                     JournalEntry(1, 1.0, "send", "a", "t0", "active",
                                  ref="PREPARE", peer="b")]
            delivers = [JournalEntry(2, 2.0, "deliver", "b", "t0",
                                     "active", ref="PREPARE", peer="a",
                                     parents=[wiring[0]]),
                        JournalEntry(3, 2.0, "deliver", "b", "t0",
                                     "active", ref="PREPARE", peer="a",
                                     parents=[wiring[1]])]
            return sends + delivers

        straight = pair((0, 1))
        crossed = pair((1, 0))
        assert diff_journals(straight, straight) is None
        divergence = diff_journals(straight, crossed)
        assert divergence is not None
        assert "causal parents" in divergence.reason

    def test_ignore_time_compares_structure_only(self):
        entries, __ = record_simple_run(txns=1)
        shifted = []
        for e in entries:
            clone = JournalEntry.from_dict(e.to_dict())
            clone.t = e.t + 100.0
            shifted.append(clone)
        assert diff_journals(entries, shifted) is not None
        assert diff_journals(entries, shifted, ignore_time=True) is None


# ----------------------------------------------------------------------
# Artifact replays journal identically
# ----------------------------------------------------------------------
class TestArtifactReplayJournals:
    def _instrumented(self, run_fn):
        recorder = JournalRecorder()
        result = run_fn(recorder.attach)
        recorder.detach()
        return normalize_txn_ids(recorder.entries()), result

    def test_chaos_schedule_replay_journals_equivalent(self):
        from repro.chaos.campaign import run_chaos_schedule
        schedule = [{"kind": "duplicate", "nth": 0, "copies": 2,
                     "gap": 1.0}]

        def run(instrument):
            return run_chaos_schedule("PA", "baseline", 12345, schedule,
                                      instrument=instrument)

        first, run_a = self._instrumented(run)
        second, run_b = self._instrumented(run)
        assert run_a.verdict == run_b.verdict
        assert first, "chaos replay journaled nothing"
        assert diff_journals(first, second) is None

    def test_torture_site_replay_journals_equivalent(self):
        from repro.torture.harness import record_sites, run_site
        sites, violations, __ = record_sites("PA", "baseline", 0)
        assert not violations
        site = sites[0]

        def run(instrument):
            return run_site("PA", "baseline", 0, site, "post",
                            instrument=instrument)

        first, run_a = self._instrumented(run)
        second, run_b = self._instrumented(run)
        assert run_a.verdict == run_b.verdict
        assert first, "torture replay journaled nothing"
        assert diff_journals(first, second) is None


# ----------------------------------------------------------------------
# Watchdogs
# ----------------------------------------------------------------------
class TestWatchdog:
    def test_clean_run_is_quiet(self):
        entries, __ = record_simple_run()
        assert Watchdog().scan(entries) == []

    def test_zero_threshold_flags_every_in_doubt_window(self):
        entries, __ = record_simple_run(txns=1)
        findings = Watchdog(in_doubt_threshold=0.0).scan(entries)
        in_doubt = [f for f in findings if f.detector == "in_doubt"]
        # Both subordinates pass through PREPARED on the commit path.
        assert {f.node for f in in_doubt} == {"s1", "s2"}
        assert all(f.value is not None and f.value >= 0
                   for f in in_doubt)

    def test_zero_threshold_flags_lock_wait_burn(self):
        entries, __ = record_contended_run()
        findings = Watchdog(lock_wait_threshold=0.0).scan(entries)
        burns = [f for f in findings if f.detector == "lock_wait"]
        assert burns
        assert all("shared-key" in f.message for f in burns)

    def test_truncated_journal_surfaces_open_work(self):
        entries, __ = record_simple_run(txns=1)
        cut = next(i for i, e in enumerate(entries)
                   if e.kind == "write" and e.forced) + 1
        findings = Watchdog().scan(entries[:cut])
        detectors = {f.detector for f in findings}
        assert "unacked_force" in detectors
        assert "orphan" in detectors

    def test_live_attachment_matches_offline_scan(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        watchdog = Watchdog(in_doubt_threshold=0.0).attach(cluster)
        cluster.run_transaction(
            updating_spec("c", ["s1", "s2"], txn_id="W1"))
        live = watchdog.findings()
        offline = Watchdog(in_doubt_threshold=0.0).scan(
            watchdog.entries())
        watchdog.detach()
        assert [f.to_dict() for f in live] == \
            [f.to_dict() for f in offline]
        assert live  # zero threshold fires on the prepared windows

    def test_run_report_surfaces_findings(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        watchdog = Watchdog(in_doubt_threshold=0.0).attach(cluster)
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="R1"))
        report = RunReport.from_run(cluster, watchdog=watchdog)
        watchdog.detach()
        assert report.counters["watchdog findings"] >= 1
        assert any("watchdog [in_doubt]" in note for note in report.notes)

    def test_prometheus_exposition_format(self):
        entries, __ = record_simple_run(txns=1)
        findings = Watchdog(in_doubt_threshold=0.0).scan(entries)
        text = prometheus_text(entries, findings)
        assert "# TYPE repro_journal_entries_total counter" in text
        assert 'repro_journal_entries_total{kind="send"}' in text
        for detector in ("in_doubt", "lock_wait", "orphan",
                         "unacked_force"):
            assert (f'repro_watchdog_findings_total'
                    f'{{detector="{detector}"}}') in text
        assert f'{{detector="in_doubt"}} {len(findings)}' in text
        assert "# TYPE repro_journal_last_time gauge" in text


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestJournalCLI:
    def test_journal_records_to_file(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        status = cli_main(["journal", "default", "--out", str(out),
                           "--watchdog", "--prom"])
        assert status == 0
        printed = capsys.readouterr().out
        assert "watchdog: no findings" in printed
        assert "repro_journal_entries_total" in printed
        meta, entries = journal_from_jsonl(out.read_text())
        assert meta["workload"] == "default"
        assert entries

    def test_journal_protocol_workload_to_stdout(self, capsys):
        status = cli_main(["journal", "presumed_commit", "--txns", "2"])
        assert status == 0
        out = capsys.readouterr().out
        __, entries = journal_from_jsonl(out)
        assert entries

    def test_journal_unknown_workload(self, capsys):
        assert cli_main(["journal", "no-such-workload"]) == 2

    def test_diff_equivalent_and_mutated(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        assert cli_main(["journal", "presumed_abort", "--txns", "3",
                         "--out", str(a)]) == 0
        assert cli_main(["journal", "presumed_abort", "--txns", "3",
                         "--out", str(b), "--columnar"]) == 0
        assert cli_main(["diff", str(a), str(b)]) == 0
        assert "journals equivalent" in capsys.readouterr().out

        lines = b.read_text().splitlines()
        for index, line in enumerate(lines[1:], start=1):
            data = json.loads(line)
            if data["kind"] == "write" and data["forced"]:
                data["forced"] = False
                lines[index] = json.dumps(data)
                mutated_eid = data["eid"]
                break
        b.write_text("\n".join(lines) + "\n")
        assert cli_main(["diff", str(a), str(b)]) == 1
        text = capsys.readouterr().out
        assert "first divergence" in text

        assert cli_main(["diff", str(a), str(b), "--json"]) == 1
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["equivalent"] is False
        assert verdict["divergence"]["expected"]["eid"] == mutated_eid

    def test_diff_unreadable_input(self, tmp_path, capsys):
        a = tmp_path / "a.jsonl"
        a.write_text("{not a journal")
        assert cli_main(["diff", str(a), str(a)]) == 2
        assert cli_main(["diff", str(tmp_path / "missing.jsonl"),
                         str(a)]) == 2


# ----------------------------------------------------------------------
# Attach/detach symmetry across stacked obs components
# ----------------------------------------------------------------------
def _hook_state(cluster):
    """Every hook list in the cluster, as (label, contents) pairs."""
    state = {}
    network = cluster.network
    for name in ("on_send", "on_transmit", "on_deliver", "on_handled"):
        state[f"network.{name}"] = list(getattr(network, name))
    for node_name, node in cluster.nodes.items():
        state[f"{node_name}.on_transition"] = list(node.on_transition)
        seen = set()
        for rm in [node] + node.all_rms():
            log = getattr(rm, "log", None)
            if log is None or id(log) in seen:
                continue
            seen.add(id(log))
            state[f"{node_name}.log{len(seen)}.on_write"] = \
                list(log.on_write)
            state[f"{node_name}.log{len(seen)}.on_flush"] = \
                list(log.on_flush)
        for index, rm in enumerate(node.all_rms()):
            locks = rm.locks
            state[f"{node_name}.locks{index}.on_grant"] = \
                list(locks.on_grant)
            state[f"{node_name}.locks{index}.on_release"] = \
                list(locks.on_release)
            state[f"{node_name}.locks{index}.on_wait"] = \
                list(locks.on_wait)
    state["simulator.event_hooks"] = list(cluster.simulator._event_hooks)
    return state


@pytest.mark.parametrize("order", list(itertools.permutations(range(3))))
def test_attach_detach_symmetry_any_order(order):
    """SpanTracer + CostLedger + JournalRecorder detached in any order
    must restore the exact pre-attach hook chains — including hooks
    installed by someone else before them."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])

    def sentinel(*args, **kwargs):
        pass

    cluster.network.on_deliver.append(sentinel)
    cluster.nodes["c"].on_transition.append(sentinel)
    before = _hook_state(cluster)

    instruments = [SpanTracer(), CostLedger(), JournalRecorder()]
    for instrument in instruments:
        instrument.attach(cluster)
    cluster.run_transaction(
        updating_spec("c", ["s1", "s2"], txn_id=f"sym-{order}"))
    assert _hook_state(cluster) != before  # hooks actually installed

    for index in order:
        instruments[index].detach()
    after = _hook_state(cluster)
    assert after == before
    # The foreign sentinel survived the stack's detach.
    assert sentinel in cluster.network.on_deliver
