"""Torture harness and fault-injection/recovery bugfix regressions."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.faults.injector import (
    CrashPlan,
    CrashSite,
    FaultInjector,
    FaultPlan,
)
from repro.metrics.collector import MetricsCollector
from repro.net.message import Message, MessageType
from repro.net.network import NetworkError
from repro.torture import (
    arm_crash,
    build_artifact,
    load_artifact,
    record_sites,
    replay_artifact,
    run_cell,
    run_site,
    save_artifact,
    spec_from_dict,
    spec_to_dict,
    torture_sweep,
)
from repro.torture.harness import (
    HORIZON,
    MAX_EVENTS,
    RESTART_DELAY,
    _build_cell,
    cell_spec,
)
from repro.verify import ProtocolChecker


# ----------------------------------------------------------------------
# Crash sites
# ----------------------------------------------------------------------
def test_crash_site_round_trip_and_validation():
    site = CrashSite("force", "n1", 2, label="prepare")
    assert CrashSite.from_dict(site.to_dict()) == site
    with pytest.raises(ValueError):
        CrashSite("flush", "n1", 0)
    with pytest.raises(ValueError):
        CrashSite("force", "n1", -1)


def test_crash_plan_site_mode_validation():
    site = CrashSite("send", "n0", 0)
    plan = CrashPlan("n0", site=site, when="post", restart_after=10.0)
    assert plan.site is site
    with pytest.raises(ValueError):
        CrashPlan("n1", site=site)            # node mismatch
    with pytest.raises(ValueError):
        CrashPlan("n0", site=site, when="during")
    with pytest.raises(ValueError):
        CrashPlan("n0", site=site, restart_at=5.0)
    with pytest.raises(ValueError):
        CrashPlan("n0")                       # neither at nor site


def test_recorder_finds_all_three_kinds():
    sites, violations, outcome = record_sites("PA", "baseline", 0)
    assert not violations
    assert outcome == "commit"
    kinds = {site.kind for site in sites}
    assert kinds == {"force", "send", "deliver"}
    # Ordinals are dense per (kind, node).
    seen = {}
    for site in sites:
        key = (site.kind, site.node)
        assert site.seq == seen.get(key, 0)
        seen[key] = site.seq + 1


# ----------------------------------------------------------------------
# The matrix (tier-1 smoke: two cells, every site, pre and post)
# ----------------------------------------------------------------------
def test_torture_cell_baseline_is_clean():
    result = run_cell("PA", "baseline", 0)
    assert result.clean, "\n".join(
        run.describe() for run in result.failures)
    assert result.sites
    assert len(result.runs) == 2 * len(result.sites)
    assert all(run.verdict == "ok" for run in result.runs)


def test_torture_cell_missing_rm_is_clean():
    """The degraded-recovery cell passes because the relock loss is
    surfaced as an anomaly (rule RL accepts surfaced, rejects silent)."""
    result = run_cell("PC", "missing-rm", 0)
    assert result.clean, "\n".join(
        run.describe() for run in result.failures)


def test_torture_sweep_is_deterministic_serial_vs_parallel():
    kwargs = dict(configs=["PA"], variants=["baseline", "read-only"],
                  seed=3)
    serial = torture_sweep(workers=1, **kwargs)
    parallel = torture_sweep(workers=2, **kwargs)
    again = torture_sweep(workers=1, **kwargs)
    assert serial.to_dict() == parallel.to_dict()
    assert serial.to_dict() == again.to_dict()
    assert serial.clean


def test_fuzz_is_deterministic_across_invocations():
    from repro.fuzz import fuzz
    first = fuzz(runs=8, seed=5)
    second = fuzz(runs=8, seed=5)
    assert first.describe() == second.describe()
    assert [str(v) for v in first.violations] == \
        [str(v) for v in second.violations]


def test_torture_sweep_validates_names():
    with pytest.raises(ValueError):
        torture_sweep(configs=["NOPE"])
    with pytest.raises(ValueError):
        torture_sweep(variants=["turbo"])


def test_torture_max_sites_truncation_is_reported():
    result = run_cell("PA", "baseline", 0, max_sites=3)
    assert len(result.sites) == 3
    assert result.sites_truncated > 0
    assert len(result.runs) == 6


# ----------------------------------------------------------------------
# Acceptance: a silently swallowed relock loss is caught as a failing
# site with a replayable artifact.
# ----------------------------------------------------------------------
def test_silent_relock_loss_is_caught(monkeypatch, tmp_path):
    # Re-introduce the bug: recovery "handles" the missing RM without
    # recording the anomaly.  Rule RL must now fail the sites whose
    # restart rebuilds in-doubt state against the vanished RM.
    monkeypatch.setattr(MetricsCollector, "record_recovery_anomaly",
                        lambda self, *args, **kwargs: None)
    result = run_cell("PA", "missing-rm", 0)
    assert result.failures, "silent relock loss went undetected"
    for run in result.failures:
        assert run.verdict == "violations"
        assert any("RL" in violation for violation in run.violations)

    # The failing site round-trips through a replayable artifact.
    failing = result.failures[0]
    artifact = build_artifact("PA", "missing-rm", 0,
                              failing.site.to_dict(), failing.when,
                              failing.verdict, failing.violations,
                              spec=cell_spec("PA", "missing-rm"))
    path = save_artifact(artifact, str(tmp_path))
    loaded = load_artifact(path)
    assert spec_to_dict(spec_from_dict(loaded["spec"])) == loaded["spec"]
    replayed = replay_artifact(loaded)
    assert replayed.verdict == failing.verdict
    assert replayed.violations == failing.violations


def test_load_artifact_rejects_foreign_json(tmp_path):
    path = tmp_path / "other.json"
    path.write_text('{"kind": "benchmark", "version": 1}')
    with pytest.raises(ValueError):
        load_artifact(str(path))


# ----------------------------------------------------------------------
# Satellite: relock anomaly is recorded, noted, and surfaced
# ----------------------------------------------------------------------
def test_relock_missing_rm_records_anomaly_and_note():
    sites, clean_violations, __ = record_sites("PA", "missing-rm", 0)
    assert not clean_violations
    notes = []
    hits = 0
    for site in sites:
        if site.node != "n1" or site.kind != "force":
            continue
        for when in ("pre", "post"):
            cluster, spec = _build_cell("PA", "missing-rm", 0)
            cluster.nodes["n1"].on_note.append(
                lambda node, txn, text: notes.append(text))
            arm_crash(cluster, site, when=when,
                      restart_after=RESTART_DELAY,
                      on_crash=lambda cluster=cluster:
                      cluster.nodes["n1"].detached_rms.pop("aux", None))
            handles = []
            cluster.simulator.call_soon(
                lambda cluster=cluster, spec=spec, handles=handles:
                handles.append(cluster.start_transaction(spec)))
            cluster.run_until(HORIZON, max_events=MAX_EVENTS)
            hits += cluster.metrics.recovery_anomaly_count(
                node="n1", kind="relock-missing-rm", detail="aux")
    assert hits > 0, "no crash site exercised the missing-RM relock path"
    assert any("cannot relock" in text for text in notes)


def test_recovery_anomaly_counter_in_run_report():
    from repro.obs.report import RunReport
    cluster = Cluster(PRESUMED_ABORT, nodes=["a"])
    cluster.metrics.record_recovery_anomaly("a", "relock-missing-rm",
                                            "aux")
    assert cluster.metrics.recovery_anomaly_count() == 1
    assert cluster.metrics.recovery_anomaly_count(
        node="a", kind="relock-missing-rm", detail="aux") == 1
    assert cluster.metrics.recovery_anomaly_count(node="b") == 0
    report = RunReport.from_run(cluster)
    assert report.counters["recovery anomalies"] == 1


# ----------------------------------------------------------------------
# Satellite: FaultInjector drop-filter composition
# ----------------------------------------------------------------------
def test_injector_composes_with_existing_drop_filter():
    cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])

    def user_filter(message):
        return message.msg_type is MessageType.PREPARE

    cluster.network.set_drop_filter(user_filter)
    injector = FaultInjector(cluster)
    injector.apply(FaultPlan().lose_messages(1.0, msg_types=("ack",)))
    injector.apply(FaultPlan().lose_messages(1.0, msg_types=("commit",)))

    active = cluster.network.drop_filter
    assert active(Message(MessageType.PREPARE, "t", "a", "b"))
    assert active(Message(MessageType.ACK, "t", "a", "b"))
    assert active(Message(MessageType.COMMIT, "t", "a", "b"))
    assert not active(Message(MessageType.VOTE_YES, "t", "a", "b"))

    injector.clear_message_loss()
    assert cluster.network.drop_filter is user_filter
    injector.clear_message_loss()              # idempotent
    assert cluster.network.drop_filter is user_filter


# ----------------------------------------------------------------------
# Satellite: heal() validates node names
# ----------------------------------------------------------------------
def test_heal_rejects_unknown_nodes():
    cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
    with pytest.raises(NetworkError):
        cluster.network.heal("a", "ghost")
    with pytest.raises(NetworkError):
        cluster.network.heal("ghost", "b")
    cluster.network.partition("a", "b")
    cluster.network.heal("a", "b")             # valid pair still works
    assert not cluster.network.is_partitioned("a", "b")


# ----------------------------------------------------------------------
# Satellite: ProtocolChecker attach is idempotent; detach removes hooks
# ----------------------------------------------------------------------
def test_checker_attach_idempotent_and_detachable():
    cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
    sends_before = len(cluster.network.on_send)
    checker = ProtocolChecker().attach(cluster)
    sends_attached = len(cluster.network.on_send)
    assert sends_attached == sends_before + 1
    assert checker.attach(cluster) is checker          # no-op re-attach
    assert len(cluster.network.on_send) == sends_attached
    assert checker.attached

    other = Cluster(PRESUMED_ABORT, nodes=["x"])
    with pytest.raises(RuntimeError):
        checker.attach(other)

    checker.detach()
    assert not checker.attached
    assert len(cluster.network.on_send) == sends_before
    checker.attach(other)                              # reusable after detach
    assert checker.attached


def test_checker_check_recovery_locks_requires_attachment():
    with pytest.raises(RuntimeError):
        ProtocolChecker().check_recovery_locks("a")


# ----------------------------------------------------------------------
# Armed crashes (unit-level semantics)
# ----------------------------------------------------------------------
def test_armed_send_pre_suppresses_the_send():
    """A 'pre' send crash means the message never left: the checker
    (installed after arming) must not observe the suppressed send."""
    sites, violations, __ = record_sites("PA", "baseline", 0)
    assert not violations
    site = next(s for s in sites if s.kind == "send" and s.node == "n0")
    run = run_site("PA", "baseline", 0, site, "pre")
    assert run.verdict == "ok", run.describe()


def test_armed_crash_rejects_bad_arguments():
    cluster, __ = _build_cell("PA", "baseline", 0)
    site = CrashSite("send", "n0", 0)
    with pytest.raises(ValueError):
        arm_crash(cluster, site, when="mid")
    with pytest.raises(ValueError):
        arm_crash(cluster, CrashSite("send", "ghost", 0))
