"""Heuristic decisions and damage reporting (§1, §3, Table 1)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    HeuristicChoice,
    PRESUMED_ABORT,
    PRESUMED_NOTHING,
)
from repro.core.spec import chain_tree
from repro.core.states import TxnState
from repro.lrm.operations import write_op

from tests.conftest import updating_spec


def heuristic_config(base, choice=HeuristicChoice.ABORT, **kwargs):
    defaults = dict(heuristic_timeout=8.0, heuristic_choice=choice,
                    ack_timeout=15.0, retry_interval=15.0)
    defaults.update(kwargs)
    return base.with_options(**defaults)


def partitioned_commit(base, choice=HeuristicChoice.ABORT):
    """Commit lost in a partition: the sub heuristically decides."""
    cluster = Cluster(heuristic_config(base, choice), nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    cluster.heal_at("c", "s", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(400.0)
    return cluster, spec, handle


def test_heuristic_abort_against_commit_is_damage():
    cluster, spec, handle = partitioned_commit(PRESUMED_ABORT,
                                               HeuristicChoice.ABORT)
    assert handle.committed
    damaged = cluster.metrics.damaged_heuristics()
    assert len(damaged) == 1
    assert damaged[0].decision == "abort"
    # The damage is real: the sub's update is gone despite the commit.
    assert cluster.value("s", "key-s") is None
    assert cluster.value("c", "key-c") == 1


def test_heuristic_commit_matching_outcome_is_clean():
    cluster, spec, handle = partitioned_commit(PRESUMED_ABORT,
                                               HeuristicChoice.COMMIT)
    assert handle.committed
    assert cluster.metrics.damaged_heuristics() == []
    events = cluster.metrics.heuristics
    assert len(events) == 1 and events[0].damaged is False
    assert cluster.value("s", "key-s") == 1


def test_heuristic_releases_locks_immediately():
    """The whole point: locks stop blocking other transactions."""
    config = heuristic_config(PRESUMED_ABORT)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    handle = cluster.start_transaction(spec)
    cluster.run_until(10.0)   # before the heuristic timer (at ~11.1)
    assert cluster.node("s").default_rm.locks.holds(spec.txn_id, "key-s")
    cluster.run_until(20.0)   # after it
    cluster.node("s").default_rm.locks.assert_released(spec.txn_id)
    del handle


def test_heuristic_decision_is_forced_to_the_log():
    cluster, spec, __ = partitioned_commit(PRESUMED_ABORT)
    records = [r for r in cluster.node("s").log.stable.records()
               if r.record_type.value.startswith("heuristic")]
    assert len(records) == 1 and records[0].forced


def test_no_heuristics_without_timeout():
    config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                         retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    cluster.heal_at("c", "s", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(400.0)
    assert cluster.metrics.heuristics == []
    assert handle.committed  # resolved by blocking recovery instead


def test_pn_reports_damage_to_root():
    nodes = ["root", "mid", "leaf"]
    cluster = Cluster(heuristic_config(PRESUMED_NOTHING), nodes=nodes)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    cluster.partition_at("mid", "leaf", 8.0)
    cluster.heal_at("mid", "leaf", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(500.0)
    assert handle.committed
    assert handle.heuristic_mixed
    assert [r.node for r in handle.heuristic_reports] == ["leaf"]


def test_pa_reports_only_to_immediate_coordinator():
    """R*'s choice: the root may be told 'committed' although a leaf
    heuristically aborted — PA does not forward reports upward."""
    nodes = ["root", "mid", "leaf"]
    cluster = Cluster(heuristic_config(PRESUMED_ABORT), nodes=nodes)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    cluster.partition_at("mid", "leaf", 8.0)
    cluster.heal_at("mid", "leaf", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(500.0)
    assert handle.committed
    assert not handle.heuristic_mixed         # root never hears
    damaged = cluster.metrics.damaged_heuristics()
    assert len(damaged) == 1                  # but the damage is real
    # The immediate coordinator (mid) did receive the report.
    mid_ctx = cluster.node("mid").ctx(spec.txn_id)
    assert any(r.node == "leaf" for r in mid_ctx.reports)


def test_heuristic_survives_crash():
    """The forced heuristic record lets a restarted node still detect
    and report the damage."""
    config = heuristic_config(PRESUMED_ABORT, inquiry_timeout=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)
    handle = cluster.start_transaction(spec)
    cluster.run_until(20.0)         # heuristic abort happened at s
    cluster.crash("s")
    cluster.heal("c", "s")
    cluster.restart_at("s", 30.0)
    cluster.run_until(400.0)
    damaged = cluster.metrics.damaged_heuristics()
    assert len(damaged) == 1
    assert cluster.node("s").ctx(spec.txn_id).state is TxnState.FORGOTTEN
    del handle


def test_heuristic_state_machine_transitions():
    cluster, spec, __ = partitioned_commit(PRESUMED_ABORT)
    # After resolution the context is forgotten; during the window it
    # was HEURISTIC_ABORTED (checked indirectly through the log).
    types = [r.record_type.value
             for r in cluster.node("s").log.records_for(spec.txn_id)]
    assert "heuristic-abort" in types
    assert "committed" in types   # the tree's outcome, recorded after
    # The heuristic record is durable, the outcome note need not be.
    stable_types = [r.record_type.value
                    for r in cluster.node("s").log.stable.records_for(
                        spec.txn_id)]
    assert "heuristic-abort" in stable_types
