"""Unsolicited Vote and OK-TO-LEAVE-OUT (§4)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.lrm.operations import read_op, write_op
from repro.net.message import MessageType

from tests.conftest import updating_spec


class TestUnsolicitedVote:
    def config(self):
        return PRESUMED_ABORT.with_options(unsolicited_vote=True)

    def test_no_prepare_flow_to_unsolicited_participant(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        spec.participant("s").unsolicited_vote = True
        handle = cluster.run_transaction(spec)
        assert handle.committed
        prepares = cluster.metrics.flows.total(
            msg_type=MessageType.PREPARE.value, txn=spec.txn_id)
        assert prepares == 0

    def test_saves_exactly_m_flows(self):
        nodes = ["c", "s1", "s2", "s3"]
        base = Cluster(PRESUMED_ABORT, nodes=nodes)
        base_spec = updating_spec("c", nodes[1:])
        base.run_transaction(base_spec)

        optimized = Cluster(self.config(), nodes=nodes)
        opt_spec = updating_spec("c", nodes[1:])
        opt_spec.participant("s1").unsolicited_vote = True
        opt_spec.participant("s2").unsolicited_vote = True
        optimized.run_transaction(opt_spec)

        assert (base.metrics.commit_flows(txn=base_spec.txn_id)
                - optimized.metrics.commit_flows(txn=opt_spec.txn_id)) == 2

    def test_vote_arrives_before_commit_initiation(self):
        """The unsolicited voter prepares itself as soon as its work
        completes — before the coordinator asks anything."""
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        spec.participant("s").unsolicited_vote = True
        order = []
        cluster.network.on_send.append(
            lambda m: order.append(m.msg_type))
        cluster.run_transaction(spec)
        vote_index = order.index(MessageType.VOTE_YES)
        commit_index = order.index(MessageType.COMMIT)
        assert vote_index < commit_index
        assert MessageType.PREPARE not in order

    def test_unsolicited_vote_carries_flag(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        spec.participant("s").unsolicited_vote = True
        flagged = []
        cluster.network.on_send.append(
            lambda m: flagged.append(m.flag("unsolicited"))
            if m.msg_type is MessageType.VOTE_YES else None)
        cluster.run_transaction(spec)
        assert flagged == [True]

    def test_unsolicited_read_only_participant(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = flat_tree("c", ["s"])
        spec.participant("c").ops.append(write_op("k", 1))
        spec.participant("s").ops.append(read_op("x"))
        spec.participant("s").unsolicited_vote = True
        handle = cluster.run_transaction(spec)
        assert handle.committed
        assert cluster.metrics.total_log_writes(node="s",
                                                txn=spec.txn_id) == 0

    def test_unsolicited_participant_forces_prepared(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        spec.participant("s").unsolicited_vote = True
        cluster.run_transaction(spec)
        assert cluster.metrics.forced_log_writes(node="s",
                                                 txn=spec.txn_id) == 2


class TestLeaveOut:
    def config(self):
        return PRESUMED_ABORT.with_options(leave_out=True)

    def warmed_cluster(self, offer=True):
        cluster = Cluster(self.config(), nodes=["c", "s1", "s2"])
        warmup = updating_spec("c", ["s1", "s2"])
        warmup.participant("s1").ok_to_leave_out = offer
        cluster.run_transaction(warmup)
        return cluster

    def test_left_out_partner_costs_nothing(self):
        cluster = self.warmed_cluster()
        spec = updating_spec("c", ["s2"])
        handle = cluster.run_transaction(spec)
        assert handle.committed
        assert cluster.metrics.commit_flows(src="s1", txn=spec.txn_id) == 0
        assert cluster.metrics.total_log_writes(node="s1",
                                                txn=spec.txn_id) == 0

    def test_without_offer_partner_is_swept_in(self):
        cluster = self.warmed_cluster(offer=False)
        spec = updating_spec("c", ["s2"])
        cluster.run_transaction(spec)
        # s1 is an inactive participant: it gets a prepare and votes
        # (read-only, since it did no work).
        assert cluster.metrics.commit_flows(src="s1", txn=spec.txn_id) == 1

    def test_offer_is_a_protected_variable(self):
        """§4: the OK-TO-LEAVE-OUT value takes effect only if the
        transaction commits."""
        cluster = Cluster(self.config(), nodes=["c", "s1", "s2"])
        warmup = updating_spec("c", ["s1", "s2"])
        warmup.participant("s1").ok_to_leave_out = True
        warmup.participant("s2").veto = True  # transaction aborts
        cluster.run_transaction(warmup)
        spec = updating_spec("c", ["s2"])
        cluster.run_transaction(spec)
        # The aborted offer never took effect: s1 is swept in.
        assert cluster.metrics.commit_flows(src="s1", txn=spec.txn_id) == 1

    def test_receiving_work_cancels_leave_out(self):
        """Leaving out applies only to transactions in which no data is
        exchanged with the partner."""
        cluster = self.warmed_cluster()
        spec = updating_spec("c", ["s1", "s2"])  # s1 active again
        handle = cluster.run_transaction(spec)
        assert handle.committed
        assert cluster.value("s1", "key-s1") == 1
        assert cluster.metrics.commit_flows(src="s1", txn=spec.txn_id) == 2

    def test_cascaded_offer_requires_whole_subtree(self):
        """A participant may offer leave-out only if every member of
        its subtree offered it."""
        cluster = Cluster(self.config(), nodes=["c", "mid", "leaf"])
        warmup = TransactionSpec(participants=[
            ParticipantSpec(node="c", ops=[write_op("a", 1)]),
            ParticipantSpec(node="mid", parent="c", ops=[write_op("b", 1)],
                            ok_to_leave_out=True),
            ParticipantSpec(node="leaf", parent="mid",
                            ops=[write_op("d", 1)],
                            ok_to_leave_out=False)])
        cluster.run_transaction(warmup)
        # mid's subtree did not uniformly offer, so mid cannot be left
        # out of the next transaction.
        spec = flat_tree("c", [])
        spec.participant("c").ops.append(write_op("e", 1))
        cluster.run_transaction(spec)
        assert cluster.metrics.commit_flows(src="mid", txn=spec.txn_id) >= 1

    def test_disabled_config_never_leaves_out(self):
        cluster = Cluster(PRESUMED_ABORT.with_options(leave_out=False),
                          nodes=["c", "s1"])
        warmup = updating_spec("c", ["s1"])
        warmup.participant("s1").ok_to_leave_out = True
        cluster.run_transaction(warmup)
        spec = flat_tree("c", [])
        spec.participant("c").ops.append(write_op("e", 1))
        cluster.run_transaction(spec)
        assert cluster.metrics.commit_flows(src="s1", txn=spec.txn_id) == 1

    def test_figure5_partitioned_tree_damage(self):
        """Figure 5: leaving a shared partner out of two disjoint
        subtrees lets one logical unit of work reach two outcomes."""
        from repro.trace.figures import figure5
        result = figure5()
        left, right = result.txn_ids
        left_outcome = result.cluster.recorded_outcome("Pd", left)
        right_outcome = result.cluster.recorded_outcome("Pe", right)
        assert left_outcome == "commit"
        assert right_outcome in (None, "abort")  # PA aborts log nothing
        assert "different outcomes" in result.commentary
