"""Group-commit edge cases: the force-batching contract under fire.

Pins the two confirmed bugs this PR fixes:

* Liveness: a timeout-armed force whose group timer fires during an
  in-flight I/O must not be stranded — the completion path has to
  start the next I/O or re-arm the timer for the leftovers.
* Cost accounting: a force request whose target LSN is covered by the
  in-flight flush must piggyback on that I/O's completion rather than
  scheduling a second physical I/O that hardens nothing.
"""

import pytest

from repro.log.group_commit import GroupCommitPolicy
from repro.log.manager import LogManager
from repro.log.records import LogRecordType


def make_log(simulator, metrics, io_latency, policy):
    return LogManager(simulator, metrics, "n1", io_latency=io_latency,
                      group_commit=policy)


class TestTimerDuringInflightIO:
    def test_force_stranded_by_timer_firing_during_io(self, simulator, metrics):
        """Regression (liveness): ISSUE 8 repro — group_size=4,
        timeout=0.2, io_latency=1.0; a second forced write at t=0.5 had
        its timer fire at t=0.7 into an in-flight I/O and was stranded
        forever."""
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=4, timeout=0.2))
        done = []
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: done.append("first"))
        simulator.schedule(0.5, lambda: log.write(
            "t1", LogRecordType.COMMITTED, force=True,
            on_durable=lambda: done.append("second")))
        simulator.run()
        assert done == ["first", "second"]
        assert log.pending_force_count == 0
        assert log.durable_lsn == 2

    def test_second_force_completes_at_deadline_plus_io(self, simulator, metrics):
        """The leftover request's I/O starts as soon as the in-flight one
        completes (its 0.7 deadline has already passed by then)."""
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=4, timeout=0.2))
        times = {}
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: times.setdefault("first", simulator.now))
        simulator.schedule(0.5, lambda: log.write(
            "t1", LogRecordType.COMMITTED, force=True,
            on_durable=lambda: times.setdefault("second", simulator.now)))
        simulator.run()
        # timer fires 0.2 -> I/O 0.2..1.2; leftover restarts 1.2 -> 2.2
        assert times["first"] == pytest.approx(1.2)
        assert times["second"] == pytest.approx(2.2)
        assert metrics.physical_ios("n1") == 2

    def test_completion_rearms_timer_when_deadline_in_future(self, simulator, metrics):
        """If the leftover request's deadline has NOT passed at I/O
        completion, the timer is re-armed for it rather than forcing an
        eager half-empty flush."""
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=4, timeout=5.0))
        times = {}
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: times.setdefault("first", simulator.now))
        # Group timer fires at 5.0 -> I/O 5.0..6.0.  Second request at
        # 5.5 (during the I/O) has deadline 10.5 > 6.0.
        simulator.schedule(5.5, lambda: log.write(
            "t1", LogRecordType.COMMITTED, force=True,
            on_durable=lambda: times.setdefault("second", simulator.now)))
        simulator.run()
        assert times["first"] == pytest.approx(6.0)
        # Re-armed timer fires at 10.5 -> I/O completes at 11.5.
        assert times["second"] == pytest.approx(11.5)
        assert log.pending_force_count == 0


class TestPiggybackForce:
    def test_force_covered_by_inflight_io_is_one_physical_io(self, simulator,
                                                             metrics):
        """Regression (cost accounting): ISSUE 8 repro — forced write then
        immediate force() scheduled two physical I/Os where one hardens
        everything."""
        log = make_log(simulator, metrics, 0.5, GroupCommitPolicy(1, None))
        done = []
        log.write("t1", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: done.append("write"))
        log.force(lambda: done.append("force"))
        simulator.run()
        assert done == ["write", "force"]
        assert metrics.physical_ios("n1") == 1
        assert log.durable_lsn == 1

    def test_piggyback_callback_fires_with_the_covering_io(self, simulator,
                                                           metrics):
        log = make_log(simulator, metrics, 0.5, GroupCommitPolicy(1, None))
        times = {}
        log.write("t1", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: times.setdefault("write", simulator.now))
        log.force(lambda: times.setdefault("force", simulator.now))
        simulator.run()
        assert times["write"] == pytest.approx(0.5)
        assert times["force"] == pytest.approx(0.5)

    def test_new_record_during_io_still_gets_second_io(self, simulator, metrics):
        """A force targeting a record written AFTER the in-flight flush
        started must not piggyback — it genuinely needs another I/O."""
        log = make_log(simulator, metrics, 0.5, GroupCommitPolicy(1, None))
        done = []
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: done.append("first"))
        log.write("t1", LogRecordType.COMMITTED, force=False)
        log.force(lambda: done.append("second"))
        simulator.run()
        assert done == ["first", "second"]
        assert metrics.physical_ios("n1") == 2
        assert log.durable_lsn == 2

    def test_force_with_empty_buffer_targets_inflight_lsn(self, simulator,
                                                          metrics):
        """force() while the buffer is empty but an I/O is in flight rides
        that I/O (the old code targeted stable.durable_lsn, which happened
        to work only by accident of the piggyback comparison)."""
        log = make_log(simulator, metrics, 0.5, GroupCommitPolicy(1, None))
        log.write("t1", LogRecordType.COMMITTED, force=True)
        assert log.buffered_count == 1  # still buffered until I/O completes
        done = []
        simulator.schedule(0.2, lambda: log.force(lambda: done.append(simulator.now)))
        simulator.run()
        assert done == [pytest.approx(0.5)]
        assert metrics.physical_ios("n1") == 1


class TestCrashMidGroup:
    def test_crash_with_timer_armed_discards_group(self, simulator, metrics):
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=4, timeout=2.0))
        done = []
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: done.append("never"))
        simulator.schedule(0.5, log.crash)
        simulator.run()
        assert done == []
        assert log.pending_force_count == 0
        assert log.durable_lsn == 0  # nothing ever hardened

    def test_crash_during_io_discards_completion_by_epoch(self, simulator,
                                                          metrics):
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=2, timeout=None))
        done = []
        log.write("t1", LogRecordType.PREPARED, force=True,
                  on_durable=lambda: done.append("a"))
        log.write("t1", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: done.append("b"))
        simulator.schedule(0.5, log.crash)
        simulator.run()
        assert done == []
        assert log.durable_lsn == 0

    def test_log_usable_after_crash_mid_group(self, simulator, metrics):
        log = make_log(simulator, metrics, 1.0,
                       GroupCommitPolicy(group_size=4, timeout=2.0))
        log.write("t1", LogRecordType.PREPARED, force=True)
        simulator.schedule(0.5, log.crash)
        done = []

        def after_recovery():
            log.recover()
            log.write("t2", LogRecordType.COMMITTED, force=True,
                      on_durable=lambda: done.append(simulator.now))

        simulator.schedule(1.0, after_recovery)
        simulator.run()
        # Post-recovery group of 1 waits out the 2.0 timeout (armed at
        # t=1.0), then takes one 1.0 I/O.
        assert done == [pytest.approx(4.0)]
        assert log.durable_lsn >= 1


class TestForceLatencyHistogram:
    def test_latencies_under_batching(self, simulator, metrics):
        """Three staggered requests batched into one I/O see different
        queueing delays; the histogram must record each individually."""
        log = make_log(simulator, metrics, 0.1,
                       GroupCommitPolicy(group_size=3, timeout=10.0))
        for delay in (0.0, 0.1, 0.2):
            simulator.schedule(delay, lambda: log.write(
                "t1", LogRecordType.COMMITTED, force=True))
        simulator.run()
        assert metrics.physical_ios("n1") == 1
        latencies = sorted(d for node, d in metrics.force_latencies
                           if node == "n1")
        assert latencies == [pytest.approx(0.1), pytest.approx(0.2),
                             pytest.approx(0.3)]

    def test_piggyback_latency_recorded(self, simulator, metrics):
        log = make_log(simulator, metrics, 0.5, GroupCommitPolicy(1, None))
        log.write("t1", LogRecordType.COMMITTED, force=True)
        simulator.schedule(0.2, lambda: log.force(None))
        simulator.run()
        latencies = sorted(d for node, d in metrics.force_latencies
                           if node == "n1")
        assert latencies == [pytest.approx(0.3), pytest.approx(0.5)]
