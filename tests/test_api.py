"""Tests for the conversation-style application API."""

import pytest

from repro.api import Application, TransactionBuilder
from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.errors import ConfigurationError, ProtocolError


@pytest.fixture
def cluster():
    return Cluster(PRESUMED_ABORT,
                   nodes=["agency", "hotel", "car", "airline"])


@pytest.fixture
def app(cluster):
    return Application(cluster, home="agency")


def test_verb_by_verb_commit(cluster, app):
    txn = app.transaction()
    txn.write("agency", "itinerary", "NYC->LIS")
    txn.write("hotel", "room-42", "booked")
    txn.read("car", "availability")
    handle = txn.commit()
    assert handle.committed
    assert cluster.value("hotel", "room-42") == "booked"
    # The read-only car partner stayed out of phase two.
    assert cluster.metrics.commit_flows(src="car",
                                        txn=handle.txn_id) == 1


def test_fluent_chaining(cluster, app):
    handle = (app.transaction()
              .write("agency", "a", 1)
              .write("hotel", "b", 2)
              .commit())
    assert handle.committed


def test_syncpt_options_last_agent(cluster):
    cluster_la = Cluster(PRESUMED_ABORT.with_options(last_agent=True),
                         nodes=["agency", "airline"])
    app = Application(cluster_la, home="agency")
    txn = app.transaction()
    txn.write("agency", "itinerary", 1)
    txn.write("airline", "seat", 1)
    txn.syncpt_options("airline", last_agent=True)
    handle = txn.commit()
    cluster_la.finalize_implied_acks()
    assert handle.committed
    assert cluster_la.metrics.commit_flows(txn=handle.txn_id) == 2


def test_backout(cluster, app):
    txn = app.transaction()
    txn.write("hotel", "room", "held")
    handle = txn.backout()
    assert handle.aborted
    assert cluster.value("hotel", "room") is None


def test_deep_tree_via(cluster, app):
    txn = app.transaction()
    txn.write("hotel", "h", 1)
    txn.write("car", "c", 1, via="hotel")   # car cascades under hotel
    spec = txn.build_spec()
    assert spec.participant("car").parent == "hotel"
    handle = txn.commit()
    assert handle.committed


def test_via_requires_known_parent(app):
    txn = app.transaction()
    with pytest.raises(ConfigurationError, match="not yet part"):
        txn.write("car", "c", 1, via="hotel")


def test_detached_rm_routing(cluster):
    cluster.node("agency").add_detached_rm("ledger")
    app = Application(cluster, home="agency")
    txn = app.transaction()
    txn.write("agency", "bal", 100, rm="ledger")
    handle = txn.commit()
    assert handle.committed
    assert cluster.value("agency", "bal", rm_name="ledger") == 100


def test_unknown_nodes_rejected(cluster, app):
    with pytest.raises(ConfigurationError):
        Application(cluster, home="ghost")
    with pytest.raises(ConfigurationError):
        app.transaction().write("ghost", "k", 1)


def test_options_require_prior_work(app):
    txn = app.transaction()
    with pytest.raises(ConfigurationError, match="no work"):
        txn.syncpt_options("hotel", last_agent=True)


def test_home_cannot_be_last_agent(app):
    txn = app.transaction()
    txn.write("agency", "k", 1)
    with pytest.raises(ConfigurationError):
        txn.syncpt_options("agency", last_agent=True)


def test_terminated_builder_rejects_further_verbs(app):
    txn = app.transaction()
    txn.write("agency", "k", 1)
    txn.commit()
    with pytest.raises(ProtocolError):
        txn.write("agency", "j", 2)
    with pytest.raises(ProtocolError):
        txn.commit()


def test_touched_nodes(app):
    txn = app.transaction()
    txn.write("hotel", "h", 1)
    assert txn.touched_nodes == ["agency", "hotel"]


def test_leave_out_option_round_trip(cluster):
    config = PRESUMED_ABORT.with_options(leave_out=True)
    cluster2 = Cluster(config, nodes=["agency", "hotel"])
    app = Application(cluster2, home="agency")
    first = app.transaction()
    first.write("agency", "a", 1)
    first.write("hotel", "h", 1)
    first.syncpt_options("hotel", ok_to_leave_out=True)
    assert first.commit().committed
    # Next transaction does no hotel work: the hotel is left out.
    second = app.transaction()
    second.write("agency", "b", 2)
    handle = second.commit()
    assert handle.committed
    assert cluster2.metrics.commit_flows(src="hotel",
                                         txn=handle.txn_id) == 0
