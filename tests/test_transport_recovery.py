"""Crash-restart survival: backoff, supervised links, WAL reboot.

Pure tests cover :class:`BackoffPolicy` determinism, socket-error
classification and the watchdog's external-finding seam.  ``live``
tests exercise real sockets: sever/heal FIFO delivery, reconnecting
through a peer outage, backoff give-up, kill + WAL restart
mid-protocol (one torture cell end to end), periodic checkpoint
compaction under ``serve``, and the recovery observability surfaces.
"""

from __future__ import annotations

import asyncio
import errno

import pytest

from repro.core.config import PRESUMED_ABORT
from repro.core.spec import flat_tree
from repro.errors import ConfigurationError
from repro.log.records import LogRecordType
from repro.lrm.operations import write_op
from repro.obs.registry import MetricsRegistry
from repro.obs.watchdog import Watchdog, WatchdogFinding
from repro.sim.randomness import RandomStream
from repro.transport import (BackoffPolicy, LiveCluster, LiveFaultInjector,
                             TcpTransport, classify_socket_error,
                             load_records, restart_node, run_torture_cell,
                             serve)


# ----------------------------------------------------------------------
# Backoff policy (pure)
# ----------------------------------------------------------------------
class TestBackoffPolicy:
    def test_raw_delay_grows_exponentially_to_the_cap(self):
        policy = BackoffPolicy(base=0.05, factor=2.0, cap=0.4, jitter=0.0)
        assert policy.raw_delay(0) == pytest.approx(0.05)
        assert policy.raw_delay(1) == pytest.approx(0.1)
        assert policy.raw_delay(2) == pytest.approx(0.2)
        assert policy.raw_delay(3) == pytest.approx(0.4)
        assert policy.raw_delay(50) == pytest.approx(0.4)

    def test_schedule_is_deterministic_per_seed(self):
        policy = BackoffPolicy()
        first = policy.schedule(RandomStream(9), 8)
        second = policy.schedule(RandomStream(9), 8)
        other = policy.schedule(RandomStream(10), 8)
        assert first == second
        assert first != other

    def test_jitter_stays_within_the_band(self):
        policy = BackoffPolicy(base=0.05, factor=2.0, cap=2.0, jitter=0.5)
        rng = RandomStream(4)
        for attempt in range(12):
            raw = policy.raw_delay(attempt)
            delay = policy.delay(attempt, rng)
            assert raw * 0.5 <= delay <= raw * 1.5

    def test_zero_jitter_is_exact(self):
        policy = BackoffPolicy(base=0.05, jitter=0.0)
        rng = RandomStream(1)
        assert policy.delay(0, rng) == policy.raw_delay(0)
        assert policy.delay(5, rng) == policy.raw_delay(5)

    def test_exhaustion_is_bounded_by_max_attempts(self):
        policy = BackoffPolicy(max_attempts=3)
        assert not policy.exhausted(2)
        assert policy.exhausted(3)
        assert not BackoffPolicy().exhausted(10 ** 6)

    def test_bad_shapes_are_rejected(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(base=0.05, cap=0.01)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)


# ----------------------------------------------------------------------
# Socket-error classification (pure)
# ----------------------------------------------------------------------
class TestSocketErrorClassification:
    def test_known_errno_is_named_and_explained(self):
        message = classify_socket_error(
            OSError(errno.EPERM, "operation not permitted"))
        assert message.startswith("EPERM:")
        assert "forbidden" in message

    def test_unknown_errno_falls_back_to_the_message(self):
        message = classify_socket_error(OSError(errno.EPIPE, "broken pipe"))
        assert message.startswith("EPIPE:")

    def test_errno_less_error_uses_the_type_name(self):
        message = classify_socket_error(OSError("no errno at all"))
        assert message.startswith("OSError:")
        assert "no errno at all" in message


# ----------------------------------------------------------------------
# Watchdog external findings (pure)
# ----------------------------------------------------------------------
class TestWatchdogExternalFindings:
    def test_external_finding_merges_into_scan(self):
        watchdog = Watchdog()
        finding = WatchdogFinding("link_down", None, "a", 1.5,
                                  "link a->b gave up reconnecting "
                                  "after 4 attempts", 4.0)
        watchdog.record_external(finding)
        assert finding in watchdog.scan([])

    def test_unknown_detector_is_rejected(self):
        watchdog = Watchdog()
        with pytest.raises(ValueError):
            watchdog.record_external(
                WatchdogFinding("made_up", None, "a", 0.0, "nope"))


# ----------------------------------------------------------------------
# Supervised links over real sockets
# ----------------------------------------------------------------------
async def _wait_for(predicate, timeout=8.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while not predicate():
        if loop.time() > deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(0.01)


async def _mesh(backoff=None):
    transport = TcpTransport(backoff=backoff, seed=3)
    received = []
    transport.on_frame = \
        lambda node, obj, writer: received.append((node, obj))
    await transport.listen("a")
    await transport.listen("b")
    await transport.connect_mesh(["a", "b"])
    return transport, received


@pytest.mark.live
class TestLinkSupervision:
    def test_sever_queues_then_heal_delivers_fifo(self):
        async def scenario():
            transport, received = await _mesh()
            try:
                transport.send("a", "b", {"kind": "msg", "n": 0})
                await _wait_for(lambda: len(received) == 1)
                transport.sever("a", "b")
                assert transport.link_state("a", "b") == "severed"
                for n in (1, 2, 3):
                    transport.send("a", "b", {"kind": "msg", "n": n})
                await asyncio.sleep(0.05)
                assert transport.queued_frames("a", "b") == 3
                assert len(received) == 1   # nothing leaked past the cut
                transport.heal("a", "b")
                await _wait_for(lambda: len(received) == 4)
            finally:
                await transport.close()
            return [obj["n"] for node, obj in received if node == "b"]

        assert asyncio.run(scenario()) == [0, 1, 2, 3]

    def test_reconnect_rides_out_a_peer_outage(self):
        async def scenario():
            backoff = BackoffPolicy(base=0.02, factor=1.5, cap=0.1,
                                    jitter=0.0)
            transport, received = await _mesh(backoff)
            downs, ups = [], []
            transport.on_link_down = \
                lambda src, dst: downs.append((src, dst))
            transport.on_link_up = \
                lambda src, dst, attempts: ups.append((src, dst, attempts))
            try:
                await transport.close_node("b")
                await _wait_for(lambda: ("a", "b") in downs)
                for n in range(3):
                    transport.send("a", "b", {"kind": "msg", "n": n})
                assert transport.queued_frames("a", "b") == 3
                await transport.reopen_node("b")
                await _wait_for(lambda: len(received) == 3)
                assert transport.link_state("a", "b") == "up"
            finally:
                await transport.close()
            return ([obj["n"] for node, obj in received if node == "b"],
                    [up for up in ups if up[:2] == ("a", "b")])

        order, ups = asyncio.run(scenario())
        assert order == [0, 1, 2]   # queue drained in FIFO order
        assert ups and ups[-1][2] >= 1   # the backoff loop reconnected

    def test_backoff_budget_exhaustion_reports_give_up(self):
        async def scenario():
            backoff = BackoffPolicy(base=0.01, factor=1.5, cap=0.03,
                                    jitter=0.0, max_attempts=3)
            transport, received = await _mesh(backoff)
            gave_up = []
            transport.on_give_up = \
                lambda src, dst, attempts: gave_up.append(
                    (src, dst, attempts))
            try:
                await transport.close_node("b")
                await _wait_for(lambda: gave_up)
                state = transport.link_state("a", "b")
                # heal() restores service once the peer is really back.
                await transport.reopen_node("b")
                transport.send("a", "b", {"kind": "msg", "n": 7})
                transport.heal("a", "b")
                await _wait_for(
                    lambda: any(node == "b" for node, _ in received))
            finally:
                await transport.close()
            return gave_up, state

        gave_up, state = asyncio.run(scenario())
        assert gave_up == [("a", "b", 3)]
        assert state == "gave-up"


# ----------------------------------------------------------------------
# Kill + WAL restart
# ----------------------------------------------------------------------
@pytest.mark.live
class TestKillRestart:
    def test_restart_requires_a_kill(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["a", "b"],
                                  log_dir=str(tmp_path))
            await cluster.start()
            try:
                with pytest.raises(ConfigurationError):
                    await restart_node(cluster, "a")
            finally:
                await cluster.stop()

        asyncio.run(scenario())

    def test_kill_and_wal_restart_recovers_state_and_metrics(
            self, tmp_path):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["a", "b"],
                                  log_dir=str(tmp_path))
            registry = MetricsRegistry().attach(cluster)
            injector = LiveFaultInjector(cluster, seed=5)
            await cluster.start()
            try:
                spec = flat_tree("a", ["b"], txn_id="t0")
                spec.participants[1].ops.append(write_op("k", 3))
                await cluster.run_transaction(spec)
                await injector.kill("b")
                assert not cluster.nodes["b"].alive
                info = await injector.restart("b")
                await cluster.wait_quiescent(timeout=5.0)
            finally:
                injector.detach()
                await cluster.stop()
            return (info, cluster.nodes["b"].alive,
                    cluster.recorded_outcome("b", "t0"),
                    list(cluster.metrics.recoveries),
                    registry.prometheus_text())

        info, alive, outcome, recoveries, text = asyncio.run(scenario())
        assert alive
        assert outcome == "commit"   # the WAL replay rebuilt the outcome
        assert info.node == "b"
        assert info.torn_tail is None
        assert info.records_replayed >= 2   # PREPARED + COMMITTED
        assert info.seconds > 0
        assert [r.records_replayed for r in recoveries] == \
            [info.records_replayed]
        assert "repro_recovery_seconds" in text
        assert 'repro_recovery_seconds_count{node="b"} 1' in text

    def test_torture_cell_coordinator_post_decision(self):
        cell = run_torture_cell("presumed_abort", "coord-post-decision",
                                seed=17, txns=3, outage=0.03)
        assert cell.ok, "\n".join(cell.problems)
        assert cell.fired
        assert cell.crashes == 1
        assert cell.restarts and \
            cell.restarts[0]["node"] == cell.victim


# ----------------------------------------------------------------------
# Periodic checkpointing under serve
# ----------------------------------------------------------------------
@pytest.mark.live
class TestServeCheckpointing:
    def test_periodic_checkpoint_compacts_the_wal(self, tmp_path):
        async def scenario():
            captured = {}
            up = asyncio.Event()

            def ready(cluster, addrs):
                captured["cluster"] = cluster
                up.set()

            # io_latency=0 keeps forces shorter than the checkpoint
            # period, so the cluster goes idle between ticks.
            config = PRESUMED_ABORT.with_options(io_latency=0.0)
            server = asyncio.ensure_future(
                serve(config, ["a", "b"], log_dir=str(tmp_path),
                      checkpoint_interval=0.05, ready=ready))
            await asyncio.wait_for(up.wait(), 10)
            cluster = captured["cluster"]
            spec = flat_tree("a", ["b"], txn_id="t0")
            spec.participants[1].ops.append(write_op("k", 9))
            await cluster.run_transaction(spec)
            await asyncio.sleep(0.25)   # several checkpoint ticks
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass

        asyncio.run(scenario())
        records = load_records(tmp_path / "b.wal")
        assert records
        # Compaction ran: the WAL now starts at a checkpoint and the
        # transaction's records before it are gone.
        assert records[0].record_type is LogRecordType.CHECKPOINT
        assert all(r.record_type is not LogRecordType.PREPARED
                   for r in records)
