"""Unit tests for the two-phase lock manager."""

import pytest

from repro.errors import DeadlockError, LockError
from repro.lrm.locks import LockManager, LockMode
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator


@pytest.fixture
def locks(simulator, metrics):
    return LockManager(simulator, metrics)


def grant_log(locks, simulator):
    granted = []

    def acquire(txn, key, mode):
        locks.acquire(txn, key, mode, lambda: granted.append((txn, key)))
        simulator.run()

    return granted, acquire


def test_exclusive_blocks_exclusive(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    acquire("t2", "k", LockMode.EXCLUSIVE)
    assert granted == [("t1", "k")]
    locks.release_all("t1")
    simulator.run()
    assert granted == [("t1", "k"), ("t2", "k")]


def test_shared_locks_coexist(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.SHARED)
    acquire("t2", "k", LockMode.SHARED)
    assert len(granted) == 2


def test_shared_blocks_exclusive(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.SHARED)
    acquire("t2", "k", LockMode.EXCLUSIVE)
    assert granted == [("t1", "k")]


def test_fifo_wait_queue(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    acquire("t2", "k", LockMode.EXCLUSIVE)
    acquire("t3", "k", LockMode.EXCLUSIVE)
    locks.release_all("t1")
    simulator.run()
    assert granted == [("t1", "k"), ("t2", "k")]
    locks.release_all("t2")
    simulator.run()
    assert granted[-1] == ("t3", "k")


def test_reentrant_acquire(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.SHARED)
    acquire("t1", "k", LockMode.SHARED)
    assert len(granted) == 2  # both grants fire, no deadlock with self


def test_upgrade_sole_holder(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.SHARED)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    assert len(granted) == 2
    assert locks.holds("t1", "k", LockMode.EXCLUSIVE)


def test_upgrade_waits_for_other_readers(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.SHARED)
    acquire("t2", "k", LockMode.SHARED)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    assert granted.count(("t1", "k")) == 1  # upgrade pending
    locks.release_all("t2")
    simulator.run()
    assert granted.count(("t1", "k")) == 2
    assert locks.holds("t1", "k", LockMode.EXCLUSIVE)


def test_exclusive_holder_absorbs_weaker_request(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    acquire("t1", "k", LockMode.SHARED)
    assert len(granted) == 2


def test_deadlock_detected_two_txns(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "a", LockMode.EXCLUSIVE)
    acquire("t2", "b", LockMode.EXCLUSIVE)
    acquire("t1", "b", LockMode.EXCLUSIVE)  # t1 waits on t2
    with pytest.raises(DeadlockError) as excinfo:
        locks.acquire("t2", "a", LockMode.EXCLUSIVE, lambda: None)
    assert "t2" in str(excinfo.value)
    assert locks.deadlocks_detected == 1


def test_deadlock_detected_three_txns(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "a", LockMode.EXCLUSIVE)
    acquire("t2", "b", LockMode.EXCLUSIVE)
    acquire("t3", "c", LockMode.EXCLUSIVE)
    acquire("t1", "b", LockMode.EXCLUSIVE)
    acquire("t2", "c", LockMode.EXCLUSIVE)
    with pytest.raises(DeadlockError):
        locks.acquire("t3", "a", LockMode.EXCLUSIVE, lambda: None)


def test_victim_release_clears_wait_queues(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "a", LockMode.EXCLUSIVE)
    acquire("t2", "b", LockMode.EXCLUSIVE)
    acquire("t1", "b", LockMode.EXCLUSIVE)
    with pytest.raises(DeadlockError):
        locks.acquire("t2", "a", LockMode.EXCLUSIVE, lambda: None)
    locks.release_all("t2")  # victim aborts
    simulator.run()
    # t1 now gets b.
    assert granted[-1] == ("t1", "b")


def test_release_all_wakes_waiters_and_records_hold(simulator):
    metrics = MetricsCollector()
    locks = LockManager(simulator, metrics)
    locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
    simulator.run()
    simulator.schedule(4.0, lambda: locks.release_all("t1"))
    simulator.run()
    assert metrics.lock_holds == [pytest.approx(4.0)]


def test_release_without_locks_is_noop(locks):
    locks.release_all("ghost")  # must not raise


def test_assert_released(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    with pytest.raises(LockError):
        locks.assert_released("t1")
    locks.release_all("t1")
    locks.assert_released("t1")


def test_held_keys_and_waiting_count(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "a", LockMode.EXCLUSIVE)
    acquire("t1", "b", LockMode.SHARED)
    acquire("t2", "a", LockMode.EXCLUSIVE)
    assert locks.held_keys("t1") == {"a", "b"}
    assert locks.waiting_count("a") == 1
    assert locks.waiting_count("b") == 0


def test_mixed_wakeup_grants_compatible_prefix(locks, simulator):
    granted, acquire = grant_log(locks, simulator)
    acquire("t1", "k", LockMode.EXCLUSIVE)
    acquire("t2", "k", LockMode.SHARED)
    acquire("t3", "k", LockMode.SHARED)
    acquire("t4", "k", LockMode.EXCLUSIVE)
    locks.release_all("t1")
    simulator.run()
    # Both shared readers wake, the exclusive waits.
    assert ("t2", "k") in granted and ("t3", "k") in granted
    assert ("t4", "k") not in granted


class TestLockHooks:
    """The on_grant/on_release hook lists the cost ledger rides."""

    def hooked(self, locks):
        events = []
        locks.on_grant.append(
            lambda txn, key, mode: events.append(("grant", txn, key, mode)))
        locks.on_release.append(
            lambda txn, key: events.append(("release", txn, key)))
        return events

    def test_grant_and_release_fire_in_order(self, locks, simulator):
        events = self.hooked(locks)
        locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
        simulator.run()
        assert events == [("grant", "t1", "k", LockMode.EXCLUSIVE)]
        locks.release_all("t1")
        assert events[-1] == ("release", "t1", "k")

    def test_reentrant_acquire_fires_no_second_grant(self, locks,
                                                     simulator):
        events = self.hooked(locks)
        locks.acquire("t1", "k", LockMode.SHARED, lambda: None)
        locks.acquire("t1", "k", LockMode.SHARED, lambda: None)
        simulator.run()
        assert len([e for e in events if e[0] == "grant"]) == 1

    def test_sole_holder_upgrade_fires_no_second_grant(self, locks,
                                                       simulator):
        events = self.hooked(locks)
        locks.acquire("t1", "k", LockMode.SHARED, lambda: None)
        locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
        simulator.run()
        # Strengthened in place: one hold interval, not two.
        assert len([e for e in events if e[0] == "grant"]) == 1
        locks.release_all("t1")
        assert len([e for e in events if e[0] == "release"]) == 1

    def test_waiter_grant_fires_hook_at_wakeup(self, locks, simulator):
        events = self.hooked(locks)
        locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
        locks.acquire("t2", "k", LockMode.EXCLUSIVE, lambda: None)
        simulator.run()
        assert ("grant", "t2", "k", LockMode.EXCLUSIVE) not in events
        locks.release_all("t1")
        simulator.run()
        assert ("grant", "t2", "k", LockMode.EXCLUSIVE) in events

    def test_no_hooks_installed_is_free(self, locks, simulator):
        # The skip-when-empty pattern: empty lists, nothing to call.
        assert locks.on_grant == [] and locks.on_release == []
        locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
        simulator.run()
        locks.release_all("t1")

    def test_granted_count_and_total_waiting(self, locks, simulator):
        locks.acquire("t1", "a", LockMode.SHARED, lambda: None)
        locks.acquire("t2", "a", LockMode.SHARED, lambda: None)
        locks.acquire("t3", "a", LockMode.EXCLUSIVE, lambda: None)
        locks.acquire("t1", "b", LockMode.EXCLUSIVE, lambda: None)
        simulator.run()
        assert locks.granted_count() == 3
        assert locks.total_waiting() == 1
        locks.release_all("t1")
        locks.release_all("t2")
        simulator.run()
        assert locks.granted_count() == 1  # t3 woke up on "a"
        assert locks.total_waiting() == 0
