"""Unit tests for the versioned KV store."""

from repro.lrm.kv import KVStore


def test_write_then_commit_persists():
    store = KVStore()
    store.write("t", "k", 42)
    store.commit("t")
    assert store.get("k") == 42
    assert store.commits == 1


def test_abort_rolls_back_to_previous():
    store = KVStore({"k": 1})
    store.write("t", "k", 2)
    store.write("t", "k", 3)
    store.abort("t")
    assert store.get("k") == 1
    assert store.aborts == 1


def test_abort_removes_newly_created_key():
    store = KVStore()
    store.write("t", "new", "value")
    store.abort("t")
    assert store.get("new") is None
    assert len(store) == 0


def test_abort_restores_deleted_key():
    store = KVStore({"k": "original"})
    store.delete("t", "k")
    assert store.get("k") is None
    store.abort("t")
    assert store.get("k") == "original"


def test_delete_missing_key_is_noop():
    store = KVStore()
    store.delete("t", "ghost")
    store.abort("t")
    assert len(store) == 0


def test_independent_transactions_do_not_interfere():
    store = KVStore()
    store.write("t1", "a", 1)
    store.write("t2", "b", 2)
    store.abort("t1")
    store.commit("t2")
    assert store.get("a") is None
    assert store.get("b") == 2


def test_read_sees_own_uncommitted_write():
    store = KVStore({"k": "old"})
    store.write("t", "k", "new")
    assert store.read("t", "k") == "new"


def test_has_uncommitted():
    store = KVStore()
    assert not store.has_uncommitted("t")
    store.write("t", "k", 1)
    assert store.has_uncommitted("t")
    store.commit("t")
    assert not store.has_uncommitted("t")


def test_redo_write_applies_directly():
    store = KVStore()
    store.redo_write("k", 99)
    assert store.get("k") == 99
    assert not store.has_uncommitted("recovery")


def test_snapshot_is_a_copy():
    store = KVStore({"k": 1})
    snapshot = store.snapshot()
    snapshot["k"] = 2
    assert store.get("k") == 1


def test_interleaved_writes_rollback_in_reverse_order():
    store = KVStore({"k": "v0"})
    store.write("t", "k", "v1")
    store.write("t", "j", "w1")
    store.write("t", "k", "v2")
    store.abort("t")
    assert store.get("k") == "v0"
    assert store.get("j") is None
