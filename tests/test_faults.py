"""Fault-injection machinery tests."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.faults.injector import (
    CrashPlan,
    FaultInjector,
    FaultPlan,
    MessageLossPlan,
    PartitionPlan,
)

from tests.conftest import assert_atomic, updating_spec


def test_plan_validation():
    with pytest.raises(ValueError):
        CrashPlan("n", at=5.0, restart_at=4.0)
    with pytest.raises(ValueError):
        PartitionPlan("a", "b", at=5.0, heal_at=5.0)
    with pytest.raises(ValueError):
        MessageLossPlan(probability=1.5)


def test_message_loss_matching():
    loss = MessageLossPlan(0.5, msg_types=("commit",),
                           links=(("a", "b"),))
    from repro.net.message import Message, MessageType
    match = Message(MessageType.COMMIT, "t", "a", "b")
    wrong_type = Message(MessageType.PREPARE, "t", "a", "b")
    wrong_link = Message(MessageType.COMMIT, "t", "b", "a")
    assert loss.matches(match)
    assert not loss.matches(wrong_type)
    assert not loss.matches(wrong_link)


def test_crash_plan_applies():
    config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                         retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"])
    plan = FaultPlan().crash("s", at=4.5, restart_at=40.0)
    FaultInjector(cluster).apply(plan)
    spec = updating_spec("c", ["s"])
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    assert handle.committed
    assert cluster.value("s", "key-s") == 1


def test_partition_plan_applies():
    config = PRESUMED_ABORT.with_options(ack_timeout=10.0,
                                         retry_interval=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    plan = FaultPlan().partition("c", "s", at=4.5, heal_at=50.0)
    FaultInjector(cluster).apply(plan)
    spec = updating_spec("c", ["s"])
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    assert handle.committed
    assert_atomic(cluster, spec)


def test_message_loss_is_survivable_and_reproducible():
    """Lossy links slow commit down but never break atomicity; the
    same seed drops the same messages.  Loss is scoped to the commit
    protocol — LU 6.2 data conversations ride reliable sessions."""
    COMMIT_MSGS = ("prepare", "vote-yes", "vote-no", "vote-read-only",
                   "commit", "abort", "ack")

    def run(seed):
        config = PRESUMED_ABORT.with_options(
            ack_timeout=10.0, retry_interval=10.0, vote_timeout=30.0,
            inquiry_timeout=20.0)
        cluster = Cluster(config, nodes=["c", "s"], seed=seed)
        injector = FaultInjector(cluster)
        injector.apply(FaultPlan().lose_messages(0.3,
                                                 msg_types=COMMIT_MSGS))
        spec = updating_spec("c", ["s"])
        handle = cluster.start_transaction(spec)
        cluster.run_until(500.0)
        assert handle.done
        assert_atomic(cluster, spec)
        return injector.injected_drops, handle.outcome

    first = run(seed=11)
    second = run(seed=11)
    assert first == second


def test_targeted_ack_loss_forces_recovery():
    config = PRESUMED_ABORT.with_options(ack_timeout=10.0,
                                         retry_interval=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    injector = FaultInjector(cluster)
    injector.apply(FaultPlan().lose_messages(
        1.0, msg_types=("ack", "recovery-ack")))
    spec = updating_spec("c", ["s"])
    handle = cluster.start_transaction(spec)
    cluster.run_until(25.0)
    assert not handle.done            # the ack never arrives
    injector.clear_message_loss()
    cluster.run_until(300.0)
    assert handle.committed           # recovery retries close the loop
    assert cluster.metrics.recovery_flows() > 0


def test_builder_chaining():
    plan = (FaultPlan()
            .crash("a", 1.0)
            .partition("a", "b", 2.0, heal_at=3.0)
            .lose_messages(0.1))
    assert len(plan.crashes) == 1
    assert len(plan.partitions) == 1
    assert plan.message_loss is not None
