"""Vote Reliable (§4): ack waivers, early completion, and the
report-loss disadvantage."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import HeuristicChoice, PRESUMED_ABORT
from repro.core.spec import chain_tree
from repro.lrm.operations import write_op
from repro.net.message import MessageType

from tests.conftest import updating_spec


def config(**kwargs):
    return PRESUMED_ABORT.with_options(vote_reliable=True, **kwargs)


def test_reliable_subordinate_ack_waived():
    cluster = Cluster(config(), nodes=["c", "s"], reliable_nodes=["s"])
    spec = updating_spec("c", ["s"])
    handle = cluster.run_transaction(spec)
    assert handle.committed
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 0


def test_unreliable_subordinate_still_acks():
    cluster = Cluster(config(), nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.run_transaction(spec)
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 1


def test_mixed_tree_waives_only_reliable_acks():
    cluster = Cluster(config(), nodes=["c", "r1", "r2", "u"],
                      reliable_nodes=["r1", "r2"])
    spec = updating_spec("c", ["r1", "r2", "u"])
    cluster.run_transaction(spec)
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 1  # only from the unreliable u


def test_reliability_aggregates_up_the_tree():
    """An intermediate's vote carries reliable only when its whole
    subtree (local RMs and children) voted reliable."""
    # All-reliable chain: the mid's vote is reliable.
    cluster = Cluster(config(), nodes=["root", "mid", "leaf"],
                      reliable_nodes=["root", "mid", "leaf"])
    spec = chain_tree(["root", "mid", "leaf"])
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    reliable_votes = []
    cluster.network.on_send.append(
        lambda m: reliable_votes.append((m.src, m.flag("reliable")))
        if m.msg_type is MessageType.VOTE_YES else None)
    cluster.run_transaction(spec)
    assert ("mid", True) in reliable_votes

    # Unreliable leaf poisons the mid's vote.
    cluster2 = Cluster(config(), nodes=["root", "mid", "leaf"],
                       reliable_nodes=["root", "mid"])
    spec2 = chain_tree(["root", "mid", "leaf"])
    for participant in spec2.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    votes2 = []
    cluster2.network.on_send.append(
        lambda m: votes2.append((m.src, m.flag("reliable")))
        if m.msg_type is MessageType.VOTE_YES else None)
    cluster2.run_transaction(spec2)
    assert ("mid", False) in votes2


def test_commit_completes_earlier_with_reliable_votes():
    """The paper's point: early-acknowledgment-style completion without
    giving up late-ack semantics for unreliable resources."""
    def completion_time(reliable):
        nodes = ["root", "mid", "leaf"]
        cluster = Cluster(config(), nodes=nodes,
                          reliable_nodes=nodes if reliable else [])
        spec = chain_tree(nodes)
        for participant in spec.participants:
            participant.ops.append(write_op(f"k-{participant.node}", 1))
        handle = cluster.run_transaction(spec)
        return handle.latency

    assert completion_time(reliable=True) < completion_time(reliable=False)


def test_damage_report_lost_for_reliable_resource():
    """Table 1's disadvantage: if a reliable resource does take a
    heuristic decision after all, the root never hears about it."""
    cfg = config(heuristic_timeout=8.0,
                 heuristic_choice=HeuristicChoice.ABORT,
                 ack_timeout=15.0, retry_interval=15.0,
                 propagate_heuristic_reports=True)
    cluster = Cluster(cfg, nodes=["root", "sub"], reliable_nodes=["sub"])
    spec = updating_spec("root", ["sub"])
    cluster.partition_at("root", "sub", 4.5)   # before the commit lands
    cluster.heal_at("root", "sub", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    # The sub heuristically aborted while the tree committed: damage.
    damaged = cluster.metrics.damaged_heuristics()
    assert len(damaged) == 1 and damaged[0].node == "sub"
    # But the root believed the commit was clean the moment it decided
    # — no ack was expected from the reliable sub.
    assert handle.committed
    assert not handle.heuristic_mixed


def test_unreliable_damage_does_reach_root():
    """Contrast case: without the reliable waiver the same failure is
    reported to the root."""
    cfg = PRESUMED_ABORT.with_options(
        heuristic_timeout=8.0, heuristic_choice=HeuristicChoice.ABORT,
        ack_timeout=15.0, retry_interval=15.0,
        propagate_heuristic_reports=True)
    cluster = Cluster(cfg, nodes=["root", "sub"])
    spec = updating_spec("root", ["sub"])
    cluster.partition_at("root", "sub", 4.5)
    cluster.heal_at("root", "sub", 60.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    assert handle.committed
    assert handle.heuristic_mixed
