"""Public-API surface checks: everything advertised importable and
documented."""

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert repro.__version__ == "1.0.0"


def test_key_entry_points_present():
    for name in ("Cluster", "ProtocolConfig", "PRESUMED_ABORT",
                 "PRESUMED_NOTHING", "PRESUMED_COMMIT", "BASIC_2PC",
                 "Application", "OperatorConsole", "ProtocolChecker",
                 "flat_tree", "chain_tree", "read_op", "write_op"):
        assert name in repro.__all__, name


def test_public_items_documented():
    """Every public class/function we export carries a docstring."""
    import inspect
    for name in repro.__all__:
        obj = getattr(repro, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert obj.__doc__, f"{name} lacks a docstring"


def test_subpackages_documented():
    import importlib
    for module_name in ("repro.sim", "repro.net", "repro.log",
                        "repro.lrm", "repro.core", "repro.analysis",
                        "repro.workload", "repro.trace", "repro.faults",
                        "repro.metrics", "repro.verify"):
        module = importlib.import_module(module_name)
        assert module.__doc__, module_name


def test_quickstart_docstring_example_runs():
    """The usage example in the package docstring must keep working."""
    from repro import Cluster, PRESUMED_ABORT, flat_tree, write_op
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub1", "sub2"])
    spec = flat_tree("coord", ["sub1", "sub2"])
    spec.participant("sub1").ops.append(write_op("balance", 100))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert cluster.metrics.cost_summary(spec.txn_id).flows > 0
