"""Unit tests for the transaction handle."""

from repro.core.handle import HeuristicReport, TransactionHandle


def test_complete_sets_outcome_and_latency():
    handle = TransactionHandle("t", started_at=1.0)
    handle.complete("commit", at_time=4.5)
    assert handle.done and handle.committed and not handle.aborted
    assert handle.latency == 3.5


def test_complete_is_idempotent():
    handle = TransactionHandle("t", started_at=0.0)
    handle.complete("commit", 1.0)
    handle.complete("abort", 2.0)
    assert handle.outcome == "commit"
    assert handle.completed_at == 1.0


def test_callbacks_fire_once_each():
    handle = TransactionHandle("t", started_at=0.0)
    calls = []
    handle.on_done(lambda h: calls.append("before"))
    handle.complete("abort", 1.0)
    handle.on_done(lambda h: calls.append("after"))
    assert calls == ["before", "after"]


def test_outcome_pending_lifecycle():
    handle = TransactionHandle("t", started_at=0.0)
    handle.complete("commit", 5.0, outcome_pending=True)
    assert handle.outcome_pending
    handle.recovery_done(20.0)
    assert not handle.outcome_pending
    assert handle.recovery_completed_at == 20.0


def test_heuristic_mixed_detection():
    handle = TransactionHandle("t", started_at=0.0)
    handle.heuristic_reports.append(
        HeuristicReport(node="n", txn_id="t", decision="commit",
                        outcome="commit"))
    assert not handle.heuristic_mixed
    handle.heuristic_reports.append(
        HeuristicReport(node="n2", txn_id="t", decision="abort",
                        outcome="commit"))
    assert handle.heuristic_mixed


def test_report_damaged_property():
    clean = HeuristicReport("n", "t", "commit", "commit")
    damaged = HeuristicReport("n", "t", "abort", "commit")
    assert not clean.damaged
    assert damaged.damaged


def test_repr_mentions_status():
    handle = TransactionHandle("t", started_at=0.0)
    assert "pending" in repr(handle)
    handle.complete("commit", 1.0, outcome_pending=True)
    assert "commit" in repr(handle)
    assert "outcome-pending" in repr(handle)


def test_latency_none_until_done():
    handle = TransactionHandle("t", started_at=0.0)
    assert handle.latency is None
