"""TM-node plumbing: sessions, deferred outbox, piggybacking, dispatch."""

import pytest

from repro.analysis.sweeps import rows_to_csv
from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import flat_tree
from repro.errors import ProtocolError
from repro.lrm.operations import write_op
from repro.net.message import Message, MessageType

from tests.conftest import updating_spec


@pytest.fixture
def cluster():
    return Cluster(PRESUMED_ABORT, nodes=["a", "b"])


class TestSendPlumbing:
    def test_deferred_message_waits_in_outbox(self, cluster):
        node = cluster.node("a")
        node.send(MessageType.ACK, "b", "t", defer=True,
                  payload={"reports": [], "outcome_pending": False})
        assert len(node.deferred_messages("b")) == 1
        assert cluster.network.sent == 0

    def test_next_send_drains_outbox_as_piggyback(self, cluster):
        node = cluster.node("a")
        node.send(MessageType.ACK, "b", "t", defer=True,
                  payload={"reports": [], "outcome_pending": False})
        captured = []
        cluster.network.on_send.append(captured.append)
        node.send(MessageType.DATA, "b", "t2")
        assert len(captured) == 1
        piggyback = captured[0].payload["piggyback"]
        assert len(piggyback) == 1
        assert piggyback[0].msg_type is MessageType.ACK
        assert node.deferred_messages("b") == []

    def test_flush_deferred_sends_standalone(self, cluster):
        node = cluster.node("a")
        node.send(MessageType.ACK, "b", "t", defer=True,
                  payload={"reports": [], "outcome_pending": False})
        assert node.flush_deferred("b") == 1
        assert cluster.network.sent == 1
        assert node.flush_deferred("b") == 0

    def test_crashed_node_sends_nothing(self, cluster):
        node = cluster.node("a")
        node.crash()
        assert node.send(MessageType.DATA, "b", "t") is None
        assert cluster.network.sent == 0

    def test_crash_clears_deferred_outbox(self, cluster):
        node = cluster.node("a")
        node.send(MessageType.ACK, "b", "t", defer=True,
                  payload={"reports": [], "outcome_pending": False})
        node.crash()
        assert node.deferred_messages() == []


class TestSessions:
    def test_sessions_created_on_enrollment(self, cluster):
        spec = updating_spec("a", ["b"])
        cluster.run_transaction(spec)
        assert "b" in cluster.node("a").sessions
        assert not cluster.node("a").sessions["b"].leavable

    def test_leavable_promise_recorded(self):
        cluster = Cluster(PRESUMED_ABORT.with_options(leave_out=True),
                          nodes=["a", "b"])
        spec = updating_spec("a", ["b"])
        spec.participant("b").ok_to_leave_out = True
        cluster.run_transaction(spec)
        assert cluster.node("a").sessions["b"].leavable

    def test_new_work_resets_leavable(self):
        cluster = Cluster(PRESUMED_ABORT.with_options(leave_out=True),
                          nodes=["a", "b"])
        first = updating_spec("a", ["b"])
        first.participant("b").ok_to_leave_out = True
        cluster.run_transaction(first)
        second = updating_spec("a", ["b"])   # no offer this time
        cluster.run_transaction(second)
        assert not cluster.node("a").sessions["b"].leavable


class TestContextManagement:
    def test_duplicate_context_rejected(self, cluster):
        node = cluster.node("a")
        node._new_context("dup")
        with pytest.raises(ProtocolError):
            node._new_context("dup")

    def test_require_ctx(self, cluster):
        node = cluster.node("a")
        with pytest.raises(ProtocolError):
            node.require_ctx("ghost")
        context = node._new_context("known")
        assert node.require_ctx("known") is context

    def test_context_live_tracks_crash(self, cluster):
        node = cluster.node("a")
        context = node._new_context("t")
        assert node.context_live(context)
        node.crash()
        assert not node.context_live(context)
        node.restart()
        assert not node.context_live(context)  # pre-crash object

    def test_begin_requires_matching_root(self, cluster):
        spec = flat_tree("b", ["a"])
        spec.participant("b").ops.append(write_op("k", 1))
        with pytest.raises(ProtocolError, match="not the root"):
            cluster.node("a").begin_transaction(spec)

    def test_detached_rm_name_collisions_rejected(self, cluster):
        node = cluster.node("a")
        node.add_detached_rm("x")
        with pytest.raises(ProtocolError):
            node.add_detached_rm("x")
        with pytest.raises(ProtocolError):
            node.add_detached_rm("default")

    def test_resource_manager_lookup(self, cluster):
        node = cluster.node("a")
        rm = node.add_detached_rm("x")
        assert node.resource_manager("x") is rm
        assert node.resource_manager() is node.default_rm
        with pytest.raises(KeyError):
            node.resource_manager("ghost")


class TestSweepCsv:
    def test_csv_rendering(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        out = rows_to_csv(rows)
        assert out.splitlines() == ["a,b", "1,x", "2,y"]

    def test_csv_empty(self):
        assert rows_to_csv([]) == ""

    def test_csv_inconsistent_keys_rejected(self):
        with pytest.raises(ValueError):
            rows_to_csv([{"a": 1}, {"b": 2}])
