"""Property-based tests (hypothesis) on the core invariants.

The key system invariants:

* **Atomicity** — across arbitrary tree shapes, protocols, veto
  placements and crash schedules, all participants that decide agree
  on the outcome (heuristic decisions excepted — they are the
  documented, reported damage).
* **Model agreement** — the analytic Table 3 formulas equal the
  simulator's measured counts for arbitrary (n, m).
* **Substrate invariants** — lock exclusivity, KV undo correctness,
  log LSN monotonicity under arbitrary operation interleavings.
"""

from hypothesis import given, settings, strategies as st

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.analysis.formulas import TABLE3_FORMULAS
from repro.analysis.scenarios import run_table3_scenario
from repro.lrm.kv import KVStore
from repro.lrm.operations import read_op, write_op
from repro.log.manager import LogManager
from repro.log.records import LogRecordType
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator

from tests.conftest import assert_atomic

CONFIGS = [BASIC_2PC, PRESUMED_ABORT, PRESUMED_NOTHING, PRESUMED_COMMIT]


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def tree_specs(draw, max_nodes=7):
    """A random commit tree with random read-only/veto placement."""
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    names = [f"n{i}" for i in range(n)]
    participants = [ParticipantSpec(node="n0")]
    for index in range(1, n):
        parent = names[draw(st.integers(0, index - 1))]
        participants.append(ParticipantSpec(node=names[index],
                                            parent=parent))
    for participant in participants:
        kind = draw(st.sampled_from(["update", "read", "none"]))
        if kind == "update":
            participant.ops.append(
                write_op(f"k-{participant.node}", draw(st.integers(0, 9))))
        elif kind == "read":
            participant.ops.append(read_op("shared"))
        if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
            participant.veto = True
    return TransactionSpec(participants=participants)


# ----------------------------------------------------------------------
# Atomicity
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(spec=tree_specs(), config_index=st.integers(0, len(CONFIGS) - 1))
def test_atomicity_failure_free(spec, config_index):
    from repro.verify import ProtocolChecker
    config = CONFIGS[config_index]
    cluster = Cluster(config, nodes=[p.node for p in spec.participants])
    checker = ProtocolChecker().attach(cluster)
    handle = cluster.run_transaction(spec)
    assert handle.done
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()
    agreed = assert_atomic(cluster, spec)
    vetoed = any(p.veto for p in spec.participants)
    if vetoed:
        assert handle.aborted and agreed == "abort"
    else:
        assert handle.committed
    # Strict 2PL: every lock is gone afterwards.
    for participant in spec.participants:
        cluster.node(participant.node).default_rm.locks.assert_released(
            spec.txn_id)


@settings(max_examples=25, deadline=None)
@given(spec=tree_specs(max_nodes=5),
       config_index=st.integers(0, len(CONFIGS) - 1),
       crash_victim=st.integers(0, 4),
       crash_time=st.floats(min_value=0.5, max_value=12.0),
       restart_delay=st.floats(min_value=5.0, max_value=30.0))
def test_atomicity_with_crash_and_restart(spec, config_index, crash_victim,
                                          crash_time, restart_delay):
    """One node crashes at an arbitrary instant and restarts; after
    recovery runs, no two nodes disagree durably on the outcome."""
    from repro.verify import ProtocolChecker
    config = CONFIGS[config_index].with_options(
        ack_timeout=15.0, retry_interval=15.0, vote_timeout=20.0,
        inquiry_timeout=20.0)
    nodes = [p.node for p in spec.participants]
    victim = nodes[crash_victim % len(nodes)]
    cluster = Cluster(config, nodes=nodes)
    checker = ProtocolChecker().attach(cluster)
    cluster.crash_at(victim, crash_time)
    cluster.restart_at(victim, crash_time + restart_delay)
    cluster.start_transaction(spec)
    cluster.run_until(600.0, max_events=500_000)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()
    assert_atomic(cluster, spec)


@settings(max_examples=20, deadline=None)
@given(spec=tree_specs(max_nodes=5),
       config_index=st.integers(0, len(CONFIGS) - 1),
       cut_edge=st.integers(0, 10),
       cut_time=st.floats(min_value=1.0, max_value=12.0),
       heal_delay=st.floats(min_value=10.0, max_value=60.0),
       jitter_seed=st.integers(0, 1000))
def test_protocol_rules_under_partitions_and_jitter(
        spec, config_index, cut_edge, cut_time, heal_delay, jitter_seed):
    """Random trees + random partition windows + jittered (FIFO)
    links: the wire-protocol rules hold and atomicity survives."""
    from repro.net.latency import UniformLatency
    from repro.verify import ProtocolChecker
    config = CONFIGS[config_index].with_options(
        ack_timeout=15.0, retry_interval=15.0, vote_timeout=25.0,
        inquiry_timeout=25.0)
    nodes = [p.node for p in spec.participants]
    cluster = Cluster(config, nodes=nodes, seed=jitter_seed,
                      latency=UniformLatency(0.5, 2.0))
    checker = ProtocolChecker().attach(cluster)
    edges = [(p.parent, p.node) for p in spec.participants
             if p.parent is not None]
    if edges:
        a, b = edges[cut_edge % len(edges)]
        cluster.partition_at(a, b, cut_time)
        cluster.heal_at(a, b, cut_time + heal_delay)
    cluster.start_transaction(spec)
    cluster.run_until(600.0, max_events=500_000)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()
    assert_atomic(cluster, spec)


# ----------------------------------------------------------------------
# Analytic model == simulator
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=9), m_seed=st.integers(0, 100),
       key=st.sampled_from(sorted(TABLE3_FORMULAS)))
def test_formulas_match_simulation(n, m_seed, key):
    m = m_seed % n  # 0 <= m <= n-1
    analytic = TABLE3_FORMULAS[key].costs(n, m)
    measured = run_table3_scenario(key, n, m).total
    assert analytic.as_tuple() == measured.as_tuple(), \
        f"{key}(n={n}, m={m}): {analytic} vs {measured}"


# ----------------------------------------------------------------------
# Substrate invariants
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["w", "d"]),
                              st.integers(0, 5), st.integers(0, 99)),
                    max_size=30))
def test_kv_abort_restores_exact_state(ops):
    initial = {f"k{i}": i for i in range(3)}
    store = KVStore(dict(initial))
    for kind, key_index, value in ops:
        key = f"k{key_index}"
        if kind == "w":
            store.write("t", key, value)
        else:
            store.delete("t", key)
    store.abort("t")
    assert store.snapshot() == initial


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(st.tuples(st.sampled_from(["w", "d"]),
                              st.integers(0, 5), st.integers(0, 99)),
                    max_size=30))
def test_kv_commit_keeps_final_state(ops):
    store = KVStore()
    expected = {}
    for kind, key_index, value in ops:
        key = f"k{key_index}"
        if kind == "w":
            store.write("t", key, value)
            expected[key] = value
        else:
            store.delete("t", key)
            expected.pop(key, None)
    store.commit("t")
    assert store.snapshot() == expected


@settings(max_examples=30, deadline=None)
@given(plan=st.lists(st.tuples(st.booleans(), st.booleans()),
                     min_size=1, max_size=25),
       crash_at=st.integers(0, 25))
def test_log_stable_prefix_survives_crash(plan, crash_at):
    """Whatever the interleaving of forced/non-forced writes and the
    crash point, stable storage holds an LSN-ordered prefix-closed set
    of the forced history."""
    simulator = Simulator()
    metrics = MetricsCollector()
    log = LogManager(simulator, metrics, "n", io_latency=0.1)
    for index, (force, __) in enumerate(plan):
        log.write(f"t{index}", LogRecordType.PREPARED, force=force)
        if index == crash_at:
            log.crash()
        simulator.run()
    records = log.stable.records()
    lsns = [r.lsn for r in records]
    assert lsns == sorted(lsns)
    assert len(set(lsns)) == len(lsns)


@settings(max_examples=30, deadline=None)
@given(requests=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 2), st.booleans()),
    min_size=1, max_size=20))
def test_lock_exclusivity_invariant(requests):
    """No two transactions ever hold incompatible locks on one key."""
    from repro.errors import DeadlockError
    from repro.lrm.locks import LockManager, LockMode
    simulator = Simulator()
    locks = LockManager(simulator)
    for txn_index, key_index, exclusive in requests:
        mode = LockMode.EXCLUSIVE if exclusive else LockMode.SHARED
        try:
            locks.acquire(f"t{txn_index}", f"k{key_index}", mode,
                          lambda: None)
        except DeadlockError:
            locks.release_all(f"t{txn_index}")
        simulator.run()
        for key, lock in locks._table.items():
            exclusive_holders = [r.txn_id for r in lock.granted
                                 if r.mode is LockMode.EXCLUSIVE]
            if exclusive_holders:
                assert len({r.txn_id for r in lock.granted}) == 1, \
                    f"X-lock shared on {key}"
