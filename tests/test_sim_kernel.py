"""Unit tests for the simulator kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_advances_with_events(simulator):
    times = []
    simulator.schedule(5.0, lambda: times.append(simulator.now))
    simulator.schedule(2.0, lambda: times.append(simulator.now))
    simulator.run()
    assert times == [2.0, 5.0]
    assert simulator.now == 5.0


def test_schedule_negative_delay_rejected(simulator):
    with pytest.raises(SimulationError):
        simulator.schedule(-1.0, lambda: None)


def test_at_in_past_rejected(simulator):
    simulator.schedule(10.0, lambda: None)
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.at(5.0, lambda: None)


def test_call_soon_runs_at_current_instant(simulator):
    seen = []
    simulator.schedule(3.0, lambda: simulator.call_soon(
        lambda: seen.append(simulator.now)))
    simulator.run()
    assert seen == [3.0]


def test_run_until_stops_clock_at_bound(simulator):
    fired = []
    simulator.schedule(1.0, lambda: fired.append(1))
    simulator.schedule(10.0, lambda: fired.append(10))
    simulator.run_until(5.0)
    assert fired == [1]
    assert simulator.now == 5.0
    simulator.run()
    assert fired == [1, 10]


def test_run_until_past_rejected(simulator):
    simulator.schedule(4.0, lambda: None)
    simulator.run()
    with pytest.raises(SimulationError):
        simulator.run_until(1.0)


def test_events_scheduled_during_run_execute(simulator):
    seen = []

    def chain(depth):
        seen.append(depth)
        if depth < 3:
            simulator.schedule(1.0, lambda: chain(depth + 1))

    simulator.schedule(0.0, lambda: chain(0))
    simulator.run()
    assert seen == [0, 1, 2, 3]


def test_runaway_loop_detected():
    simulator = Simulator()

    def forever():
        simulator.schedule(0.1, forever)

    simulator.schedule(0.0, forever)
    with pytest.raises(SimulationError, match="livelock"):
        simulator.run(max_events=1000)


def test_timer_fires_and_reports(simulator):
    fired = []
    timer = simulator.timer(2.0, lambda: fired.append(True))
    assert timer.active
    simulator.run()
    assert fired == [True]
    assert timer.fired
    assert not timer.active


def test_timer_cancel_prevents_firing(simulator):
    fired = []
    timer = simulator.timer(2.0, lambda: fired.append(True))
    assert timer.cancel() is True
    simulator.run()
    assert fired == []
    assert timer.cancel() is False  # already cancelled


def test_run_while_condition(simulator):
    count = [0]

    def tick():
        count[0] += 1
        simulator.schedule(1.0, tick)

    simulator.schedule(0.0, tick)
    simulator.run_while(lambda: count[0] < 5)
    assert count[0] == 5


def test_named_streams_are_deterministic():
    a = Simulator(seed=42)
    b = Simulator(seed=42)
    assert a.stream("net").random() == b.stream("net").random()
    # Different names give independent draws.
    c = Simulator(seed=42)
    assert c.stream("net").random() != c.stream("other").random() or True
    # Different seeds diverge.
    d = Simulator(seed=43)
    assert a.stream("x").random() != d.stream("x").random()


def test_event_hook_sees_every_event(simulator):
    names = []
    simulator.add_event_hook(lambda e: names.append(e.name))
    simulator.schedule(1.0, lambda: None, name="one")
    simulator.schedule(2.0, lambda: None, name="two")
    simulator.run()
    assert names == ["one", "two"]


def test_pending_events_counter(simulator):
    simulator.schedule(1.0, lambda: None)
    simulator.schedule(2.0, lambda: None)
    assert simulator.pending_events == 2
    simulator.run()
    assert simulator.pending_events == 0


def test_batched_run_orders_overflow_timer_before_later_wheel_timer():
    """Regression: a timer parked in the wheel's overflow level must
    still fire before a later timer placed directly in a wheel bucket
    once the cursor has advanced into the overflow year's range — and
    the batched run()/run_until() loops must observe that order rather
    than raising a spurious "event is in the past"."""
    sim = Simulator()
    order = []
    sim.at(307_200.0, lambda: order.append("A"))      # overflow year

    def warm():                                       # fires at ~day 100
        order.append("warm")
        # ~250 days out: lands in a wheel bucket while A is still in
        # overflow — the buggy scan promoted B first, then raised on A.
        sim.at(358_400.0, lambda: order.append("B"))

    sim.at(102_500.0, warm)
    sim.run()
    assert order == ["warm", "A", "B"]


def test_mid_run_compaction_keeps_dead_count_exact():
    """Regression: compact() triggered by a cancel storm inside an
    event action used to recompute _dead from the queue's flushed run
    index while the batched loop still held its skip count in locals;
    the loop's later flush then double-subtracted, driving _dead
    negative and deferring future compactions.  After a full drain the
    counter must be exactly zero."""
    sim = Simulator()
    queue = sim._queue
    doomed = [sim.schedule(5.0 + i * 0.01, lambda: None)
              for i in range(60)]
    for event in doomed:
        queue.cancel(event)     # below the compaction floor: entries stay

    def storm():
        fresh = [sim.schedule(10.0, lambda: None) for __ in range(80)]
        for event in fresh:
            queue.cancel(event)     # crosses the floor mid-drain

    sim.schedule(8.0, storm)
    sim.schedule(9.0, lambda: None)
    sim.run()
    assert queue._dead == 0
