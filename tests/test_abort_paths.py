"""Integration tests: abort paths across protocols."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import chain_tree, flat_tree
from repro.lrm.operations import write_op
from repro.net.message import MessageType

from tests.conftest import assert_atomic, updating_spec

ALL_CONFIGS = [
    pytest.param(BASIC_2PC, id="basic"),
    pytest.param(PRESUMED_ABORT, id="pa"),
    pytest.param(PRESUMED_NOTHING, id="pn"),
    pytest.param(PRESUMED_COMMIT, id="pc"),
]


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_veto_aborts_everywhere(config):
    cluster = Cluster(config, nodes=["coord", "s1", "s2"])
    spec = updating_spec("coord", ["s1", "s2"])
    spec.participant("s2").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    for name in ("coord", "s1", "s2"):
        assert cluster.value(name, f"key-{name}") is None
    assert assert_atomic(cluster, spec) == "abort"


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_veto_deep_in_chain_aborts_root(config):
    nodes = ["a", "b", "c"]
    cluster = Cluster(config, nodes=nodes)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    spec.participant("c").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    for name in nodes:
        assert cluster.value(name, f"key-{name}") is None


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_coordinator_veto_aborts(config):
    cluster = Cluster(config, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    spec.participant("coord").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    assert cluster.value("sub", "key-sub") is None


def test_locks_released_after_abort():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    spec.participant("sub").veto = True
    cluster.run_transaction(spec)
    for name in ("coord", "sub"):
        cluster.node(name).default_rm.locks.assert_released(spec.txn_id)


def test_pa_abort_logs_nothing_forced():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    spec.participant("sub").veto = True
    cluster.run_transaction(spec)
    assert cluster.metrics.forced_log_writes(txn=spec.txn_id) == 0


def test_pa_abort_sends_no_acks():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    spec.participant("sub").veto = True
    cluster.run_transaction(spec)
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value)
    assert acks == 0


def test_basic_abort_forces_and_acks():
    """The baseline forces abort records at YES-voters and collects
    acknowledgments — the cost PA removes (§3)."""
    cluster = Cluster(BASIC_2PC, nodes=["coord", "s1", "s2"])
    spec = updating_spec("coord", ["s1", "s2"])
    spec.participant("s2").veto = True
    cluster.run_transaction(spec)
    # s1 voted YES (forced prepared), then got the abort (forced abort,
    # then acked).
    assert cluster.metrics.forced_log_writes(
        node="s1", txn=spec.txn_id) == 2
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 1


def test_pc_abort_is_the_expensive_case():
    """PC subordinates presume commit, so aborts must be forced and
    acknowledged everywhere."""
    cluster = Cluster(PRESUMED_COMMIT, nodes=["coord", "s1", "s2"])
    spec = updating_spec("coord", ["s1", "s2"])
    spec.participant("s2").veto = True
    cluster.run_transaction(spec)
    assert cluster.metrics.forced_log_writes(
        node="coord", txn=spec.txn_id) >= 2  # collecting + aborted
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 1  # from the YES-voting s1


def test_no_voter_gets_closure_message():
    """The coordinator tells even the NO voter the final outcome (the
    conversation must resync), giving Table 2's 2 coordinator flows."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    spec.participant("sub").veto = True
    cluster.run_transaction(spec)
    aborts = cluster.metrics.flows.total(
        msg_type=MessageType.ABORT.value, txn=spec.txn_id)
    assert aborts == 1


def test_read_only_voters_skip_abort_notification():
    """Commit and abort are identical for read-only voters: no phase
    two for them even on abort."""
    from repro.lrm.operations import read_op
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "reader", "vetoer"])
    spec = flat_tree("coord", ["reader", "vetoer"])
    spec.participant("reader").ops.append(read_op("k"))
    spec.participant("vetoer").ops.append(write_op("k", 1))
    spec.participant("vetoer").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    reader_received = cluster.metrics.flows.total(
        msg_type=MessageType.ABORT.value, txn=spec.txn_id)
    # Only the vetoer is notified; the read-only voter is left alone.
    assert reader_received == 1


def test_late_yes_vote_after_abort_decision_gets_abort():
    """A YES vote that arrives after another child already caused an
    abort decision must still be answered, or the voter blocks in
    doubt forever."""
    from repro.net.latency import PerLinkLatency
    latency = PerLinkLatency(default=1.0)
    latency.set_link("coord", "slow", 8.0)
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "fast", "slow"],
                      latency=latency)
    spec = updating_spec("coord", ["fast", "slow"])
    spec.participant("fast").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    assert cluster.value("slow", "key-slow") is None
    cluster.node("slow").default_rm.locks.assert_released(spec.txn_id)
