"""Golden reproduction tests: every cell of the paper's Tables 2-4.

These are the repository's headline claim: the simulator *measures*
exactly the costs the paper *derives* for every protocol variant and
optimization.  A failure here means the protocol engine and the
analytic model (and hence the paper) disagree.
"""

import pytest

from repro.analysis.compare import compare_row
from repro.analysis.formulas import (
    TABLE3_FORMULAS,
    basic_2pc_costs,
    group_commit_io_savings,
    long_locks_costs,
    pa_abort_costs,
    pa_commit_costs,
    pa_read_only_costs,
    pc_commit_costs,
    pn_commit_costs,
)
from repro.analysis.scenarios import (
    TABLE2_SCENARIOS,
    run_table3_scenario,
    run_table4_scenario,
)
from repro.analysis.tables import table2_rows, table3_rows, table4_rows


# ----------------------------------------------------------------------
# Table 2: per-role flows and log writes, 2-participant transaction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("row", table2_rows(), ids=lambda r: r.key)
def test_table2_row(row):
    result = TABLE2_SCENARIOS[row.key]()
    coord = compare_row(f"{row.label} [coordinator]", row.coordinator,
                        result.coordinator)
    sub = compare_row(f"{row.label} [subordinate]", row.subordinate,
                      result.subordinate)
    assert coord.matches, coord.describe()
    assert sub.matches, sub.describe()


def test_table2_commit_outcomes():
    for row in table2_rows():
        result = TABLE2_SCENARIOS[row.key]()
        expected = "abort" if row.key == "pa_abort" else "commit"
        assert result.outcome == expected, row.key


# ----------------------------------------------------------------------
# Table 3: n = 11 participants, m = 4 following each optimization
# ----------------------------------------------------------------------
@pytest.mark.parametrize("row", table3_rows(n=11, m=4),
                         ids=lambda r: r.key)
def test_table3_row_n11_m4(row):
    result = run_table3_scenario(row.key, row.n, row.m)
    comparison = compare_row(row.label, row.analytic, result.total)
    assert comparison.matches, comparison.describe()


@pytest.mark.parametrize("key", ["basic", "read_only", "leave_out",
                                 "unsolicited_vote", "vote_reliable"])
@pytest.mark.parametrize("n,m", [(4, 1), (6, 3)])
def test_table3_other_tree_sizes(key, n, m):
    """The formulas hold for tree sizes beyond the paper's example."""
    analytic = TABLE3_FORMULAS[key].costs(n, m)
    result = run_table3_scenario(key, n, m)
    comparison = compare_row(f"{key}(n={n},m={m})", analytic, result.total)
    assert comparison.matches, comparison.describe()


# ----------------------------------------------------------------------
# Table 4: r = 12 chained 2-member transactions
# ----------------------------------------------------------------------
@pytest.mark.parametrize("row", table4_rows(r=12),
                         ids=lambda r: r.variant)
def test_table4_row_r12(row):
    measured = run_table4_scenario(row.variant, row.r)
    comparison = compare_row(row.label, row.analytic, measured)
    assert comparison.matches, comparison.describe()


@pytest.mark.parametrize("variant,r", [("basic", 6), ("long_locks", 6),
                                       ("long_locks_last_agent", 6)])
def test_table4_other_chain_lengths(variant, r):
    analytic = long_locks_costs(r, variant)
    measured = run_table4_scenario(variant, r)
    comparison = compare_row(f"{variant}(r={r})", analytic, measured)
    assert comparison.matches, comparison.describe()


# ----------------------------------------------------------------------
# Formula unit checks (paper prose cross-checks)
# ----------------------------------------------------------------------
def test_basic_formula_matches_table2_totals():
    assert basic_2pc_costs(2).as_tuple() == (4, 5, 3)
    assert pa_commit_costs(2).as_tuple() == (4, 5, 3)


def test_pn_formula_matches_table2_totals():
    # coordinator 3/2 + subordinate 4/3
    assert pn_commit_costs(2).as_tuple() == (4, 7, 5)


def test_abort_and_read_only_formulas():
    assert pa_abort_costs(2).as_tuple() == (3, 0, 0)
    assert pa_read_only_costs(2).as_tuple() == (2, 0, 0)


def test_pc_formula():
    assert pc_commit_costs(2).as_tuple() == (3, 5, 3)


def test_table3_example_values_from_paper():
    """The n=11, m=4 column of Table 3 (OCR-reconstructed)."""
    expected = {
        "basic": (40, 32, 21),
        "read_only": (32, 20, 13),
        "last_agent": (32, 32, 21),
        "unsolicited_vote": (36, 32, 21),
        "leave_out": (24, 20, 13),
        "vote_reliable": (36, 32, 21),
        "wait_for_outcome": (40, 32, 21),
        "shared_logs": (40, 32, 13),
        "long_locks": (36, 32, 21),
    }
    for key, triple in expected.items():
        assert TABLE3_FORMULAS[key].costs(11, 4).as_tuple() == triple, key


def test_table4_example_values_from_paper():
    assert long_locks_costs(12, "basic").as_tuple() == (48, 60, 36)
    assert long_locks_costs(12, "long_locks").as_tuple() == (36, 60, 36)
    assert long_locks_costs(
        12, "long_locks_last_agent").as_tuple() == (18, 60, 36)


def test_formula_argument_validation():
    with pytest.raises(ValueError):
        TABLE3_FORMULAS["read_only"].costs(4, 4)  # m must be <= n-1
    with pytest.raises(ValueError):
        long_locks_costs(0, "basic")
    with pytest.raises(ValueError):
        long_locks_costs(3, "long_locks_last_agent")  # odd r
    with pytest.raises(ValueError):
        long_locks_costs(4, "bogus")


def test_group_commit_savings_formula():
    assert group_commit_io_savings(20, 1) == 0
    assert group_commit_io_savings(20, 4) == 15
    assert group_commit_io_savings(0, 4) == 0
    with pytest.raises(ValueError):
        group_commit_io_savings(-1, 4)
    with pytest.raises(ValueError):
        group_commit_io_savings(10, 0)
