"""Unit tests for the tracer and sequence-diagram renderer."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.trace.diagram import render_sequence_diagram
from repro.trace.recorder import TraceEvent, Tracer

from tests.conftest import updating_spec


@pytest.fixture
def traced_run():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    tracer = Tracer().attach(cluster)
    spec = updating_spec("coord", ["sub"])
    cluster.run_transaction(spec)
    return cluster, tracer, spec


def test_events_in_time_order(traced_run):
    __, tracer, __spec = traced_run
    times = [e.time for e in tracer.events]
    assert times == sorted(times)


def test_flow_events_carry_endpoints(traced_run):
    __, tracer, spec = traced_run
    flows = tracer.flows(spec.txn_id)
    assert flows
    for event in flows:
        assert event.node in ("coord", "sub")
        assert event.dst in ("coord", "sub")


def test_log_events_carry_forced_flag(traced_run):
    __, tracer, spec = traced_run
    logs = [e for e in tracer.for_txn(spec.txn_id) if e.kind == "log"]
    forced = [e for e in logs if e.forced]
    assert any(e.text == "prepared" for e in forced)
    assert any(e.text == "end" and not e.forced for e in logs)


def test_for_txn_filters(traced_run):
    cluster, tracer, first = traced_run
    second = updating_spec("coord", ["sub"])
    cluster.run_transaction(second)
    assert all(e.txn_id == first.txn_id
               for e in tracer.for_txn(first.txn_id))
    assert tracer.for_txn(second.txn_id)


def test_describe_formats():
    flow = TraceEvent(1.0, "flow", "a", "prepare", dst="b")
    log = TraceEvent(2.0, "log", "a", "prepared", forced=True)
    note = TraceEvent(3.0, "note", "a", "decides commit")
    assert "a -> b: prepare" in flow.describe()
    assert "*log prepared" in log.describe()
    assert "decides commit" in note.describe()


class TestDiagram:
    def events(self):
        return [
            TraceEvent(1.0, "flow", "a", "prepare", dst="b", txn_id="t"),
            TraceEvent(2.0, "log", "b", "prepared", forced=True,
                       txn_id="t"),
            TraceEvent(3.0, "flow", "b", "vote-yes", dst="a", txn_id="t"),
            TraceEvent(4.0, "note", "a", "decides commit", txn_id="t"),
            TraceEvent(5.0, "flow", "a", "data", dst="b", txn_id="t"),
        ]

    def test_columns_and_arrows(self):
        out = render_sequence_diagram(self.events(), ["a", "b"])
        assert "prepare" in out and "-->" in out or "->" in out
        assert "*log prepared" in out
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]

    def test_right_to_left_arrow(self):
        out = render_sequence_diagram(self.events(), ["a", "b"])
        assert "<-" in out   # the vote flows right-to-left

    def test_notes_toggle(self):
        with_notes = render_sequence_diagram(self.events(), ["a", "b"],
                                             include_notes=True)
        without = render_sequence_diagram(self.events(), ["a", "b"],
                                          include_notes=False)
        assert "(decides commit)" in with_notes
        assert "(decides commit)" not in without

    def test_data_toggle(self):
        hidden = render_sequence_diagram(self.events(), ["a", "b"])
        shown = render_sequence_diagram(self.events(), ["a", "b"],
                                        include_data=True)
        assert hidden.count("data") == 0
        assert shown.count("data") == 1

    def test_unknown_nodes_skipped(self):
        events = [TraceEvent(1.0, "flow", "ghost", "prepare", dst="a",
                             txn_id="t")]
        out = render_sequence_diagram(events, ["a", "b"])
        assert "prepare" not in out

    def test_detached_rm_owner_renders_in_node_column(self):
        events = [TraceEvent(1.0, "log", "a/db", "lrm-prepared",
                             forced=False, txn_id="t")]
        out = render_sequence_diagram(events, ["a", "b"])
        assert "lrm-prepared" in out

    def test_title_rendering(self):
        out = render_sequence_diagram([], ["a"], title="My Figure")
        assert out.startswith("My Figure")


def test_tracer_covers_detached_rm_logs():
    config = PRESUMED_ABORT.with_options(shared_log=False)
    cluster = Cluster(config, nodes=["host"])
    cluster.node("host").add_detached_rm("db", own_log=True)
    tracer = Tracer().attach(cluster)
    from repro.core.spec import flat_tree
    from repro.lrm.operations import write_op
    spec = flat_tree("host", [])
    spec.participant("host").rm_ops["db"] = [write_op("k", 1)]
    cluster.run_transaction(spec)
    assert any(e.kind == "log" and e.text.startswith("lrm-")
               for e in tracer.events)


class TestAttachDetach:
    def build(self):
        return Cluster(PRESUMED_ABORT, nodes=["a", "b"])

    def hook_count(self, cluster):
        total = len(cluster.network.on_send)
        for node in cluster.nodes.values():
            total += len(node.on_note) + len(node.log.on_write)
        return total

    def test_reattach_same_cluster_is_noop(self):
        cluster = self.build()
        tracer = Tracer().attach(cluster)
        hooks = self.hook_count(cluster)
        assert tracer.attach(cluster) is tracer
        assert self.hook_count(cluster) == hooks

    def test_attach_elsewhere_while_attached_raises(self):
        tracer = Tracer().attach(self.build())
        with pytest.raises(RuntimeError, match="detach"):
            tracer.attach(self.build())

    def test_detach_stops_recording_and_allows_reattach(self):
        cluster = self.build()
        tracer = Tracer().attach(cluster)
        assert tracer.attached
        tracer.detach()
        assert not tracer.attached
        assert self.hook_count(cluster) == 0
        cluster.run_transaction(updating_spec("a", ["b"]))
        assert tracer.events == []
        tracer.attach(cluster)  # reattach after detach is legal
        cluster.run_transaction(updating_spec("a", ["b"], txn_id="t2"))
        assert tracer.events
        tracer.detach()
        tracer.detach()  # idempotent

    def test_detach_only_removes_own_hooks(self):
        cluster = self.build()
        other_calls = []
        cluster.network.on_send.append(
            lambda message: other_calls.append(message))
        tracer = Tracer().attach(cluster)
        tracer.detach()
        assert len(cluster.network.on_send) == 1
        cluster.run_transaction(updating_spec("a", ["b"]))
        assert other_calls
