"""Chaos engine, campaign harness, shrinking, and hardening regressions."""

import json

import pytest

from repro.chaos import (
    ChaosEngine,
    ChaosSchedule,
    build_chaos_artifact,
    chaos_spec,
    generate_schedule,
    load_chaos_artifact,
    replay_chaos_artifact,
    run_chaos_campaign,
    run_chaos_schedule,
    save_chaos_artifact,
    validate_action,
)
from repro.chaos.campaign import _build_chaos_cell, _start_and_run
from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.errors import ConfigurationError
from repro.faults.injector import CrashSite, FaultInjector, FaultPlan
from repro.log.records import LogRecordType
from repro.lrm.operations import write_op
from repro.metrics.collector import MetricsCollector
from repro.net.conversation import ConversationTracker
from repro.net.latency import ConstantLatency
from repro.net.message import Message, MessageType
from repro.net.network import Network
from repro.sim.kernel import Simulator
from repro.verify import ProtocolChecker


def make_net():
    simulator = Simulator(seed=1)
    network = Network(simulator, MetricsCollector(), ConstantLatency(1.0))
    return simulator, network


def msg(src, dst, msg_type=MessageType.DATA, txn="t1", **kwargs):
    return Message(msg_type=msg_type, txn_id=txn, src=src, dst=dst,
                   **kwargs)


# ----------------------------------------------------------------------
# Action validation and schedule generation
# ----------------------------------------------------------------------
def test_validate_action_rejects_bad_shapes():
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "explode", "nth": 0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "duplicate"})            # missing nth
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "delay", "nth": -1, "extra": 2.0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "delay", "nth": 0, "extra": 0.0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "duplicate", "nth": 0, "copies": 0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "flap", "a": "x", "b": "y", "at": 5.0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "flap", "a": "x", "b": "y",
                         "at": 5.0, "heal_at": 5.0})
    with pytest.raises(ConfigurationError):
        validate_action({"kind": "flap", "a": "x", "b": "y",
                         "at": -1.0, "heal_at": 5.0})


def test_schedule_helpers():
    actions = [{"kind": "delay", "nth": 0, "extra": 1.0},
               {"kind": "hold", "nth": 3, "extra": 40.0},
               {"kind": "flap", "a": "x", "b": "y",
                "at": 2.0, "heal_at": 9.0}]
    schedule = ChaosSchedule(actions)
    assert len(schedule) == 3
    assert schedule.to_list() == actions
    assert len(schedule.without(1)) == 2
    assert schedule.subset([2]).to_list() == [actions[2]]
    text = schedule.describe()
    assert "delay@send#0" in text and "flap x-y" in text
    assert ChaosSchedule([]).describe() == "(no adversaries)"


def test_generate_schedule_deterministic_and_valid():
    nodes = ["n0", "n1", "n2", "n3"]
    for seed in range(25):
        first = generate_schedule(seed, nodes).to_list()
        second = generate_schedule(seed, nodes).to_list()
        assert first == second
        assert 1 <= len(first) <= 4
        ChaosSchedule(first)  # re-validates every action
    assert generate_schedule(1, nodes).to_list() != \
        generate_schedule(2, nodes).to_list()


# ----------------------------------------------------------------------
# Adversary delivery semantics
# ----------------------------------------------------------------------
def test_duplicate_adversary_delivers_copies():
    simulator, network = make_net()
    got = []
    network.register("a", lambda m: None)
    network.register("b", got.append)
    network.adversary = ChaosEngine(ChaosSchedule(
        [{"kind": "duplicate", "nth": 0, "copies": 2, "gap": 0.5}]))
    network.send(msg("a", "b"))
    simulator.run_until(10.0)
    assert len(got) == 3                # original + two copies
    assert network.sent == 1            # but only one flow was paid for
    assert network.adversary.fired and \
        network.adversary.fired[0][1] == "duplicate"


def test_reorder_adversary_violates_fifo():
    simulator, network = make_net()
    arrivals = []
    network.register("a", lambda m: None)
    network.register("b", lambda m: arrivals.append((m.txn_id,
                                                     simulator.now)))
    network.adversary = ChaosEngine(ChaosSchedule(
        [{"kind": "reorder", "nth": 0, "extra": 5.0}]))
    network.send(msg("a", "b", txn="first"))
    network.send(msg("a", "b", txn="second"))
    simulator.run_until(10.0)
    assert [t for t, _ in arrivals] == ["second", "first"]


def test_delay_adversary_keeps_fifo():
    simulator, network = make_net()
    arrivals = []
    network.register("a", lambda m: None)
    network.register("b", lambda m: arrivals.append((m.txn_id,
                                                     simulator.now)))
    network.adversary = ChaosEngine(ChaosSchedule(
        [{"kind": "delay", "nth": 0, "extra": 5.0}]))
    network.send(msg("a", "b", txn="first"))
    network.send(msg("a", "b", txn="second"))
    simulator.run_until(10.0)
    # The spike delays the first message AND everything behind it on
    # the link: the session stays in order.
    assert [t for t, _ in arrivals] == ["first", "second"]
    assert arrivals[0][1] == 6.0
    assert arrivals[1][1] >= arrivals[0][1]


def test_hold_adversary_delivers_stale():
    simulator, network = make_net()
    arrivals = []
    network.register("a", lambda m: None)
    network.register("b", lambda m: arrivals.append(simulator.now))
    network.adversary = ChaosEngine(ChaosSchedule(
        [{"kind": "hold", "nth": 0, "extra": 60.0}]))
    network.send(msg("a", "b"))
    simulator.run_until(100.0)
    assert arrivals == [61.0]


def test_unmatched_ordinals_take_default_path():
    simulator, network = make_net()
    got = []
    network.register("a", lambda m: None)
    network.register("b", got.append)
    network.adversary = ChaosEngine(ChaosSchedule(
        [{"kind": "duplicate", "nth": 7, "copies": 1, "gap": 1.0}]))
    network.send(msg("a", "b"))
    simulator.run_until(10.0)
    assert len(got) == 1
    assert network.adversary.fired == []


def test_flap_partitions_and_heals():
    cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"])
    ChaosEngine(ChaosSchedule(
        [{"kind": "flap", "a": "a", "b": "b",
          "at": 5.0, "heal_at": 9.0}])).install(cluster)
    cluster.run_until(6.0)
    assert cluster.network.is_partitioned("a", "b")
    cluster.run_until(10.0)
    assert not cluster.network.is_partitioned("a", "b")


def test_empty_engine_is_bit_identical_to_no_adversary():
    def signature(install_engine):
        cluster, spec = _build_chaos_cell("PA", "baseline", 777)
        if install_engine:
            ChaosEngine().install(cluster)
        outcome, quiesced = _start_and_run(cluster, spec)
        return (outcome, quiesced, cluster.simulator.now,
                cluster.simulator.events_processed,
                cluster.network.sent, cluster.network.delivered)
    assert signature(False) == signature(True)


# ----------------------------------------------------------------------
# Protocol hardening regressions
# ----------------------------------------------------------------------
def test_duplicate_enroll_is_idempotent():
    # Ordinal 0 is the root's first enrollment send; before the guard
    # the duplicate crashed _new_context with "context already exists".
    run = run_chaos_schedule("PA", "baseline", 12345,
                             [{"kind": "duplicate", "nth": 0,
                               "copies": 2, "gap": 1.0}])
    assert run.ok, run.violations


def test_duplicate_commit_is_idempotent():
    # Pinned by the campaign scan: duplicating send #13 re-delivers the
    # COMMIT to intermediate n1, which used to re-log COMMITTED and
    # re-propagate COMMIT to n2 (rules R7 + RI).
    run = run_chaos_schedule("PA", "baseline", 1111561147,
                             [{"kind": "duplicate", "nth": 13,
                               "copies": 2, "gap": 2.373}])
    assert run.ok, run.violations


def test_stale_delegation_answered_not_dropped():
    # Pinned campaign counterexample: holding the n1->n2 enrollment for
    # 32.261s makes the last agent's unilateral abort cross the
    # delegation on the wire; the delegator then hung in doubt forever.
    run = run_chaos_schedule("PA", "last-agent", 2095662085,
                             [{"kind": "hold", "nth": 3,
                               "extra": 32.261}])
    assert run.ok, run.violations


@pytest.mark.parametrize("config,expected", [
    (BASIC_2PC, "abort"),
    (PRESUMED_ABORT, "abort"),
    (PRESUMED_NOTHING, "abort"),
    (PRESUMED_COMMIT, "commit"),
])
def test_stale_vote_answered_by_presumption(config, expected):
    """A YES vote for an unknown transaction gets an OUTCOME reply
    carrying the configured presumption, never an unconditional abort."""
    cluster = Cluster(config, nodes=["c", "s"])
    sends = []
    cluster.network.on_send.append(sends.append)
    cluster.nodes["c"].receive(msg("s", "c", MessageType.VOTE_YES,
                                   txn="ghost"))
    cluster.run_until(10.0)
    replies = [m for m in sends if m.msg_type is MessageType.OUTCOME
               and m.txn_id == "ghost"]
    assert replies and replies[0].dst == "s"
    assert replies[0].payload["outcome"] == expected


def test_stale_no_vote_needs_no_reply():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
    sends = []
    cluster.network.on_send.append(sends.append)
    cluster.nodes["c"].receive(msg("s", "c", MessageType.VOTE_NO,
                                   txn="ghost"))
    cluster.run_until(10.0)
    assert [m for m in sends if m.txn_id == "ghost"] == []


def test_stale_vote_answered_from_log_over_presumption():
    """Under PA the presumption says abort, but a surviving COMMITTED
    record must win: the log is the durable truth."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
    cluster.nodes["c"].log.write("ghost", LogRecordType.COMMITTED,
                                 force=True)
    cluster.run_until(5.0)
    sends = []
    cluster.network.on_send.append(sends.append)
    cluster.nodes["c"].receive(msg("s", "c", MessageType.VOTE_YES,
                                   txn="ghost"))
    cluster.run_until(10.0)
    replies = [m for m in sends if m.msg_type is MessageType.OUTCOME
               and m.txn_id == "ghost"]
    assert replies and replies[0].payload["outcome"] == "commit"


# ----------------------------------------------------------------------
# Checker rule R7
# ----------------------------------------------------------------------
def test_r7_flags_duplicate_commit_send():
    checker = ProtocolChecker()
    checker._logged_committed.add(("n0", "t"))
    commit = msg("n0", "n1", MessageType.COMMIT, txn="t")
    checker._on_send(commit)
    assert checker.violations == []
    checker._on_send(commit)
    assert [v.rule for v in checker.violations] == ["R7"]
    # A COMMIT to a different destination is fine.
    checker._logged_committed.add(("n0", "t"))
    checker._on_send(msg("n0", "n2", MessageType.COMMIT, txn="t"))
    assert len(checker.violations) == 1


def test_r7_exempts_repeated_abort():
    checker = ProtocolChecker()
    abort = msg("n0", "n1", MessageType.ABORT, txn="t")
    checker._on_send(abort)
    checker._on_send(abort)
    assert checker.violations == []


# ----------------------------------------------------------------------
# FaultPlan validation
# ----------------------------------------------------------------------
def test_fault_plan_rejects_overlapping_crash_windows():
    plan = FaultPlan().crash("n0", at=5.0, restart_at=20.0) \
                      .crash("n0", at=10.0)
    with pytest.raises(ConfigurationError, match="overlapping"):
        plan.validate()
    # An open-ended first crash overlaps everything after it.
    plan = FaultPlan().crash("n1", at=5.0).crash("n1", at=50.0)
    with pytest.raises(ConfigurationError, match="overlapping"):
        plan.validate()


def test_fault_plan_accepts_sequential_windows():
    plan = FaultPlan().crash("n0", at=5.0, restart_at=10.0) \
                      .crash("n0", at=10.0, restart_at=15.0) \
                      .crash("n1", at=7.0)
    assert plan.validate() is plan


def test_fault_plan_rejects_negative_times():
    with pytest.raises(ConfigurationError, match="negative"):
        FaultPlan().crash("n0", at=-1.0).validate()
    with pytest.raises(ConfigurationError, match="negative"):
        FaultPlan().partition("a", "b", at=-2.0).validate()


def test_fault_plan_rejects_duplicate_sites():
    site = CrashSite("send", "n0", 3)
    plan = FaultPlan().crash_at_site(site).crash_at_site(site)
    with pytest.raises(ConfigurationError, match="duplicate"):
        plan.validate()
    # Same site, different side of the action: two distinct plans.
    plan = FaultPlan().crash_at_site(site, when="pre") \
                      .crash_at_site(site, when="post")
    assert plan.validate() is plan


def test_fault_injector_validates_on_apply():
    cluster = Cluster(PRESUMED_ABORT, nodes=["n0", "n1"])
    plan = FaultPlan().crash("n0", at=1.0).crash("n0", at=2.0)
    with pytest.raises(ConfigurationError):
        FaultInjector(cluster).apply(plan)


# ----------------------------------------------------------------------
# ConversationTracker under delivery chaos
# ----------------------------------------------------------------------
def _two_node_spec(long_locks=False):
    return TransactionSpec(participants=[
        ParticipantSpec(node="a", ops=[write_op("x", 1)]),
        ParticipantSpec(node="b", parent="a", ops=[write_op("y", 1)])],
        long_locks=long_locks)


def test_tracker_no_false_positives_under_delivery_chaos():
    """Duplicated and reordered deliveries must not corrupt the
    session-state reconstruction: the tracker watches sends, and what
    the sender put on the wire is unchanged."""
    config = PRESUMED_ABORT.with_options(long_locks=True)
    cluster = Cluster(config, nodes=["a", "b"])
    ChaosEngine(ChaosSchedule([
        {"kind": "duplicate", "nth": 2, "copies": 2, "gap": 0.5},
        {"kind": "reorder", "nth": 4, "extra": 3.0},
    ])).install(cluster)
    tracker = ConversationTracker().attach(cluster)
    cluster.run_transaction(_two_node_spec(long_locks=True))
    cluster.run_until(cluster.simulator.now + 30.0)
    tracker.assert_clean()
    baseline_messages = tracker.session("a", "b").messages
    tracker.detach()
    tracker.detach()  # idempotent
    cluster.send_application_data("a", "b")
    assert tracker.session("a", "b").messages == baseline_messages


def test_tracker_still_catches_real_violation_under_chaos():
    config = PRESUMED_ABORT.with_options(long_locks=True)
    cluster = Cluster(config, nodes=["a", "b"])
    ChaosEngine(ChaosSchedule([
        {"kind": "duplicate", "nth": 3, "copies": 1, "gap": 0.3},
    ])).install(cluster)
    tracker = ConversationTracker().attach(cluster)
    cluster.run_transaction(_two_node_spec(long_locks=True))
    # The coordinator barges in instead of waiting in RECEIVE state.
    cluster.send_application_data("a", "b")
    assert len(tracker.violations) == 1


# ----------------------------------------------------------------------
# Campaign
# ----------------------------------------------------------------------
def test_small_campaign_clean_and_parallel_bit_identical():
    serial = run_chaos_campaign(configs=["PA"],
                                variants=["baseline", "read-only"],
                                seed=3, schedules=3, workers=1)
    parallel = run_chaos_campaign(configs=["PA"],
                                  variants=["baseline", "read-only"],
                                  seed=3, schedules=3, workers=2)
    assert serial.clean
    assert serial.total_runs == 6
    assert json.dumps(serial.to_dict(), sort_keys=True) == \
        json.dumps(parallel.to_dict(), sort_keys=True)
    assert "no failing schedules" in serial.describe()


def test_campaign_rejects_unknown_cells():
    with pytest.raises(ValueError):
        run_chaos_campaign(configs=["2PC-TURBO"], schedules=1)
    with pytest.raises(ValueError):
        run_chaos_campaign(variants=["missing-rm"], schedules=1)


def test_chaos_spec_variants():
    ro = chaos_spec("PA", "read-only")
    assert not ro.participants[3].ops[0].is_update
    la = chaos_spec("PA", "last-agent")
    assert la.participants[3].last_agent


# ----------------------------------------------------------------------
# Artifacts
# ----------------------------------------------------------------------
def test_artifact_round_trip(tmp_path):
    schedule = [{"kind": "hold", "nth": 3, "extra": 32.261}]
    artifact = build_chaos_artifact("PA", "last-agent", 2095662085,
                                    schedule, "violations", ["[R7] ..."],
                                    spec=chaos_spec("PA", "last-agent"))
    path = save_chaos_artifact(artifact, str(tmp_path))
    loaded = load_chaos_artifact(path)
    assert loaded["schedule"] == schedule
    assert loaded["config"] == "PA" and loaded["seed"] == 2095662085
    assert loaded["spec"]["participants"][3]["last_agent"]


def test_load_rejects_foreign_artifacts(tmp_path):
    path = tmp_path / "other.json"
    path.write_text(json.dumps({"kind": "torture-site-failure"}))
    with pytest.raises(ValueError, match="not a chaos artifact"):
        load_chaos_artifact(str(path))
    path.write_text(json.dumps({"kind": "chaos-schedule-failure",
                                "version": 99}))
    with pytest.raises(ValueError, match="version"):
        load_chaos_artifact(str(path))


# ----------------------------------------------------------------------
# Acceptance: a re-introduced duplicate-DECISION bug is caught, shrunk
# to a tiny replayable artifact, and the artifact reproduces it.
# ----------------------------------------------------------------------
def test_campaign_catches_and_shrinks_duplicate_decision_bug(
        monkeypatch, tmp_path):
    from repro.core.decision import DecisionMixin
    monkeypatch.setattr(DecisionMixin, "_duplicate_decision",
                        lambda self, context, outcome: False)
    report = run_chaos_campaign(configs=["PA"], variants=["baseline"],
                                seed=1, schedules=4, workers=1,
                                artifact_dir=str(tmp_path))
    assert not report.clean
    failures = report.failures()
    assert failures
    rules = " ".join(v for _, run in failures for v in run.violations)
    assert "[R7]" in rules and "[RI]" in rules
    # Shrinking: the minimal counterexample is at most 3 actions (this
    # one is a single duplicate).
    assert report.shrunk
    assert all(1 <= len(minimal) <= 3
               for minimal in report.shrunk.values())
    # The artifact replays to the same failure while the bug is in.
    artifacts = sorted(tmp_path.glob("chaos-*.json"))
    assert artifacts
    loaded = load_chaos_artifact(str(artifacts[0]))
    assert len(loaded["schedule"]) <= 3
    replayed = replay_chaos_artifact(loaded)
    assert not replayed.ok
    assert any("R7" in v or "RI" in v for v in replayed.violations)


def test_pinned_bug_schedule_is_clean_with_guard_in_place():
    # The exact schedule the acceptance campaign shrinks to, against
    # the real (guarded) protocol: clean.
    run = run_chaos_schedule("PA", "baseline", 1111561147,
                             [{"kind": "duplicate", "nth": 13,
                               "copies": 2, "gap": 2.373}])
    assert run.ok, run.violations


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_chaos_smoke(capsys):
    from repro.cli import main
    assert main(["chaos", "--configs", "PA", "--variants", "baseline",
                 "--schedules", "2"]) == 0
    out = capsys.readouterr().out
    assert "chaos campaign" in out and "no failing schedules" in out


def test_cli_chaos_replay(tmp_path, capsys):
    from repro.cli import main
    artifact = build_chaos_artifact(
        "PA", "last-agent", 2095662085,
        [{"kind": "hold", "nth": 3, "extra": 32.261}], "violations", [])
    path = save_chaos_artifact(artifact, str(tmp_path))
    assert main(["chaos", "--replay", path]) == 0
    assert "ok" in capsys.readouterr().out
