"""Trace export/diff and LaTeX rendering tests."""

import pytest

from repro.analysis.latex import (
    latex_table,
    table2_latex,
    table3_latex,
    table4_latex,
)
from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.trace.export import diff_traces, export_events, import_events
from repro.trace.recorder import TraceEvent, Tracer

from tests.conftest import updating_spec


def traced_run(seed=0, sub_value=1):
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"], seed=seed)
    tracer = Tracer().attach(cluster)
    # A fixed txn id keeps traces from different runs comparable.
    spec = updating_spec("c", ["s"], txn_id="export-test")
    spec.participant("s").ops[0] = __import__(
        "repro.lrm.operations", fromlist=["write_op"]
    ).write_op("key-s", sub_value)
    cluster.run_transaction(spec)
    return tracer.events


class TestExport:
    def test_round_trip(self):
        events = traced_run()
        text = export_events(events)
        restored = import_events(text)
        assert restored == events

    def test_empty_lines_skipped(self):
        events = traced_run()
        text = export_events(events) + "\n\n"
        assert import_events(text) == events

    def test_invalid_json_reports_line(self):
        with pytest.raises(ValueError, match="line 2"):
            import_events('{"time": 1.0, "kind": "note", "node": "a", '
                          '"text": "x", "dst": null, "forced": null, '
                          '"txn_id": null}\nnot-json')

    def test_identical_runs_diff_clean(self):
        first = traced_run(seed=5)
        second = traced_run(seed=5)
        assert diff_traces(first, second) is None
        assert diff_traces(first, second, compare_times=True) is None

    def test_structural_divergence_located(self):
        first = traced_run(sub_value=1)
        # A different written value changes the lrm-update payload but
        # not the structure; force a structural change instead.
        second = [e for e in traced_run() if e.text != "end"]
        report = diff_traces(first, second)
        assert report is not None
        assert "differs" in report or "extra events" in report

    def test_length_divergence_located(self):
        first = traced_run()
        second = first[:-2]
        report = diff_traces(first, second)
        assert "extra events" in report
        assert "first" in report

    def test_time_shift_detected(self):
        first = traced_run()
        shifted = [TraceEvent(e.time + 1.0, e.kind, e.node, e.text,
                              e.dst, e.forced, e.txn_id) for e in first]
        assert diff_traces(first, shifted) is None
        assert "shifted in time" in diff_traces(first, shifted,
                                                compare_times=True)


class TestLatex:
    def test_generic_table_shape(self):
        out = latex_table(["a", "b"], [["x", "y"]], caption="Cap & Co",
                          label="tab:x")
        assert "\\begin{tabular}{ll}" in out
        assert "Cap \\& Co" in out
        assert "x & y \\\\" in out
        assert out.count("\\\\") == 2  # header + one row

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            latex_table(["a", "b"], [["only"]], caption="c", label="l")

    def test_table2_latex_contains_matching_triples(self):
        out = table2_latex()
        assert "\\begin{table}" in out
        # PA commit row: paper and measured triples identical.
        assert "2/2/1 & 2/2/1" in out

    def test_table3_and_4_latex_render(self):
        assert "tab:table3" in table3_latex(n=5, m=2)
        assert "tab:table4" in table4_latex(r=4)


class TestImportValidation:
    def test_unknown_field_names_line_and_field(self):
        good = ('{"time": 1.0, "kind": "note", "node": "a", '
                '"text": "x", "dst": null, "forced": null, '
                '"txn_id": null}')
        bad = ('{"time": 2.0, "kind": "note", "node": "a", '
               '"text": "x", "bogus": 1, "extra": 2}')
        with pytest.raises(ValueError,
                           match="line 2: unknown trace event "
                                 "field.s.: bogus, extra"):
            import_events(good + "\n" + bad)

    def test_non_object_line_rejected(self):
        with pytest.raises(ValueError, match="line 1: expected a JSON "
                                             "object, got list"):
            import_events('[1, 2, 3]')

    def test_missing_required_field_names_line(self):
        with pytest.raises(ValueError, match="line 1: invalid trace "
                                             "event"):
            import_events('{"time": 1.0}')
