"""Cluster facade behaviour and whole-run determinism."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import flat_tree
from repro.errors import ConfigurationError
from repro.lrm.operations import write_op
from repro.workload.generator import WorkloadGenerator, WorkloadParams
from repro.sim.randomness import RandomStream

from tests.conftest import updating_spec


class TestClusterFacade:
    def test_value_reads_named_rm(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["host"])
        cluster.node("host").add_detached_rm("db")
        spec = flat_tree("host", [])
        spec.participant("host").rm_ops["db"] = [write_op("k", 5)]
        cluster.run_transaction(spec)
        assert cluster.value("host", "k", rm_name="db") == 5
        assert cluster.value("host", "k") is None  # default RM untouched

    def test_recorded_vs_durable_outcome(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        cluster.run_transaction(spec)
        assert cluster.recorded_outcome("c", spec.txn_id) == "commit"
        assert cluster.durable_outcome("c", spec.txn_id) == "commit"
        assert cluster.recorded_outcome("c", "ghost") is None

    def test_run_transactions_sequences_specs(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        specs = [updating_spec("c", ["s"]) for __ in range(3)]
        handles = cluster.run_transactions(specs)
        assert all(h.committed for h in handles)

    def test_transaction_records_collected(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        cluster.run_transaction(updating_spec("c", ["s"]))
        assert len(cluster.metrics.transactions) == 1
        record = cluster.metrics.transactions[0]
        assert record.outcome == "commit"
        assert record.latency > 0

    def test_reliable_nodes_flag(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"],
                          reliable_nodes=["b"])
        assert not cluster.node("a").default_rm.reliable
        assert cluster.node("b").default_rm.reliable

    def test_unknown_spec_node_rejected(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["a"])
        with pytest.raises(ConfigurationError):
            cluster.start_transaction(flat_tree("a", ["ghost"]))


class TestDeterminism:
    def run_workload(self, seed):
        nodes = ["n0", "n1", "n2", "n3"]
        cluster = Cluster(PRESUMED_ABORT, nodes=nodes, seed=seed)
        generator = WorkloadGenerator(
            nodes, WorkloadParams(read_only_fraction=0.4, key_space=4),
            RandomStream(seed))
        outcomes = []
        for spec in generator.stream(8):
            handle = cluster.run_transaction(spec)
            outcomes.append(handle.outcome)
        metrics = cluster.metrics
        return (outcomes, metrics.commit_flows(),
                metrics.total_log_writes(), metrics.forced_log_writes(),
                metrics.physical_ios(), round(metrics.mean_latency(), 9))

    def test_same_seed_identical_run(self):
        assert self.run_workload(7) == self.run_workload(7)

    def test_different_seed_may_differ(self):
        # Not guaranteed to differ, but the fingerprint should at least
        # be produced without error.
        first = self.run_workload(7)
        second = self.run_workload(8)
        assert len(first) == len(second)

    def test_crash_run_deterministic(self):
        def run():
            config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                                 retry_interval=15.0)
            cluster = Cluster(config, nodes=["c", "s"], seed=3)
            spec = flat_tree("c", ["s"], txn_id="det-crash")
            for participant in spec.participants:
                participant.ops.append(
                    write_op(f"key-{participant.node}", 1))
            cluster.crash_at("s", 4.5)
            cluster.restart_at("s", 40.0)
            handle = cluster.start_transaction(spec)
            cluster.run_until(300.0)
            metrics = cluster.metrics
            return (handle.outcome, metrics.commit_flows(),
                    metrics.recovery_flows(), metrics.total_log_writes())

        first = run()
        # txn ids are global; rebuild with the same explicit id.
        second = run()
        assert first == second
