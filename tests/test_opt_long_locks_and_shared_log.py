"""Long Locks and Shared Logs (§4)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.lrm.operations import write_op
from repro.net.message import MessageType
from repro.workload.chains import chained_transaction_specs

from tests.conftest import updating_spec


class TestLongLocks:
    def config(self):
        return PRESUMED_ABORT.with_options(long_locks=True)

    def run_chain(self, cluster, r, **kwargs):
        specs = chained_transaction_specs(r, "a", "b", **kwargs)
        handles = [cluster.run_transaction(s) for s in specs]
        return specs, handles

    def test_three_flows_per_transaction(self):
        cluster = Cluster(self.config(), nodes=["a", "b"])
        specs, __ = self.run_chain(cluster, 4, long_locks=True)
        for spec in specs:
            assert cluster.metrics.commit_flows(txn=spec.txn_id) == 3

    def test_ack_rides_next_transactions_first_message(self):
        cluster = Cluster(self.config(), nodes=["a", "b"])
        piggybacked = []
        cluster.network.on_send.append(
            lambda m: piggybacked.extend(m.payload.get("piggyback", [])))
        self.run_chain(cluster, 2, long_locks=True)
        assert any(p.msg_type is MessageType.ACK for p in piggybacked)

    def test_coordinator_handle_waits_for_piggybacked_ack(self):
        """The commit operation at the coordinator completes only when
        the deferred ack arrives — the lock-stretch cost."""
        cluster = Cluster(self.config(), nodes=["a", "b"])
        spec = TransactionSpec(participants=[
            ParticipantSpec(node="a", ops=[write_op("x", 1)]),
            ParticipantSpec(node="b", parent="a", ops=[write_op("y", 1)])],
            long_locks=True)
        handle = cluster.run_transaction(spec)
        assert not handle.done  # ack still buffered at b
        assert cluster.pending_deferred() == 1
        cluster.send_application_data("b", "a")
        assert handle.done and handle.committed

    def test_lock_hold_stretch_measured(self):
        """Table 1: long locks keep the coordinator's resources locked
        longer than the plain protocol."""
        def coordinator_hold(config, long_locks):
            cluster = Cluster(config, nodes=["a", "b"])
            spec = TransactionSpec(participants=[
                ParticipantSpec(node="a", ops=[write_op("x", 1)]),
                ParticipantSpec(node="b", parent="a",
                                ops=[write_op("y", 1)])],
                long_locks=long_locks)
            release_time = {}
            locks = cluster.node("a").default_rm.locks
            original = locks.release_all

            def spy(txn_id):
                release_time[txn_id] = cluster.simulator.now
                original(txn_id)

            locks.release_all = spy
            cluster.run_transaction(spec)
            # Next transaction's first message arrives 5 time units later.
            cluster.simulator.run_until(cluster.simulator.now + 5)
            cluster.send_application_data("b", "a")
            return release_time[spec.txn_id]

        plain = coordinator_hold(PRESUMED_ABORT, long_locks=False)
        stretched = coordinator_hold(self.config(), long_locks=True)
        assert stretched > plain

    def test_paired_last_agent_three_steps_per_pair(self):
        config = self.config().with_options(last_agent=True)
        cluster = Cluster(config, nodes=["a", "b"])
        specs = chained_transaction_specs(4, "a", "b",
                                          last_agent_pairs=True)
        for spec in specs:
            cluster.run_transaction(spec)
        cluster.send_application_data("a", "b")
        cluster.send_application_data("b", "a")
        cluster.finalize_implied_acks()
        total = sum(cluster.metrics.commit_flows(txn=s.txn_id)
                    for s in specs)
        assert total == 6  # 3 flows per pair of transactions

    def test_dangling_ack_is_the_documented_hazard(self):
        """Table 1: 'no messages flow for the next transaction' is an
        application design problem — the deferred ack simply waits."""
        cluster = Cluster(self.config(), nodes=["a", "b"])
        spec = TransactionSpec(participants=[
            ParticipantSpec(node="a", ops=[write_op("x", 1)]),
            ParticipantSpec(node="b", parent="a", ops=[write_op("y", 1)])],
            long_locks=True)
        handle = cluster.run_transaction(spec)
        assert cluster.pending_deferred() == 1
        assert not handle.done
        # flush_deferred models the application finally sending data.
        assert cluster.node("b").flush_deferred("a") == 1
        cluster.run()
        assert handle.done


class TestSharedLog:
    def build(self, shared: bool):
        config = PRESUMED_ABORT.with_options(shared_log=shared)
        cluster = Cluster(config, nodes=["host"])
        cluster.node("host").add_detached_rm("db", own_log=not shared)
        spec = flat_tree("host", [])
        spec.participant("host").rm_ops["db"] = [write_op("k", 1)]
        return cluster, spec

    def test_shared_log_saves_two_forces(self):
        shared_cluster, shared_spec = self.build(shared=True)
        shared_cluster.run_transaction(shared_spec)
        own_cluster, own_spec = self.build(shared=False)
        own_cluster.run_transaction(own_spec)
        shared_forced = shared_cluster.metrics.forced_log_writes(
            node="host/db", txn=shared_spec.txn_id)
        own_forced = own_cluster.metrics.forced_log_writes(
            node="host/db", txn=own_spec.txn_id)
        assert own_forced - shared_forced == 2

    def test_lrm_records_ride_tm_force(self):
        """The TM's commit force makes the LRM's earlier non-forced
        prepared record durable."""
        cluster, spec = self.build(shared=True)
        cluster.run_transaction(spec)
        stable = cluster.node("host").log.stable
        assert stable.has_record(spec.txn_id,
                                 __import__("repro.log.records",
                                            fromlist=["LogRecordType"]
                                            ).LogRecordType.LRM_PREPARED)

    def test_crash_before_commit_force_loses_both_consistently(self):
        """§4: if the system fails before the commit is forced, the
        prepared record may be lost — and the transaction aborts, so
        nothing is inconsistent."""
        cluster, spec = self.build(shared=True)
        node = cluster.node("host")
        # Crash as soon as the LRM votes (before the TM's commit force
        # completes).
        original_write = node.log.write
        crashed = []

        def crash_after_committed(*args, **kwargs):
            record = original_write(*args, **kwargs)
            if record.record_type.value == "committed" and not crashed:
                crashed.append(True)
                cluster.simulator.call_soon(node.crash)
            return record

        node.log.write = crash_after_committed
        handle = cluster.start_transaction(spec)
        cluster.run_until(50.0)
        assert crashed
        # The commit force never completed: neither the LRM prepared
        # nor the TM committed record survived.
        stable = node.log.stable
        assert len(stable.records_for(spec.txn_id)) == 0
        node.log.write = original_write
        cluster.restart("host")
        cluster.run_until(100.0)
        # Recovery finds nothing: the transaction is a loser; no data.
        assert cluster.value("host", "k", rm_name="db") is None
        del handle

    def test_multiple_lrms_share_one_log(self):
        config = PRESUMED_ABORT.with_options(shared_log=True)
        cluster = Cluster(config, nodes=["host"])
        for i in range(3):
            cluster.node("host").add_detached_rm(f"db{i}")
        spec = flat_tree("host", [])
        for i in range(3):
            spec.participant("host").rm_ops[f"db{i}"] = [write_op("k", i)]
        handle = cluster.run_transaction(spec)
        assert handle.committed
        # 2 forced saves per sharing LRM: zero forced among all LRMs.
        for i in range(3):
            assert cluster.metrics.forced_log_writes(
                node=f"host/db{i}", txn=spec.txn_id) == 0
