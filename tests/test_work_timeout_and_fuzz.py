"""The application work timeout and the fuzzing harness."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.fuzz import FuzzReport, fuzz

from tests.conftest import assert_atomic, updating_spec


class TestWorkTimeout:
    def config(self):
        return PRESUMED_ABORT.with_options(work_timeout=20.0)

    def test_lost_enrollment_abandons_transaction(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        cluster.partition("c", "s")          # enrollment never arrives
        spec = updating_spec("c", ["s"])
        handle = cluster.start_transaction(spec)
        cluster.run_until(100.0)
        assert handle.aborted
        assert cluster.value("c", "key-c") is None

    def test_lost_work_done_abandons_and_tells_children(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        # Enrollment gets through; the work-done report is lost.
        cluster.partition_at("c", "s", 1.5)
        cluster.heal_at("c", "s", 10.0)
        spec = updating_spec("c", ["s"])
        handle = cluster.start_transaction(spec)
        cluster.run_until(200.0)
        assert handle.aborted
        # The child heard about the abandonment and rolled back.
        assert cluster.value("s", "key-s") is None
        cluster.node("s").default_rm.locks.assert_released(spec.txn_id)
        assert_atomic(cluster, spec)

    def test_no_effect_on_healthy_runs(self):
        cluster = Cluster(self.config(), nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        handle = cluster.run_transaction(spec)
        assert handle.committed

    def test_no_effect_once_commit_started(self):
        """A slow *commit* is the 2PC timers' business, not the work
        timeout's."""
        config = self.config().with_options(ack_timeout=50.0,
                                            retry_interval=50.0)
        cluster = Cluster(config, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        cluster.partition_at("c", "s", 4.5)   # commit in flight lost
        cluster.heal_at("c", "s", 120.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(30.0)               # past the work timeout
        assert not handle.done                # still committing, not aborted
        cluster.run_until(500.0)
        assert handle.committed


class TestFuzz:
    def test_fuzz_clean_and_deterministic(self):
        first = fuzz(runs=10, seed=42)
        second = fuzz(runs=10, seed=42)
        assert first.clean
        assert first.runs == 10
        assert first.unresolved == 0
        assert (first.committed, first.aborted) == \
            (second.committed, second.aborted)

    def test_fuzz_injects_faults(self):
        report = fuzz(runs=20, seed=7, fault_rate=1.0)
        assert report.crashes_injected + report.partitions_injected > 0
        assert report.clean

    def test_fuzz_validates_args(self):
        with pytest.raises(ValueError):
            fuzz(runs=0)

    def test_report_describe(self):
        report = FuzzReport(runs=3, committed=2, aborted=1)
        assert "3 randomized runs" in report.describe()
        assert "no protocol violations" in report.describe()
        from repro.verify import Violation
        report.violations.append(Violation("R1", "t", "bad"))
        assert "VIOLATIONS" in report.describe()
        assert not report.clean


class TestCliIntegration:
    def test_fuzz_command(self, capsys):
        from repro.cli import main
        code = main(["fuzz", "--runs", "5", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "no protocol violations" in out

    def test_report_command(self, capsys):
        from repro.cli import main
        code = main(["report"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 2" in out and "Figure 8" in out
        assert "MISMATCH" not in out
