"""Unit tests for messages, latency models and the network."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.net.latency import (
    ConstantLatency,
    PerLinkLatency,
    SatelliteLink,
    UniformLatency,
)
from repro.net.message import Message, MessageType, Phase
from repro.net.network import Network, NetworkError
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStream


def make_net(latency=None):
    simulator = Simulator(seed=1)
    metrics = MetricsCollector()
    network = Network(simulator, metrics, latency)
    return simulator, metrics, network


def msg(src, dst, msg_type=MessageType.PREPARE, txn="t1", **kwargs):
    return Message(msg_type=msg_type, txn_id=txn, src=src, dst=dst, **kwargs)


class TestMessage:
    def test_phase_defaults_from_type(self):
        assert msg("a", "b", MessageType.PREPARE).phase is Phase.COMMIT
        assert msg("a", "b", MessageType.DATA).phase is Phase.DATA
        assert msg("a", "b", MessageType.INQUIRE).phase is Phase.RECOVERY

    def test_explicit_phase_wins(self):
        message = msg("a", "b", MessageType.COMMIT, phase=Phase.RECOVERY)
        assert message.phase is Phase.RECOVERY

    def test_describe_includes_flags(self):
        message = msg("a", "b", flags={"reliable": True, "off": False})
        assert "reliable" in message.describe()
        assert "off" not in message.describe()

    def test_msg_ids_unique(self):
        assert msg("a", "b").msg_id != msg("a", "b").msg_id


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(2.5)
        assert model.latency("a", "b", RandomStream(0)) == 2.5

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_in_range(self):
        model = UniformLatency(1.0, 2.0)
        rng = RandomStream(0)
        for __ in range(50):
            assert 1.0 <= model.latency("a", "b", rng) <= 2.0

    def test_per_link_symmetric_default(self):
        model = PerLinkLatency(default=1.0).set_link("a", "b", 9.0)
        rng = RandomStream(0)
        assert model.latency("a", "b", rng) == 9.0
        assert model.latency("b", "a", rng) == 9.0
        assert model.latency("a", "c", rng) == 1.0

    def test_per_link_asymmetric(self):
        model = PerLinkLatency().set_link("a", "b", 9.0, symmetric=False)
        rng = RandomStream(0)
        assert model.latency("a", "b", rng) == 9.0
        assert model.latency("b", "a", rng) == model.default

    def test_satellite_link(self):
        model = SatelliteLink("far", slow_delay=50.0, fast_delay=1.0)
        rng = RandomStream(0)
        assert model.latency("a", "far", rng) == 50.0
        assert model.latency("far", "a", rng) == 50.0
        assert model.latency("a", "b", rng) == 1.0


class TestNetwork:
    def test_delivery_after_latency(self):
        simulator, __, network = make_net(ConstantLatency(3.0))
        seen = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: seen.append(simulator.now))
        network.send(msg("a", "b"))
        simulator.run()
        assert seen == [3.0]

    def test_unknown_node_rejected(self):
        __, __, network = make_net()
        network.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            network.send(msg("a", "ghost"))

    def test_duplicate_registration_rejected(self):
        __, __, network = make_net()
        network.register("a", lambda m: None)
        with pytest.raises(NetworkError):
            network.register("a", lambda m: None)

    def test_partition_drops_and_counts(self):
        simulator, metrics, network = make_net()
        seen = []
        network.register("a", lambda m: None)
        network.register("b", seen.append)
        network.partition("a", "b")
        assert network.send(msg("a", "b")) is False
        simulator.run()
        assert seen == []
        # The flow is still counted (sender paid for it) ...
        assert metrics.commit_flows() == 1
        # ... and the drop recorded.
        assert metrics.drops.total(reason="partition") == 1

    def test_partition_formed_in_flight_loses_message(self):
        simulator, metrics, network = make_net(ConstantLatency(5.0))
        seen = []
        network.register("a", lambda m: None)
        network.register("b", seen.append)
        network.send(msg("a", "b"))
        simulator.at(1.0, lambda: network.partition("a", "b"))
        simulator.run()
        assert seen == []

    def test_heal_restores_link(self):
        simulator, __, network = make_net()
        seen = []
        network.register("a", lambda m: None)
        network.register("b", seen.append)
        network.partition("a", "b")
        network.heal("a", "b")
        network.send(msg("a", "b"))
        simulator.run()
        assert len(seen) == 1

    def test_crashed_destination_drops(self):
        simulator, metrics, network = make_net()
        alive = {"up": True}
        network.register("a", lambda m: None)
        network.register("b", lambda m: None, alive=lambda: alive["up"])
        alive["up"] = False
        network.send(msg("a", "b"))
        simulator.run()
        assert metrics.drops.total(reason="crashed") == 1

    def test_drop_filter_suppresses_without_counting_flow(self):
        simulator, metrics, network = make_net()
        network.register("a", lambda m: None)
        network.register("b", lambda m: None)
        network.set_drop_filter(
            lambda m: m.msg_type is MessageType.COMMIT)
        assert network.send(msg("a", "b", MessageType.COMMIT)) is False
        assert network.send(msg("a", "b", MessageType.PREPARE)) is True
        simulator.run()
        assert metrics.commit_flows() == 1
        assert metrics.drops.total(reason="injected") == 1

    def test_send_hook_invoked(self):
        simulator, __, network = make_net()
        hooked = []
        network.on_send.append(hooked.append)
        network.register("a", lambda m: None)
        network.register("b", lambda m: None)
        network.send(msg("a", "b"))
        assert len(hooked) == 1

    def test_heal_all(self):
        __, __, network = make_net()
        network.register("a", lambda m: None)
        network.register("b", lambda m: None)
        network.partition("a", "b")
        network.heal_all()
        assert not network.is_partitioned("a", "b")

    def test_fifo_sessions_never_reorder(self):
        """LU 6.2 conversations are FIFO: jittered latency must not let
        a later message overtake an earlier one on the same link."""
        simulator, __, network = make_net(UniformLatency(0.1, 10.0))
        received = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: received.append(m.flags["n"]))
        for n in range(20):
            network.send(msg("a", "b", flags={"n": n}))
        simulator.run()
        assert received == list(range(20))

    def test_fifo_disabled_can_reorder(self):
        simulator, metrics, __ = (None, None, None)
        from repro.sim.kernel import Simulator as Sim
        from repro.metrics.collector import MetricsCollector as MC
        sim = Sim(seed=1)
        mc = MC()
        network = Network(sim, mc, UniformLatency(0.1, 10.0), fifo=False)
        received = []
        network.register("a", lambda m: None)
        network.register("b", lambda m: received.append(m.flags["n"]))
        for n in range(20):
            network.send(msg("a", "b", flags={"n": n}))
        sim.run()
        assert sorted(received) == list(range(20))
        assert received != list(range(20))  # jitter reordered something

    def test_fifo_independent_per_direction_and_link(self):
        simulator, __, network = make_net(UniformLatency(0.1, 10.0))
        received = {"b": [], "c": []}
        network.register("a", lambda m: None)
        network.register("b", lambda m: received["b"].append(m.flags["n"]))
        network.register("c", lambda m: received["c"].append(m.flags["n"]))
        for n in range(10):
            network.send(msg("a", "b", flags={"n": n}))
            network.send(msg("a", "c", flags={"n": n}))
        simulator.run()
        assert received["b"] == list(range(10))
        assert received["c"] == list(range(10))
