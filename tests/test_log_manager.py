"""Unit tests for the log manager: forced/non-forced semantics, crash
behaviour and the shared-log guarantee."""

import pytest

from repro.log.group_commit import GroupCommitPolicy
from repro.log.manager import LogManager
from repro.log.records import LogRecordType
from repro.metrics.collector import MetricsCollector
from repro.sim.kernel import Simulator


@pytest.fixture
def log(simulator, metrics):
    return LogManager(simulator, metrics, "node", io_latency=0.5)


def test_non_forced_write_stays_in_buffer(log, simulator):
    log.write("t", LogRecordType.END)
    simulator.run()
    assert log.buffered_count == 1
    assert len(log.stable) == 0


def test_forced_write_reaches_stable_after_io(log, simulator):
    durable = []
    log.write("t", LogRecordType.COMMITTED, force=True,
              on_durable=lambda: durable.append(simulator.now))
    assert len(log.stable) == 0  # not yet — I/O takes time
    simulator.run()
    assert durable == [0.5]
    assert log.stable.has_record("t", LogRecordType.COMMITTED)


def test_force_carries_earlier_non_forced_records(log, simulator):
    """The property behind the shared-log optimization: a later force
    flushes everything written before it."""
    log.write("t", LogRecordType.LRM_PREPARED)
    log.write("t", LogRecordType.COMMITTED, force=True)
    simulator.run()
    assert log.stable.has_record("t", LogRecordType.LRM_PREPARED)
    assert log.stable.has_record("t", LogRecordType.COMMITTED)


def test_on_durable_requires_force(log):
    with pytest.raises(ValueError):
        log.write("t", LogRecordType.END, on_durable=lambda: None)


def test_crash_loses_buffer_and_inflight_io(log, simulator):
    log.write("t", LogRecordType.LRM_UPDATE)
    log.write("t", LogRecordType.PREPARED, force=True)
    # Crash before the I/O completes.
    lost = log.crash()
    simulator.run()
    assert lost == 2
    assert len(log.stable) == 0


def test_crash_preserves_stable_records(log, simulator):
    log.write("t", LogRecordType.PREPARED, force=True)
    simulator.run()
    log.write("t", LogRecordType.COMMITTED)
    log.crash()
    records = log.recover()
    assert [r.record_type for r in records] == [LogRecordType.PREPARED]


def test_lsn_monotonic_across_recovery(log, simulator):
    log.write("t", LogRecordType.PREPARED, force=True)
    simulator.run()
    log.crash()
    log.recover()
    record = log.write("t", LogRecordType.COMMITTED, force=True)
    simulator.run()
    lsns = [r.lsn for r in log.stable.records()]
    assert lsns == sorted(lsns)
    assert len(set(lsns)) == len(lsns)
    assert record.lsn > 0


def test_explicit_force_flushes_buffer(log, simulator):
    log.write("t", LogRecordType.END)
    called = []
    log.force(on_durable=lambda: called.append(True))
    simulator.run()
    assert called == [True]
    assert log.buffered_count == 0
    assert len(log.stable) == 1


def test_force_on_empty_log_still_calls_back(log, simulator):
    called = []
    log.force(on_durable=lambda: called.append(True))
    simulator.run()
    assert called == [True]


def test_metrics_record_forced_flag(simulator, metrics):
    log = LogManager(simulator, metrics, "n")
    log.write("t", LogRecordType.PREPARED, force=True)
    log.write("t", LogRecordType.END)
    simulator.run()
    assert metrics.forced_log_writes(node="n") == 1
    assert metrics.total_log_writes(node="n") == 2


def test_owner_attribution(simulator, metrics):
    log = LogManager(simulator, metrics, "n")
    log.write("t", LogRecordType.LRM_PREPARED, owner="n/rm1")
    assert metrics.total_log_writes(node="n/rm1") == 1
    assert metrics.total_log_writes(node="n") == 0


def test_records_for_includes_buffered(log, simulator):
    log.write("t1", LogRecordType.PREPARED, force=True)
    log.write("t1", LogRecordType.END)
    log.write("t2", LogRecordType.PREPARED, force=True)
    simulator.run()
    assert len(log.records_for("t1")) == 2
    assert len(log.records_for("t2")) == 1


def test_io_counted_per_force(simulator, metrics):
    log = LogManager(simulator, metrics, "n", io_latency=0.1)
    for i in range(3):
        log.write(f"t{i}", LogRecordType.COMMITTED, force=True)
        simulator.run()
    assert metrics.physical_ios("n") == 3


def test_write_hook_invoked(log):
    seen = []
    log.on_write.append(seen.append)
    log.write("t", LogRecordType.END)
    assert len(seen) == 1


class TestGroupCommit:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            GroupCommitPolicy(group_size=0)
        with pytest.raises(ValueError):
            GroupCommitPolicy(timeout=-1.0)

    def test_batches_forces_into_one_io(self, simulator, metrics):
        log = LogManager(simulator, metrics, "n", io_latency=0.1,
                         group_commit=GroupCommitPolicy(group_size=3,
                                                        timeout=100.0))
        done = []
        for i in range(3):
            log.write(f"t{i}", LogRecordType.COMMITTED, force=True,
                      on_durable=lambda i=i: done.append(i))
        simulator.run_until(1.0)
        assert sorted(done) == [0, 1, 2]
        assert metrics.physical_ios("n") == 1

    def test_timeout_flushes_partial_group(self, simulator, metrics):
        log = LogManager(simulator, metrics, "n", io_latency=0.1,
                         group_commit=GroupCommitPolicy(group_size=10,
                                                        timeout=2.0))
        done = []
        log.write("t", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: done.append(simulator.now))
        simulator.run()
        assert done and done[0] == pytest.approx(2.1)
        assert metrics.physical_ios("n") == 1

    def test_requests_during_io_form_next_batch(self, simulator, metrics):
        log = LogManager(simulator, metrics, "n", io_latency=1.0,
                         group_commit=GroupCommitPolicy(group_size=2,
                                                        timeout=50.0))
        done = []
        log.write("a", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: done.append("a"))
        log.write("b", LogRecordType.COMMITTED, force=True,
                  on_durable=lambda: done.append("b"))
        # Arrives while the first batch's I/O is in flight.
        simulator.at(0.5, lambda: log.write(
            "c", LogRecordType.COMMITTED, force=True,
            on_durable=lambda: done.append("c")))
        simulator.at(0.6, lambda: log.write(
            "d", LogRecordType.COMMITTED, force=True,
            on_durable=lambda: done.append("d")))
        simulator.run()
        assert done == ["a", "b", "c", "d"]
        assert metrics.physical_ios("n") == 2

    def test_io_savings_scale_with_group_size(self, simulator, metrics):
        log = LogManager(simulator, metrics, "n", io_latency=0.01,
                         group_commit=GroupCommitPolicy(group_size=5,
                                                        timeout=10.0))
        for i in range(20):
            simulator.at(i * 0.001, lambda i=i: log.write(
                f"t{i}", LogRecordType.COMMITTED, force=True))
        simulator.run()
        assert log.force_requests == 20
        # 20 forces in groups of ~5: far fewer I/Os than forces.
        assert metrics.physical_ios("n") <= 6


def test_rejected_write_leaves_no_side_effects(log, metrics):
    """Regression: the on_durable-without-force validation must fire
    before any side effect — no record appended, no LSN consumed, no
    hook invoked, no metrics attributed."""
    seen = []
    log.on_write.append(seen.append)
    with pytest.raises(ValueError):
        log.write("t", LogRecordType.END, on_durable=lambda: None)
    assert log.buffered_count == 0
    assert seen == []
    assert metrics.total_log_writes() == 0
    # The next valid write gets the first LSN: none was consumed.
    record = log.write("t", LogRecordType.END)
    assert record.lsn == 1
