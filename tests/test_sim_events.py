"""Unit tests for the event queue."""

import pytest

from repro.sim.events import (
    Event,
    EventQueue,
    HeapEventQueue,
    WheelEventQueue,
)


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.action()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_push_order():
    queue = EventQueue()
    order = []
    for i in range(10):
        queue.push(5.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().action()
    assert order == list(range(10))


def test_priority_breaks_time_ties():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("late"), priority=5)
    queue.push(1.0, lambda: order.append("early"), priority=-5)
    while queue:
        queue.pop().action()
    assert order == ["early", "late"]


def test_cancel_removes_event():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(1.0, lambda: fired.append("drop"))
    assert queue.cancel(drop) is True
    assert len(queue) == 1
    while queue:
        queue.pop().action()
    assert fired == ["keep"]
    del keep


def test_cancel_twice_returns_false():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert queue.cancel(event) is True
    assert queue.cancel(event) is False


def test_cancel_after_fire_returns_false_and_keeps_live_count():
    """Regression: cancelling an already-popped event used to decrement
    the live count anyway and leak its seq into the cancelled set,
    silently corrupting later pops."""
    queue = EventQueue()
    fired = queue.push(1.0, lambda: None)
    pending = queue.push(2.0, lambda: None)
    assert queue.pop() is fired
    assert queue.cancel(fired) is False
    assert len(queue) == 1          # the pending event is still live
    assert queue.peek_time() == pytest.approx(2.0)
    assert queue.pop() is pending
    assert len(queue) == 0
    assert not queue


def test_event_state_properties():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert not event.fired and not event.cancelled
    queue.cancel(event)
    assert event.cancelled and not event.fired
    other = queue.push(2.0, lambda: None)
    assert queue.pop() is other
    assert other.fired and not other.cancelled


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == pytest.approx(2.0)


def test_len_counts_live_events_only():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    queue.cancel(events[0])
    queue.cancel(events[3])
    assert len(queue) == 3


def test_empty_queue_pop_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert not queue


def test_drain_yields_in_order():
    queue = EventQueue()
    for t in (3.0, 1.0, 2.0):
        queue.push(t, lambda: None, name=str(t))
    names = [e.name for e in queue.drain()]
    assert names == ["1.0", "2.0", "3.0"]


# ----------------------------------------------------------------------
# Compaction, ownership and wheel-structure regressions
# ----------------------------------------------------------------------
def _noop():
    return None


def _retained(queue):
    """Entries a queue is still physically holding (live or dead)."""
    if isinstance(queue, HeapEventQueue):
        return len(queue._heap)
    run_tail = len(queue._run) - queue._ri
    near = len(queue._nearheap) + (0 if queue._near1 is None else 1)
    buckets = sum(len(bucket) for bucket in queue._buckets)
    overflow = sum(len(bucket) for bucket in queue._overflow.values())
    return run_tail + near + buckets + overflow


@pytest.mark.parametrize("queue_class", [WheelEventQueue, HeapEventQueue])
def test_cancel_storm_memory_bounded(queue_class):
    """A cancel storm must not leak: compaction keeps the retained
    entry count O(live), however many events were ever cancelled."""
    queue = queue_class()
    live = []
    for index in range(20_000):
        event = queue.push(float(index % 4096), _noop)
        if index % 10 == 0:
            live.append(event)
        else:
            queue.cancel(event)
    assert len(queue) == len(live)
    # dead entries may linger only up to the compaction trigger
    # (dead <= max(live, threshold)), never proportional to pushes.
    assert _retained(queue) <= 2 * len(live) + 65
    drained = list(queue.drain())
    assert sorted(e.seq for e in drained) == \
        sorted(e.seq for e in live)


@pytest.mark.parametrize("queue_class", [WheelEventQueue, HeapEventQueue])
def test_cancel_foreign_event_rejected(queue_class):
    """cancel() must refuse an event it does not own instead of
    silently corrupting its own live accounting."""
    owner, other = queue_class(), queue_class()
    event = owner.push(1.0, _noop)
    with pytest.raises(ValueError):
        other.cancel(event)
    # the event is untouched: still pending, still poppable by owner
    assert not event.cancelled
    assert owner.pop() is event
    assert len(other) == 0


def test_event_has_no_sort_key():
    """The dead sort_key helper was removed with the heap's tuple
    ordering; entry ordering is the queues' concern now."""
    assert not hasattr(Event, "sort_key")


def test_wheel_overflow_years_and_inf():
    """Far-future days (beyond one wheel revolution) park in year
    buckets; +inf parks in the terminal year; order stays exact."""
    queue = WheelEventQueue()
    times = [float("inf"), 5.0e9, 1.0, 300_000.0, 2.0e6, 5.0e9 - 1.0]
    for t in times:
        queue.push(t, _noop)
    assert queue._overflow          # far events really went to years
    assert [e.time for e in queue.drain()] == sorted(times)


def test_wheel_skips_empty_years():
    """Promotion jumps over empty years instead of scanning them."""
    queue = WheelEventQueue()
    queue.push(1.0e12, _noop, name="far")
    queue.push(0.5, _noop, name="soon")
    assert [e.name for e in queue.drain()] == ["soon", "far"]


def test_wheel_near_events_merge_with_promoted_run():
    """Events pushed below the promoted horizon (the near set) must
    interleave exactly with the current run."""
    queue = WheelEventQueue()
    for t in (2000.0, 2100.0, 2200.0):
        queue.push(t, _noop, name=f"run-{t}")
    first = queue.pop()
    assert first.name == "run-2000.0"
    # now the day holding 2048..3071 is promoted; push below horizon
    queue.push(2050.0, _noop, name="near-2050")
    queue.push(2150.0, _noop, name="near-2150")
    queue.push(2050.0, _noop, name="near-2050b")
    order = [e.name for e in queue.drain()]
    assert order == ["near-2050", "near-2050b", "run-2100.0",
                     "near-2150", "run-2200.0"]


def test_wheel_overflow_event_fires_before_later_wheel_event():
    """Regression: an event parked in overflow whose day comes to
    overlap the wheel window as the cursor advances must fire before a
    later event pushed straight into a wheel bucket.  (push A at
    t=307200 -> overflow year 1; drain to ~day 100; push B at t=358400
    -> wheel bucket.  The buggy scan promoted B past A.)"""
    queue = WheelEventQueue()
    queue.push(307_200.0, _noop, name="A")      # day 300: overflow
    queue.push(102_500.0, _noop, name="warm")   # day 100: wheel
    assert queue.pop().name == "warm"           # cursor now at day 100
    queue.push(358_400.0, _noop, name="B")      # day 350: wheel bucket
    assert [e.name for e in queue.drain()] == ["A", "B"]


def test_wheel_matches_heap_across_revolutions():
    """Differential regression: interleaved push/cancel/pop with times
    spanning several wheel revolutions (262144 time units each) must
    order identically on the wheel and the heap.  Protocol workloads
    never cross a revolution, so only this exercises the
    overflow-into-wheel merge."""
    import random
    rng = random.Random(0xC0FFEE)
    wheel, heap = WheelEventQueue(), HeapEventQueue()
    pairs = []
    now = 0.0
    for __ in range(4000):
        r = rng.random()
        if r < 0.5:
            t = now + rng.uniform(0.0, 800_000.0)
            pairs.append((wheel.push(t, _noop), heap.push(t, _noop)))
        elif r < 0.65 and pairs:
            ew, eh = pairs[rng.randrange(len(pairs))]
            cw = ew.fired or ew.cancelled or wheel.cancel(ew)
            ch = eh.fired or eh.cancelled or heap.cancel(eh)
            assert cw == ch
        else:
            pw, ph = wheel.pop(), heap.pop()
            if pw is None:
                assert ph is None
            else:
                assert (pw.time, pw.priority, pw.seq) == \
                    (ph.time, ph.priority, ph.seq)
                now = pw.time
    tail_w = [(e.time, e.seq) for e in wheel.drain()]
    tail_h = [(e.time, e.seq) for e in heap.drain()]
    assert tail_w == tail_h


def test_wheel_cancelled_near_event_never_fires():
    queue = WheelEventQueue()
    keep = queue.push(10.0, _noop, name="keep")
    doomed = queue.push(5.0, _noop, name="doomed")
    assert queue.cancel(doomed)
    assert queue.peek_time() == 10.0
    assert queue.pop() is keep
    assert queue.pop() is None
