"""Unit tests for the event queue."""

import pytest

from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(3.0, lambda: fired.append("c"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(2.0, lambda: fired.append("b"))
    while True:
        event = queue.pop()
        if event is None:
            break
        event.action()
    assert fired == ["a", "b", "c"]


def test_same_time_fires_in_push_order():
    queue = EventQueue()
    order = []
    for i in range(10):
        queue.push(5.0, lambda i=i: order.append(i))
    while queue:
        queue.pop().action()
    assert order == list(range(10))


def test_priority_breaks_time_ties():
    queue = EventQueue()
    order = []
    queue.push(1.0, lambda: order.append("late"), priority=5)
    queue.push(1.0, lambda: order.append("early"), priority=-5)
    while queue:
        queue.pop().action()
    assert order == ["early", "late"]


def test_cancel_removes_event():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(1.0, lambda: fired.append("drop"))
    assert queue.cancel(drop) is True
    assert len(queue) == 1
    while queue:
        queue.pop().action()
    assert fired == ["keep"]
    del keep


def test_cancel_twice_returns_false():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert queue.cancel(event) is True
    assert queue.cancel(event) is False


def test_cancel_after_fire_returns_false_and_keeps_live_count():
    """Regression: cancelling an already-popped event used to decrement
    the live count anyway and leak its seq into the cancelled set,
    silently corrupting later pops."""
    queue = EventQueue()
    fired = queue.push(1.0, lambda: None)
    pending = queue.push(2.0, lambda: None)
    assert queue.pop() is fired
    assert queue.cancel(fired) is False
    assert len(queue) == 1          # the pending event is still live
    assert queue.peek_time() == pytest.approx(2.0)
    assert queue.pop() is pending
    assert len(queue) == 0
    assert not queue


def test_event_state_properties():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert not event.fired and not event.cancelled
    queue.cancel(event)
    assert event.cancelled and not event.fired
    other = queue.push(2.0, lambda: None)
    assert queue.pop() is other
    assert other.fired and not other.cancelled


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == pytest.approx(2.0)


def test_len_counts_live_events_only():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(5)]
    queue.cancel(events[0])
    queue.cancel(events[3])
    assert len(queue) == 3


def test_empty_queue_pop_returns_none():
    queue = EventQueue()
    assert queue.pop() is None
    assert queue.peek_time() is None
    assert not queue


def test_drain_yields_in_order():
    queue = EventQueue()
    for t in (3.0, 1.0, 2.0):
        queue.push(t, lambda: None, name=str(t))
    names = [e.name for e in queue.drain()]
    assert names == ["1.0", "2.0", "3.0"]
