"""Tests for the statistics helpers."""

import pytest

from repro.analysis.stats import bootstrap_ci, mean, normal_ci, stddev
from repro.sim.randomness import RandomStream


def test_mean_and_stddev():
    assert mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    assert stddev([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) == \
        pytest.approx(2.138, abs=1e-3)


def test_empty_rejected():
    with pytest.raises(ValueError):
        mean([])
    with pytest.raises(ValueError):
        normal_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([], RandomStream(0))


def test_stddev_degenerate_cases():
    assert stddev([]) == 0.0
    assert stddev([5.0]) == 0.0
    assert stddev([3.0, 3.0, 3.0]) == 0.0


def test_normal_ci_contains_mean_and_shrinks_with_n():
    small = normal_ci([1.0, 2.0, 3.0, 4.0] * 2)
    large = normal_ci([1.0, 2.0, 3.0, 4.0] * 50)
    for summary in (small, large):
        assert summary.low <= summary.mean <= summary.high
    assert (large.high - large.low) < (small.high - small.low)


def test_normal_ci_zero_spread():
    summary = normal_ci([7.0] * 10)
    assert summary.low == summary.high == summary.mean == 7.0


def test_bootstrap_ci_reasonable_and_deterministic():
    values = [1.0, 2.0, 3.0, 4.0, 5.0] * 6
    first = bootstrap_ci(values, RandomStream(9), resamples=300)
    second = bootstrap_ci(values, RandomStream(9), resamples=300)
    assert first == second
    assert first.low <= first.mean <= first.high
    assert 2.0 <= first.low and first.high <= 4.0


def test_bootstrap_confidence_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], RandomStream(0), confidence=1.5)


def test_summary_str():
    summary = normal_ci([1.0, 2.0, 3.0])
    assert "[" in str(summary) and "]" in str(summary)
