"""Differential tests: the timing-wheel scheduler vs the binary heap.

The wheel (:class:`repro.sim.events.WheelEventQueue`) exists purely as
an optimization; it must be *observationally identical* to the heap
reference (:class:`repro.sim.events.HeapEventQueue`).  These tests run
whole protocol workloads — not queue microtests — under each scheduler
and demand bit-identical results: same transaction outcomes, same
checker verdicts, same per-transaction cost triples, same trace event
order, same metrics fingerprint.

Any divergence here means the wheel reordered two events that the
``(time, priority, seq)`` contract says are ordered — exactly the class
of bug a faster scheduler is most likely to introduce.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import flat_tree
from repro.lrm.operations import write_op
from repro.obs import CostLedger
from repro.parallel.pool import RunSpec, run_specs
from repro.sim.events import HeapEventQueue, WheelEventQueue
from repro.sim.kernel import Simulator
from repro.sim.randomness import RandomStream
from repro.trace.recorder import Tracer
from repro.verify.checker import ProtocolChecker
from repro.workload.generator import WorkloadGenerator, WorkloadParams

PROTOCOLS = {
    "basic": BASIC_2PC,
    "presumed_abort": PRESUMED_ABORT,
    "presumed_nothing": PRESUMED_NOTHING,
    "presumed_commit": PRESUMED_COMMIT,
}


@pytest.fixture
def default_queue():
    """Restore ``Simulator.default_queue_class`` after each test."""
    saved = Simulator.default_queue_class
    yield
    Simulator.default_queue_class = saved


def _workload_fingerprint(config, queue_class, seed=11, txns=10):
    """One full observed run: outcomes, verdicts, costs, trace, metrics."""
    Simulator.default_queue_class = queue_class
    nodes = ["n0", "n1", "n2"]
    cluster = Cluster(config, nodes=nodes, seed=seed)
    tracer = Tracer().attach(cluster)
    checker = ProtocolChecker().attach(cluster)
    ledger = CostLedger().attach(cluster)
    generator = WorkloadGenerator(
        nodes, WorkloadParams(read_only_fraction=0.3, key_space=4),
        RandomStream(seed))
    outcomes = []
    txn_ids = []
    for spec in generator.stream(txns):
        handle = cluster.run_transaction(spec)
        outcomes.append(handle.outcome)
        txn_ids.append(spec.txn_id)
    metrics = cluster.metrics
    # Txn ids draw from a process-global counter, so two runs in the
    # same process name their transactions differently; normalize to
    # ordinals before comparing.
    alias = {txn: f"t{index}" for index, txn in enumerate(txn_ids)}

    def norm(text):
        if text is None:
            return text
        for txn, short in alias.items():
            text = text.replace(txn, short)
        return text

    return {
        "queue": type(cluster.simulator._queue).__name__,
        "outcomes": outcomes,
        "verdicts": [norm(str(v)) for v in checker.violations],
        "costs": [ledger.cost_summary(txn) for txn in txn_ids],
        "trace": [(e.time, e.kind, e.node, e.dst, e.forced,
                   alias.get(e.txn_id, e.txn_id), norm(e.text))
                  for e in tracer.events],
        "metrics": (metrics.commit_flows(), metrics.total_log_writes(),
                    metrics.forced_log_writes(), metrics.physical_ios(),
                    metrics.mean_latency()),
    }


@pytest.mark.parametrize("protocol", sorted(PROTOCOLS))
def test_protocol_run_identical_on_heap_and_wheel(protocol, default_queue):
    config = PROTOCOLS[protocol]
    wheel = _workload_fingerprint(config, WheelEventQueue)
    heap = _workload_fingerprint(config, HeapEventQueue)
    assert wheel["queue"] == "WheelEventQueue"
    assert heap["queue"] == "HeapEventQueue"
    for key in ("outcomes", "verdicts", "costs", "trace", "metrics"):
        assert wheel[key] == heap[key], f"{protocol}: {key} diverged"


def _crash_fingerprint(queue_class):
    """Crash/recovery run: timers, retries and restart events exercise
    the wheel's far-future overflow and cancellation paths."""
    Simulator.default_queue_class = queue_class
    config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                         retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"], seed=3)
    tracer = Tracer().attach(cluster)
    checker = ProtocolChecker().attach(cluster)
    spec = flat_tree("c", ["s"], txn_id="diff-crash")
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    cluster.crash_at("s", 4.5)
    cluster.restart_at("s", 40.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    metrics = cluster.metrics
    return (handle.outcome,
            [str(v) for v in checker.violations],
            [(e.time, e.kind, e.node, e.dst, e.forced, e.txn_id, e.text)
             for e in tracer.events],
            metrics.commit_flows(), metrics.recovery_flows(),
            metrics.total_log_writes())


def test_crash_recovery_identical_on_heap_and_wheel(default_queue):
    assert _crash_fingerprint(WheelEventQueue) == \
        _crash_fingerprint(HeapEventQueue)


def _seeded_outcome_row(seed):
    cluster = Cluster(PRESUMED_ABORT, nodes=["a", "b"], seed=seed)
    generator = WorkloadGenerator(
        ["a", "b"], WorkloadParams(read_only_fraction=0.5, key_space=3),
        RandomStream(seed))
    outcomes = [cluster.run_transaction(spec).outcome
                for spec in generator.stream(4)]
    metrics = cluster.metrics
    return (outcomes, metrics.total_log_writes(), metrics.physical_ios(),
            metrics.mean_latency())


def test_serial_equals_parallel_on_wheel(default_queue):
    """run_specs merges by index, so workers=1 and workers=2 must agree
    bit-for-bit on the wheel scheduler (floats compared exactly)."""
    Simulator.default_queue_class = WheelEventQueue
    specs = [RunSpec(label=f"seed-{seed}", fn=_seeded_outcome_row,
                     kwargs={"seed": seed}) for seed in (1, 2, 3, 4)]
    assert run_specs(specs, workers=1) == run_specs(specs, workers=2)


def test_queue_microworkload_identical(default_queue):
    """Mixed push/cancel/pop at adversarial times (day boundaries,
    equal instants, far-future, +inf) pops identically on both."""
    wheel, heap = WheelEventQueue(), HeapEventQueue()
    times = [0.0, 1023.999, 1024.0, 1024.0, 0.5, 262144.0, 5.0e9,
             float("inf"), 2048.0, 1024.0001, 0.5, 900.25]
    handles = []
    for index, t in enumerate(times):
        priority = (index % 3) - 1
        handles.append((
            wheel.push(t, lambda: None, name=f"e{index}",
                       priority=priority),
            heap.push(t, lambda: None, name=f"e{index}",
                      priority=priority)))
    for index in (1, 4, 7, 10):
        assert wheel.cancel(handles[index][0]) == \
            heap.cancel(handles[index][1])
    wheel_order = [(e.time, e.priority, e.seq, e.name)
                   for e in wheel.drain()]
    heap_order = [(e.time, e.priority, e.seq, e.name)
                  for e in heap.drain()]
    assert wheel_order == heap_order
    assert len(wheel) == len(heap) == 0
