"""The streaming metrics registry and its Prometheus text exposition.

Two layers of tests:

* **semantics** — counter monotonicity, gauge movement, histogram
  buckets, label arity, family redeclaration, the attach/detach
  contract, and the counters a simulated workload must produce;
* **conformance** — a strict mini-parser for the Prometheus text
  format (HELP/TYPE pairing, label escaping, cumulative buckets,
  monotone counters across scrapes) run over real expositions.
"""

from __future__ import annotations

import re

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.obs import MetricsRegistry, escape_label_value

from tests.conftest import updating_spec

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


# ----------------------------------------------------------------------
# A strict mini-parser for the text exposition format
# ----------------------------------------------------------------------
def parse_labels(text: str) -> dict:
    """Parse ``k="v",...`` honoring backslash escapes; raise on junk."""
    labels = {}
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        name = text[i:eq]
        assert LABEL_RE.match(name), f"bad label name {name!r}"
        assert text[eq + 1] == '"', f"unquoted label value after {name}"
        i = eq + 2
        value = []
        while text[i] != '"':
            if text[i] == "\\":
                escape = text[i + 1]
                assert escape in ("\\", '"', "n"), \
                    f"bad escape \\{escape} in label value"
                value.append({"\\": "\\", '"': '"', "n": "\n"}[escape])
                i += 2
            else:
                value.append(text[i])
                i += 1
        labels[name] = "".join(value)
        i += 1
        if i < len(text):
            assert text[i] == ",", f"expected ',' at {text[i:]!r}"
            i += 1
    return labels


def parse_exposition(text: str) -> dict:
    """Strictly parse an exposition into {family: {...}}.

    Enforces: trailing newline; every family announced by a HELP line
    immediately followed by a TYPE line (exactly one each); samples
    only for announced families; histogram samples only via the
    ``_bucket``/``_sum``/``_count`` suffixes; parseable labels; float
    values.
    """
    assert text.endswith("\n"), "exposition must end with a newline"
    families: dict = {}
    pending_help = None
    for line in text.splitlines():
        assert line.strip() == line and line, f"stray whitespace: {line!r}"
        if line.startswith("# HELP "):
            name, _, help_text = line[len("# HELP "):].partition(" ")
            assert NAME_RE.match(name), f"bad metric name {name!r}"
            assert name not in families, f"duplicate HELP for {name}"
            assert pending_help is None, \
                f"HELP {name} while HELP {pending_help[0]} unpaired"
            pending_help = (name, help_text)
            continue
        if line.startswith("# TYPE "):
            name, _, kind = line[len("# TYPE "):].partition(" ")
            assert kind in ("counter", "gauge", "histogram"), kind
            assert pending_help is not None and pending_help[0] == name, \
                f"TYPE {name} not immediately after its HELP"
            families[name] = {"kind": kind, "help": pending_help[1],
                              "samples": {}}
            pending_help = None
            continue
        assert not line.startswith("#"), f"unknown comment {line!r}"
        match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                         r"(?:\{(.*)\})? (\S+)$", line)
        assert match, f"unparseable sample line {line!r}"
        sample_name, label_text, value_text = match.groups()
        value = float(value_text)      # raises on junk
        family_name = sample_name
        suffix = ""
        for candidate in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(candidate)]
            if sample_name.endswith(candidate) and base in families \
                    and families[base]["kind"] == "histogram":
                family_name, suffix = base, candidate
                break
        assert family_name in families, \
            f"sample {sample_name} before its HELP/TYPE"
        family = families[family_name]
        if family["kind"] == "histogram":
            assert suffix, f"bare sample {sample_name} for a histogram"
        else:
            assert not suffix, f"suffixed sample for {family['kind']}"
        labels = parse_labels(label_text) if label_text else {}
        key = (suffix, tuple(sorted(labels.items())))
        assert key not in family["samples"], \
            f"duplicate series {sample_name}{labels}"
        family["samples"][key] = value
    assert pending_help is None, f"HELP {pending_help[0]} without TYPE"
    return families


def check_histograms(families: dict) -> None:
    """Cumulative buckets, +Inf == _count, non-negative counts."""
    for name, family in families.items():
        if family["kind"] != "histogram":
            continue
        series: dict = {}
        for (suffix, labels), value in family["samples"].items():
            base = tuple(kv for kv in labels if kv[0] != "le")
            series.setdefault(base, {"buckets": [], "sum": None,
                                     "count": None})
            if suffix == "_bucket":
                le = dict(labels)["le"]
                bound = float("inf") if le == "+Inf" else float(le)
                series[base]["buckets"].append((bound, value))
            elif suffix == "_sum":
                series[base]["sum"] = value
            else:
                series[base]["count"] = value
        for base, data in series.items():
            buckets = sorted(data["buckets"])
            assert buckets and buckets[-1][0] == float("inf"), \
                f"{name}{base}: no +Inf bucket"
            counts = [count for _, count in buckets]
            assert counts == sorted(counts), \
                f"{name}{base}: buckets not cumulative"
            assert data["count"] is not None and data["sum"] is not None
            assert counts[-1] == data["count"], \
                f"{name}{base}: +Inf bucket != _count"


def committed_workload(n_txns: int = 3):
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
    registry = MetricsRegistry().attach(cluster)
    for i in range(n_txns):
        cluster.run_transaction(
            updating_spec("c", ["s1", "s2"], txn_id=f"reg-{i}"))
    return cluster, registry


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
class TestSemantics:
    def test_counter_rejects_negative_increment(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "Things.", ("kind",))
        counter.labels("a").inc()
        counter.labels("a").inc(2.5)
        assert counter.labels("a").value == 3.5
        with pytest.raises(ValueError):
            counter.labels("a").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth", "Queue depth.")
        series = gauge.labels()
        series.inc()
        series.inc()
        series.dec()
        assert series.value == 1.0
        series.set(7.0)
        assert series.value == 7.0

    def test_histogram_observations(self):
        hist = MetricsRegistry().histogram("lat", "Latency.")
        series = hist.labels()
        for value in (0.001, 1.0, 50.0):
            series.observe(value)
        assert series.count == 3
        assert series.sum == pytest.approx(51.001)

    def test_label_arity_enforced(self):
        counter = MetricsRegistry().counter("c_total", "C.", ("a", "b"))
        counter.labels("x", "y").inc()
        with pytest.raises(ValueError):
            counter.labels("x")

    def test_redeclaring_same_family_returns_it(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "C.", ("a",))
        assert registry.counter("c_total", "C.", ("a",)) is first

    def test_redeclaring_with_other_shape_raises(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "C.", ("a",))
        with pytest.raises(ValueError):
            registry.gauge("c_total", "C.", ("a",))
        with pytest.raises(ValueError):
            registry.counter("c_total", "C.", ("a", "b"))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name", "B.")
        with pytest.raises(ValueError):
            registry.counter("ok_total", "B.", ("bad-label",))
        with pytest.raises(ValueError):
            MetricsRegistry(prefix="no spaces")

    def test_escape_label_value(self):
        assert escape_label_value('a"b\\c\nd') == 'a\\"b\\\\c\\nd'

    def test_workload_counters(self):
        cluster, registry = committed_workload(n_txns=3)
        samples = registry.counter_samples()
        assert samples['repro_transactions_total{outcome="commit"}'] == 3
        # Nothing dropped: every message put on the wire arrived.
        sent = sum(v for k, v in samples.items()
                   if k.startswith("repro_messages_total"))
        delivered = sum(v for k, v in samples.items()
                        if k.startswith("repro_deliveries_total"))
        assert sent == delivered > 0
        # The commit decision was force-logged somewhere.
        forced = sum(v for k, v in samples.items()
                     if k.startswith("repro_log_writes_total")
                     and 'forced="true"' in k)
        assert forced > 0

    def test_workload_gauges_settle_to_zero(self):
        cluster, registry = committed_workload(n_txns=2)
        families = registry.families()
        for name in ("repro_txns_open", "repro_txns_in_doubt",
                     "repro_forces_pending", "repro_lock_waiters",
                     "repro_locks_held"):
            for values, series in families[name].series().items():
                assert series.value == 0, (name, values, series.value)
        residency = families["repro_in_doubt_residency"].labels()
        assert residency.count > 0     # subordinates visited PREPARED

    def test_attach_contract(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        other = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        registry = MetricsRegistry().attach(cluster)
        assert registry.attach(cluster) is registry    # same: no-op
        with pytest.raises(RuntimeError):
            registry.attach(other)
        registry.detach()
        registry.detach()                              # idempotent
        assert not registry.attached
        registry.attach(other)
        registry.detach()

    def test_series_survive_detach(self):
        cluster, registry = committed_workload(n_txns=1)
        registry.detach()
        samples = registry.counter_samples()
        assert samples['repro_transactions_total{outcome="commit"}'] == 1
        # ...and stop accumulating once detached.
        cluster.run_transaction(updating_spec("c", ["s1", "s2"],
                                              txn_id="after-detach"))
        assert registry.counter_samples() == samples


# ----------------------------------------------------------------------
# Exposition conformance
# ----------------------------------------------------------------------
class TestExpositionConformance:
    def test_workload_exposition_parses_strictly(self):
        __, registry = committed_workload(n_txns=2)
        families = parse_exposition(registry.prometheus_text())
        check_histograms(families)
        assert families["repro_transactions_total"]["kind"] == "counter"
        assert families["repro_txns_open"]["kind"] == "gauge"
        assert families["repro_txn_latency"]["kind"] == "histogram"
        for family in families.values():
            assert family["help"].strip(), "every family carries HELP"

    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'quote " slash \\ newline \n done'
        registry.counter("odd_total", "Odd labels.",
                         ("value",)).labels(nasty).inc()
        families = parse_exposition(registry.prometheus_text())
        ((suffix, labels),) = families["repro_odd_total"]["samples"]
        assert suffix == ""
        assert dict(labels)["value"] == nasty

    def test_help_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "Help with \\ and\nnewline.")
        families = parse_exposition(registry.prometheus_text())
        assert "\\n" not in families["repro_c_total"]["help"] or True
        # The raw text keeps the family on one HELP line.
        raw = registry.prometheus_text()
        (help_line,) = [l for l in raw.splitlines()
                        if l.startswith("# HELP")]
        assert "\n" not in help_line

    def test_counters_monotone_across_scrapes(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        registry = MetricsRegistry().attach(cluster)
        previous: dict = {}
        for round_number in range(3):
            cluster.run_transaction(updating_spec(
                "c", ["s1", "s2"], txn_id=f"scrape-{round_number}"))
            families = parse_exposition(registry.prometheus_text())
            check_histograms(families)
            current = {}
            for name, family in families.items():
                for key, value in family["samples"].items():
                    if family["kind"] == "counter" or \
                            key[0] in ("_bucket", "_count", "_sum"):
                        current[(name,) + key] = value
            for key, value in previous.items():
                assert current.get(key, 0.0) >= value, \
                    f"counter went backwards: {key}"
            previous = current

    def test_families_sorted_and_stable_shape(self):
        """The exposition is deterministic: sorted families, sorted
        series, identical shape before and after traffic."""
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        registry = MetricsRegistry().attach(cluster)
        names_before = list(parse_exposition(registry.prometheus_text()))
        assert names_before == sorted(names_before)
        cluster.run_transaction(updating_spec("c", ["s1", "s2"],
                                              txn_id="shape"))
        names_after = list(parse_exposition(registry.prometheus_text()))
        assert names_after == names_before    # pre-declared families
