"""Combined-optimization study (analysis.combined) unit tests."""

import pytest

from repro.analysis.combined import (
    COMBINATIONS,
    CombinedConfig,
    run_all_combinations,
    run_combination,
)
from repro.core.config import BASIC_2PC


def test_combination_registry_shape():
    keys = [combo.key for combo in COMBINATIONS]
    assert keys == ["baseline", "pa", "pa_ro", "pa_ro_la", "pa_ro_la_sl"]
    for combo in COMBINATIONS:
        assert combo.description


def test_single_combination_runs_both_cases():
    result = run_combination(COMBINATIONS[0])
    assert result.cost.flows > 0
    assert result.abort_cost is not None
    assert result.latency > 0


def test_pa_matches_baseline_on_commit_but_wins_abort():
    results = run_all_combinations()
    baseline = results["baseline"]
    pa = results["pa"]
    assert pa.cost.as_tuple() == baseline.cost.as_tuple()
    assert pa.abort_cost.forced_writes < baseline.abort_cost.forced_writes
    assert pa.abort_cost.flows <= baseline.abort_cost.flows


def test_read_only_step_cuts_commit_cost():
    results = run_all_combinations()
    assert results["pa_ro"].cost.flows < results["pa"].cost.flows
    assert results["pa_ro"].cost.forced_writes < \
        results["pa"].cost.forced_writes


def test_last_agent_step_cuts_latency_on_satellite():
    results = run_all_combinations(slow_delay=25.0)
    assert results["pa_ro_la"].latency < results["pa_ro"].latency


def test_shared_log_step_cuts_forces_only():
    results = run_all_combinations()
    with_sl = results["pa_ro_la_sl"]
    without = results["pa_ro_la"]
    assert with_sl.cost.forced_writes < without.cost.forced_writes
    assert with_sl.cost.flows == without.cost.flows
    assert with_sl.local_flows >= without.local_flows


def test_custom_combination():
    custom = CombinedConfig(key="x", label="X", config=BASIC_2PC)
    result = run_combination(custom)
    assert result.key == "x"
    assert result.cost.flows > 0
