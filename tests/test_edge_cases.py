"""Edge cases across subsystems."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import BASIC_2PC, PRESUMED_ABORT, PRESUMED_NOTHING
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.errors import DeadlockError
from repro.lrm.locks import LockManager, LockMode
from repro.lrm.operations import read_op, write_op
from repro.net.message import MessageType
from repro.sim.kernel import Simulator

from tests.conftest import assert_atomic, updating_spec


class TestLockEdgeCases:
    def test_upgrade_upgrade_deadlock_detected(self):
        """Two shared holders both requesting upgrades deadlock."""
        simulator = Simulator()
        locks = LockManager(simulator)
        locks.acquire("t1", "k", LockMode.SHARED, lambda: None)
        locks.acquire("t2", "k", LockMode.SHARED, lambda: None)
        simulator.run()
        locks.acquire("t1", "k", LockMode.EXCLUSIVE, lambda: None)
        with pytest.raises(DeadlockError):
            locks.acquire("t2", "k", LockMode.EXCLUSIVE, lambda: None)

    def test_deadlock_victim_release_lets_survivor_finish(self):
        """After the victim of a deadlock releases, the survivor's
        blocked request is granted and it can complete."""
        from repro.lrm.resource_manager import ResourceManager
        from repro.log.manager import LogManager
        from repro.metrics.collector import MetricsCollector
        simulator = Simulator()
        metrics = MetricsCollector()
        rm = ResourceManager("rm", "n", simulator, metrics,
                             LogManager(simulator, metrics, "n"))
        done = []
        rm.perform("t1", [write_op("a", 1)], on_done=lambda: done.append("t1a"))
        rm.perform("t2", [write_op("b", 1)], on_done=lambda: done.append("t2b"))
        simulator.run()
        rm.perform("t1", [write_op("b", 2)], on_done=lambda: done.append("t1b"))
        errors = []
        rm.perform("t2", [write_op("a", 2)],
                   on_done=lambda: done.append("t2a"),
                   on_error=errors.append)
        simulator.run()
        assert len(errors) == 1 and isinstance(errors[0], DeadlockError)
        rm.abort("t2")      # victim rolls back and releases
        simulator.run()
        assert "t1b" in done  # survivor's wait was granted


class TestProtocolEdgeCases:
    def test_all_children_vote_no(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        spec = updating_spec("c", ["s1", "s2"])
        spec.participant("s1").veto = True
        spec.participant("s2").veto = True
        handle = cluster.run_transaction(spec)
        assert handle.aborted
        assert_atomic(cluster, spec)

    def test_wide_flat_tree(self):
        nodes = [f"n{i}" for i in range(30)]
        cluster = Cluster(PRESUMED_ABORT, nodes=nodes)
        spec = updating_spec("n0", nodes[1:])
        handle = cluster.run_transaction(spec)
        assert handle.committed
        assert cluster.metrics.commit_flows(txn=spec.txn_id) == 4 * 29

    def test_deep_chain(self):
        nodes = [f"d{i}" for i in range(12)]
        cluster = Cluster(PRESUMED_NOTHING, nodes=nodes)
        participants = [ParticipantSpec(node=nodes[0],
                                        ops=[write_op("k0", 0)])]
        for index, (parent, child) in enumerate(zip(nodes, nodes[1:])):
            participants.append(ParticipantSpec(
                node=child, parent=parent,
                ops=[write_op(f"k{index + 1}", index + 1)]))
        spec = TransactionSpec(participants=participants)
        handle = cluster.run_transaction(spec)
        assert handle.committed
        assert_atomic(cluster, spec)

    def test_mixed_readers_and_vetoer_in_basic(self):
        """Baseline treats readers as full voters — they must also be
        told about the abort and acknowledge it."""
        cluster = Cluster(BASIC_2PC, nodes=["c", "reader", "vetoer"])
        spec = flat_tree("c", ["reader", "vetoer"])
        spec.participant("reader").ops.append(read_op("x"))
        spec.participant("vetoer").ops.append(write_op("y", 1))
        spec.participant("vetoer").veto = True
        handle = cluster.run_transaction(spec)
        assert handle.aborted
        # The reader voted YES (no read-only optimization), so it is
        # notified and acknowledges.
        aborts_to_reader = [
            1 for __ in range(1)
            if cluster.metrics.flows.total(
                msg_type=MessageType.ABORT.value, txn=spec.txn_id) >= 1]
        assert aborts_to_reader
        cluster.node("reader").default_rm.locks.assert_released(
            spec.txn_id)

    def test_both_nodes_crash_and_recover(self):
        config = PRESUMED_ABORT.with_options(
            ack_timeout=15.0, retry_interval=15.0, inquiry_timeout=15.0)
        cluster = Cluster(config, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        cluster.crash_at("c", 4.5)   # after deciding commit
        cluster.crash_at("s", 4.6)   # in doubt
        cluster.restart_at("c", 30.0)
        cluster.restart_at("s", 40.0)
        cluster.start_transaction(spec)
        cluster.run_until(500.0)
        assert cluster.durable_outcome("c", spec.txn_id) == "commit"
        assert cluster.value("s", "key-s") == 1
        assert cluster.value("c", "key-c") == 1

    def test_repeated_crashes_of_same_node(self):
        config = PRESUMED_ABORT.with_options(
            ack_timeout=15.0, retry_interval=15.0)
        cluster = Cluster(config, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 4.5)
        cluster.restart_at("s", 30.0)
        cluster.crash_at("s", 35.0)
        cluster.restart_at("s", 60.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(500.0)
        assert handle.committed
        assert cluster.value("s", "key-s") == 1

    def test_group_commit_pending_forces_lost_in_crash(self):
        """Force requests batched but not yet written die with the
        crash; the presumption covers the unforced votes."""
        from repro.log.group_commit import GroupCommitPolicy
        config = PRESUMED_ABORT.with_options(
            group_commit=GroupCommitPolicy(group_size=8, timeout=50.0),
            vote_timeout=20.0)
        cluster = Cluster(config, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        # The sub's prepared force waits for a group that never fills;
        # crash while it is pending.
        cluster.crash_at("s", 10.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(100.0)
        assert handle.aborted
        assert cluster.durable_outcome("s", spec.txn_id) is None

    def test_transaction_touching_node_twice_rejected(self):
        with pytest.raises(Exception):
            TransactionSpec(participants=[
                ParticipantSpec(node="a"),
                ParticipantSpec(node="b", parent="a"),
                ParticipantSpec(node="b", parent="a")])


class TestStress:
    def test_hundred_transactions_sequential(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        for i in range(100):
            spec = flat_tree("c", ["s1", "s2"])
            spec.participant("s1").ops.append(write_op("counter", i))
            spec.participant("s2").ops.append(
                write_op("mirror", i) if i % 2 else read_op("mirror"))
            handle = cluster.run_transaction(spec)
            assert handle.committed
        assert cluster.value("s1", "counter") == 99

    def test_fifty_concurrent_transactions(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        handles = []

        def start(i):
            spec = TransactionSpec(participants=[
                ParticipantSpec(node="c", ops=[write_op(f"c{i}", i)]),
                ParticipantSpec(node="s", parent="c",
                                ops=[write_op(f"s{i}", i)])])
            handles.append(cluster.start_transaction(spec))

        for i in range(50):
            cluster.simulator.at(i * 0.1, lambda i=i: start(i))
        cluster.run()
        assert all(h.committed for h in handles)
        assert len(handles) == 50
