"""Tests for per-transaction cost attribution and conformance auditing.

The ledger must attribute exactly the triples the paper's tables
predict — ``basic_2pc_costs(3)`` for a fault-free 3-node PA commit —
and the auditor must diff each transaction against the formulas the
moment it completes, excusing divergence only when the run shows fault
evidence.  The sim-time series must be deterministic (bit-identical
across identical runs) because it samples virtual time, not wall time.
"""

import json

import pytest

from repro.analysis.formulas import basic_2pc_costs, pc_commit_costs
from repro.cli import main as cli_main
from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.metrics.collector import CostSummary
from repro.obs import (
    AuditFinding,
    ConformanceAuditor,
    CostLedger,
    RunReport,
    SimTimeSeries,
    expected_costs,
    merge_audit_cells,
    run_audit_cell,
    run_audit_matrix,
    run_faulty_audit_cell,
    sparkline,
)
from tests.conftest import updating_spec


def ledgered_commit(nodes=("c", "s1", "s2"), txn_id="T1", predictor=None):
    cluster = Cluster(PRESUMED_ABORT, nodes=list(nodes))
    ledger = CostLedger().attach(cluster)
    auditor = ConformanceAuditor(predictor=predictor)
    auditor.attach(cluster, ledger)
    handle = cluster.run_transaction(
        updating_spec(nodes[0], list(nodes[1:]), txn_id=txn_id))
    auditor.finish()
    return cluster, ledger, auditor, handle


class TestLedgerAttribution:
    def test_pa_commit_triple_matches_table2(self):
        __, ledger, __a, handle = ledgered_commit()
        assert handle.outcome == "commit"
        assert ledger.cost_summary("T1") == basic_2pc_costs(3)

    def test_totals_agree_with_aggregate_metrics(self):
        cluster, ledger, __, __h = ledgered_commit()
        metrics = cluster.metrics
        costs = ledger.cost_summary("T1")
        assert costs.flows == metrics.commit_flows()
        assert costs.log_writes == metrics.total_log_writes()
        assert costs.forced_writes == metrics.forced_log_writes()

    def test_attribution_maps_key_node_phase_and_type(self):
        __, ledger, __a, __h = ledgered_commit()
        entry = ledger.entries["T1"]
        # Every flow is attributed to its sender.
        senders = {src for (src, __p, __t) in entry.flows}
        assert senders == {"c", "s1", "s2"}
        # The coordinator's prepare broadcast is two flows.
        prepares = sum(count for (src, __p, mtype), count
                       in entry.flows.items()
                       if src == "c" and mtype == "prepare")
        assert prepares == 2
        # Subordinate prepared records are forced protocol writes.
        assert any(rtype == "prepared" and forced
                   for (__n, __p, rtype, forced) in entry.writes)

    def test_lock_holds_closed_after_commit(self):
        __, ledger, __a, __h = ledgered_commit()
        entry = ledger.entries["T1"]
        assert entry.lock_holds, "updates must take locks"
        assert entry.open_locks == 0
        assert ledger.lock_time("T1") > 0.0
        nodes = {hold.node for hold in entry.lock_holds}
        assert nodes == {"c", "s1", "s2"}

    def test_unseen_txn_reads_as_zero(self):
        __, ledger, __a, __h = ledgered_commit()
        assert ledger.cost_summary("nope") == CostSummary(
            flows=0, log_writes=0, forced_writes=0)
        assert ledger.lock_time("nope") == 0.0

    def test_node_costs_split_roles(self):
        __, ledger, __a, __h = ledgered_commit()
        per_node = [ledger.node_costs("T1", node)
                    for node in ("c", "s1", "s2")]
        total = ledger.cost_summary("T1")
        assert sum(c.log_writes for c in per_node) == total.log_writes
        assert sum(c.forced_writes for c in per_node) == \
            total.forced_writes
        # Table 2: subordinates write more forced records than the
        # PA coordinator (prepared + committed vs committed only).
        assert per_node[1].forced_writes == 2
        assert per_node[0].forced_writes == 1


class TestLedgerAttachDetach:
    def test_attach_twice_same_cluster_is_noop(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        n_hooks = len(cluster.network.on_send)
        assert ledger.attach(cluster) is ledger
        assert len(cluster.network.on_send) == n_hooks

    def test_attach_other_cluster_while_attached_raises(self):
        first = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        second = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(first)
        with pytest.raises(RuntimeError):
            ledger.attach(second)

    def test_detach_removes_every_hook(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        ledger.detach()
        assert not ledger.attached
        assert cluster.network.on_send == []
        assert cluster.network.on_deliver == []
        for node in cluster.nodes.values():
            assert node.on_transition == []
            assert node.log.on_write == []
            assert node.log.on_flush == []
            for rm in node.all_rms():
                assert rm.locks.on_grant == []
                assert rm.locks.on_release == []
        ledger.detach()  # idempotent

    def test_detached_ledger_records_nothing_further(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        ledger.detach()
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="T1"))
        assert ledger.entries == {}

    def test_auditor_requires_ledger_on_same_cluster(self):
        one = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        other = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(one)
        with pytest.raises(RuntimeError):
            ConformanceAuditor().attach(other, ledger)

    def test_auditor_detach_removes_hooks(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        auditor = ConformanceAuditor().attach(cluster, ledger)
        auditor.detach()
        assert not auditor.attached
        for node in cluster.nodes.values():
            assert auditor._on_transition not in node.on_transition


class TestAuditorClassification:
    def test_matching_prediction_conforms(self):
        __, __l, auditor, __h = ledgered_commit(
            predictor=basic_2pc_costs(3))
        assert [f.classification for f in auditor.findings] == ["conforms"]
        assert auditor.counts()["conforms"] == 1
        assert auditor.anomalies() == []

    def test_no_prediction_conforms(self):
        __, __l, auditor, __h = ledgered_commit(predictor=None)
        assert auditor.findings[0].conforms
        assert auditor.findings[0].expected is None

    def test_wrong_prediction_in_fault_free_run_is_anomaly(self):
        wrong = CostSummary(flows=99, log_writes=99, forced_writes=99)
        __, __l, auditor, __h = ledgered_commit(predictor=wrong)
        finding = auditor.findings[0]
        assert finding.is_anomaly
        assert finding.fault_signals == []
        assert finding.observed == basic_2pc_costs(3)
        assert finding.expected == wrong

    def test_audit_fires_at_completion_not_finish(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        auditor = ConformanceAuditor(
            predictor=basic_2pc_costs(2)).attach(cluster, ledger)
        cluster.run_transaction(updating_spec("c", ["s"], txn_id="T1"))
        # Already audited during the run; finish() adds nothing.
        assert len(auditor.findings) == 1
        assert auditor.findings[0].conforms
        auditor.finish()
        assert len(auditor.findings) == 1

    def test_finish_sweeps_stragglers_as_incomplete(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        auditor = ConformanceAuditor(
            predictor=basic_2pc_costs(2)).attach(cluster, ledger)
        cluster.start_transaction(updating_spec("c", ["s"], txn_id="T1"))
        cluster.run_until(0.1)  # stop mid-protocol
        auditor.finish()
        finding = auditor.findings[0]
        assert "incomplete" in finding.fault_signals
        assert finding.classification == "expected-under-faults"

    def test_zero_tolerance_makes_fault_divergence_anomalous(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        ledger = CostLedger().attach(cluster)
        auditor = ConformanceAuditor(predictor=basic_2pc_costs(2),
                                     zero_tolerance=True)
        auditor.attach(cluster, ledger)
        cluster.start_transaction(updating_spec("c", ["s"], txn_id="T1"))
        cluster.run_until(0.1)
        auditor.finish()
        assert auditor.findings[0].is_anomaly

    def test_dict_and_callable_predictors(self):
        prediction = {"T1": basic_2pc_costs(3)}
        __, __l, auditor, __h = ledgered_commit(predictor=prediction)
        assert auditor.findings[0].conforms

        __, __l2, auditor2, __h2 = ledgered_commit(
            predictor=lambda txn_id: basic_2pc_costs(3))
        assert auditor2.findings[0].conforms

    def test_finding_round_trips_through_dict(self):
        __, __l, auditor, __h = ledgered_commit(
            predictor=basic_2pc_costs(3))
        original = auditor.findings[0]
        restored = AuditFinding.from_dict(
            json.loads(json.dumps(original.to_dict())))
        assert restored.txn_id == original.txn_id
        assert restored.observed == original.observed
        assert restored.expected == original.expected
        assert restored.classification == original.classification


class TestExpectedCosts:
    def test_baseline_matches_formulas(self):
        assert expected_costs("pa", "baseline", 3) == basic_2pc_costs(3)
        assert expected_costs("pc", "baseline", 4) == pc_commit_costs(4)

    def test_group_commit_triple_is_baseline(self):
        for protocol in ("basic", "pa", "pn", "pc"):
            assert expected_costs(protocol, "group_commit", 3) == \
                expected_costs(protocol, "baseline", 3)

    def test_read_only_cheaper_than_baseline(self):
        base = expected_costs("pa", "baseline", 3)
        read_only = expected_costs("pa", "read_only", 3, m=1)
        assert read_only.flows < base.flows
        assert read_only.forced_writes < base.forced_writes

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            expected_costs("bogus", "baseline", 3)
        with pytest.raises(ValueError):
            expected_costs("pa", "bogus", 3)


class TestAuditMatrix:
    def test_every_cell_conforms(self):
        report = run_audit_matrix(workers=1, txns=1)
        assert report["anomalies"] == 0
        assert report["expected_under_faults"] == 0
        assert report["conforms"] == report["txns"] == 16

    def test_cell_observations_match_cell_formula(self):
        cell = run_audit_cell("pc", "read_only", txns=2)
        assert cell["anomalies"] == 0
        for finding in cell["findings"]:
            assert finding["observed"] == cell["expected"]

    def test_last_agent_cell_conforms(self):
        cell = run_audit_cell("pa", "last_agent", txns=2)
        assert cell["conforms"] == 2
        assert cell["expected"] == {
            "flows": 6, "log_writes": 8, "forced_writes": 5}

    def test_matrix_parallel_identical_to_serial(self):
        serial = run_audit_matrix(workers=1, txns=1)
        parallel = run_audit_matrix(workers=2, txns=1)
        assert json.dumps(serial, sort_keys=True) == \
            json.dumps(parallel, sort_keys=True)

    def test_merge_accumulates_counts(self):
        cells = [run_audit_cell("pa", "baseline", txns=1),
                 run_audit_cell("pn", "baseline", txns=1)]
        merged = merge_audit_cells(cells)
        assert merged["txns"] == 2
        assert merged["conforms"] == 2
        assert merged["cells"] == cells

    def test_faulty_cell_classifies_as_expected_under_faults(self):
        cell = run_faulty_audit_cell()
        assert cell["outcome"] == "commit"
        assert cell["anomalies"] == 0
        assert cell["expected_under_faults"] >= 1
        signals = cell["findings"][0]["fault_signals"]
        assert any(s.startswith("node-crash:") for s in signals)


class TestSimTimeSeries:
    def run_sampled(self, interval=0.5):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
        series = SimTimeSeries(interval=interval).attach(cluster)
        for i in range(3):
            cluster.run_transaction(
                updating_spec("c", ["s1", "s2"], txn_id=f"T{i}"))
        series.sample()  # capture the quiesced end state explicitly
        series.detach()
        return series

    def test_validation(self):
        with pytest.raises(ValueError):
            SimTimeSeries(interval=0)
        with pytest.raises(ValueError):
            SimTimeSeries(capacity=0)

    def test_samples_cover_every_gauge(self):
        series = self.run_sampled()
        assert series.n_samples > 0
        for name in ("in_flight_txns", "locks_granted", "lock_waiters",
                     "pending_forces", "in_flight_messages",
                     "heuristic_events"):
            assert len(series.series[name]) == series.n_samples
        # Something was in flight at some point.
        assert any(v > 0 for __, v in series.series["in_flight_txns"])
        # A quiesced fault-free run ends with nothing on the wire.
        assert series.series["in_flight_messages"][-1][1] == 0

    def test_sampling_is_deterministic(self):
        one = self.run_sampled().to_dict()
        two = self.run_sampled().to_dict()
        assert one == two

    def test_ring_buffer_caps_points(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        series = SimTimeSeries(interval=0.25, capacity=4).attach(cluster)
        for i in range(4):
            cluster.run_transaction(
                updating_spec("c", ["s"], txn_id=f"T{i}"))
        assert series.n_samples == 4
        times = [t for t, __ in series.series["in_flight_txns"]]
        assert times == sorted(times)

    def test_samples_land_on_interval_boundaries(self):
        series = self.run_sampled(interval=0.5)
        for points in series.series.values():
            times = [t for t, __ in points]
            assert times == sorted(times)
            # One boundary, one hook sample — only the explicit final
            # sample may share a timestamp with the last hook sample.
            assert len(set(times)) >= len(times) - 1

    def test_attach_contract(self):
        first = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        second = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        series = SimTimeSeries().attach(first)
        assert series.attach(first) is series
        with pytest.raises(RuntimeError):
            series.attach(second)
        series.detach()
        series.detach()  # idempotent
        assert not series.attached

    def test_json_round_trip(self):
        series = self.run_sampled()
        data = json.loads(series.to_json())
        assert data["interval"] == 0.5
        assert set(data["series"]) == set(series.series)

    def test_json_export_is_exact(self):
        """to_json is the lossless wire form of to_dict — every point,
        not just the key set, survives the round trip."""
        series = self.run_sampled()
        exported = json.loads(series.to_json())
        native = series.to_dict()
        assert exported["capacity"] == native["capacity"]
        for name, points in native["series"].items():
            assert exported["series"][name] == \
                [list(point) for point in points]

    def test_wraparound_keeps_newest_samples(self):
        """A capped ring buffer holds exactly the tail of the uncapped
        sample stream — wraparound evicts oldest-first, point for
        point, across every gauge."""
        def sampled(capacity):
            cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
            series = SimTimeSeries(interval=0.25,
                                   capacity=capacity).attach(cluster)
            for i in range(4):
                cluster.run_transaction(
                    updating_spec("c", ["s1", "s2"], txn_id=f"T{i}"))
            series.sample()
            series.detach()
            return series

        full = sampled(capacity=4096)
        capped = sampled(capacity=5)
        assert capped.n_samples == 5
        assert full.n_samples > 5  # the cap actually bit
        for name, points in capped.series.items():
            assert list(points) == list(full.series[name])[-5:]

    def test_wraparound_survives_json_export(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        series = SimTimeSeries(interval=0.25, capacity=3).attach(cluster)
        for i in range(4):
            cluster.run_transaction(
                updating_spec("c", ["s"], txn_id=f"T{i}"))
        series.detach()
        data = json.loads(series.to_json())
        assert all(len(points) == 3 for points in data["series"].values())
        for name, points in series.series.items():
            assert data["series"][name] == \
                [list(point) for point in points]

    def test_dashboard_renders_all_gauges(self):
        series = self.run_sampled()
        dashboard = series.render_dashboard()
        for name in ("in_flight_txns", "locks_granted",
                     "in_flight_messages"):
            assert name in dashboard
        assert "samples=" in dashboard

    def test_sparkline(self):
        assert sparkline([]) == ""
        assert sparkline([1.0, 1.0]) == "▁▁"
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁" and line[-1] == "█"


class TestRunReportLedgerSections:
    def test_ledger_and_audit_sections(self):
        cluster, ledger, auditor, __h = ledgered_commit(
            predictor=basic_2pc_costs(3))
        report = RunReport.from_run(cluster, ledger=ledger,
                                    auditor=auditor)
        assert report.distributions["txn flows"].count == 1
        assert report.distributions["txn flows"].max == 4.0 * 2
        assert report.distributions["txn forced writes"].max == 5.0
        assert report.distributions["txn lock time"].count == 1
        assert report.counters["audit conforms"] == 1
        assert report.counters["audit anomalies"] == 0
        assert report.notes == []

    def test_anomalies_surface_as_notes(self):
        wrong = CostSummary(flows=1, log_writes=1, forced_writes=1)
        cluster, ledger, auditor, __h = ledgered_commit(predictor=wrong)
        report = RunReport.from_run(cluster, ledger=ledger,
                                    auditor=auditor)
        assert report.counters["audit anomalies"] == 1
        assert any("audit anomaly" in note for note in report.notes)
        assert "note: audit anomaly" in report.render()
        assert report.to_dict()["notes"] == report.notes

    def test_notes_merge_by_concatenation(self):
        wrong = CostSummary(flows=1, log_writes=1, forced_writes=1)
        cluster, ledger, auditor, __h = ledgered_commit(predictor=wrong)
        report = RunReport.from_run(cluster, ledger=ledger,
                                    auditor=auditor)
        merged = RunReport().merge(report).merge(report)
        assert len(merged.notes) == 2 * len(report.notes)


class TestAuditCli:
    def test_audit_matrix_exits_clean(self, capsys):
        assert cli_main(["audit", "--txns", "1", "--workers", "1"]) == 0
        out = capsys.readouterr().out
        assert "16 transactions audited" in out
        assert "0 anomalies" in out

    def test_audit_json_output(self, capsys):
        assert cli_main(["audit", "--txns", "1", "--workers", "1",
                         "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["anomalies"] == 0
        assert data["conforms"] == data["txns"] == 16

    def test_profile_audit_flag(self, capsys):
        assert cli_main(["profile", "banking-reconciliation",
                         "--audit"]) == 0
        out = capsys.readouterr().out
        assert "audit:" in out
        assert "0 anomalies" in out

    def test_trace_dashboard_format(self, capsys):
        assert cli_main(["trace", "default",
                         "--format", "dashboard"]) == 0
        out = capsys.readouterr().out
        assert "sim-time dashboard" in out
        assert "in_flight_txns" in out

    def test_sweep_audit_rejected_for_non_auditable_study(self, capsys):
        assert cli_main(["sweep", "--study", "tree-size",
                         "--audit"]) == 2
