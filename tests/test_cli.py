"""CLI tests (``repro-2pc`` / ``python -m repro``)."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def test_table1(capsys):
    code, out, __ = run_cli(capsys, "table", "1")
    assert code == 0
    assert "Read Only" in out and "Group Commit" in out


def test_table2_all_rows_ok(capsys):
    code, out, __ = run_cli(capsys, "table", "2")
    assert code == 0
    assert "MISMATCH" not in out
    assert "Basic 2PC" in out and "PC, Commit case" in out


def test_table3_default_and_custom_params(capsys):
    code, out, __ = run_cli(capsys, "table", "3")
    assert code == 0 and "n=11, m=4" in out
    code, out, __ = run_cli(capsys, "table", "3", "--n", "5", "--m", "2")
    assert code == 0 and "n=5, m=2" in out
    assert "MISMATCH" not in out


def test_table4(capsys):
    code, out, __ = run_cli(capsys, "table", "4", "--r", "6")
    assert code == 0
    assert "r=6" in out and "MISMATCH" not in out


@pytest.mark.parametrize("number", ["1", "3", "6", "7"])
def test_figures_render(capsys, number):
    code, out, __ = run_cli(capsys, "figure", number)
    assert code == 0
    assert f"Figure {number}" in out


def test_figure5_prints_commentary(capsys):
    code, out, __ = run_cli(capsys, "figure", "5")
    assert code == 0
    assert "different outcomes" in out


def test_compare_all_cells(capsys):
    code, out, __ = run_cli(capsys, "compare")
    assert code == 0
    assert "every cell reproduces the paper" in out


def test_profile_runs(capsys):
    code, out, __ = run_cli(capsys, "profile", "banking-reconciliation")
    assert code == 0
    assert "commit" in out


def test_profile_unknown(capsys):
    code, __, err = run_cli(capsys, "profile", "nope")
    assert code == 2
    assert "unknown profile" in err


def test_list_profiles(capsys):
    code, out, __ = run_cli(capsys, "list-profiles")
    assert code == 0
    assert "travel-booking" in out


def test_top_once_over_journal(capsys, tmp_path):
    journal = tmp_path / "basic.jsonl"
    code, out, __ = run_cli(capsys, "journal", "basic", "--out",
                            str(journal), "--txns", "3")
    assert code == 0 and journal.exists()
    code, out, __ = run_cli(capsys, "top", "--once", "--journal",
                            str(journal))
    assert code == 0
    assert "repro-2pc top · journal" in out
    assert "commit" in out
    assert "watchdog findings (0)" in out


def test_top_requires_exactly_one_source(capsys, tmp_path):
    code, __, err = run_cli(capsys, "top", "--once")
    assert code == 2 and "exactly one" in err
    code, __, err = run_cli(capsys, "top", "--once", "--connect",
                            "h:1", "--journal", str(tmp_path / "x"))
    assert code == 2 and "exactly one" in err


def test_top_bad_inputs(capsys, tmp_path):
    code, __, err = run_cli(capsys, "top", "--once", "--journal",
                            str(tmp_path / "missing.jsonl"))
    assert code == 2 and "cannot load journal" in err
    code, __, err = run_cli(capsys, "top", "--once", "--connect",
                            "no-port-here")
    assert code == 2 and "expected HOST:PORT" in err


def test_parser_rejects_bad_table():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["table", "9"])


def test_module_entry_point():
    import repro.__main__  # noqa: F401  (import side-effect free)
