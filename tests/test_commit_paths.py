"""Integration tests: failure-free commit across protocols and trees."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.spec import chain_tree, flat_tree
from repro.core.states import TxnState
from repro.errors import ConfigurationError
from repro.lrm.operations import read_op, write_op

from tests.conftest import assert_atomic, updating_spec

ALL_CONFIGS = [
    pytest.param(BASIC_2PC, id="basic"),
    pytest.param(PRESUMED_ABORT, id="pa"),
    pytest.param(PRESUMED_NOTHING, id="pn"),
    pytest.param(PRESUMED_COMMIT, id="pc"),
]


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_two_node_commit_applies_everywhere(config):
    cluster = Cluster(config, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert cluster.value("coord", "key-coord") == 1
    assert cluster.value("sub", "key-sub") == 1
    assert assert_atomic(cluster, spec) == "commit"


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_flat_tree_of_five_commits(config):
    nodes = [f"n{i}" for i in range(5)]
    cluster = Cluster(config, nodes=nodes)
    spec = updating_spec("n0", nodes[1:])
    handle = cluster.run_transaction(spec)
    assert handle.committed
    for name in nodes:
        assert cluster.value(name, f"key-{name}") == 1


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_cascaded_chain_commits(config):
    nodes = ["a", "b", "c", "d"]
    cluster = Cluster(config, nodes=nodes)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert assert_atomic(cluster, spec) == "commit"


@pytest.mark.parametrize("config", ALL_CONFIGS)
def test_locks_released_after_commit(config):
    cluster = Cluster(config, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    cluster.run_transaction(spec)
    for name in ("coord", "sub"):
        cluster.node(name).default_rm.locks.assert_released(spec.txn_id)


def test_single_node_transaction_commits():
    cluster = Cluster(PRESUMED_ABORT, nodes=["solo"])
    spec = flat_tree("solo", [])
    spec.participant("solo").ops.append(write_op("k", 9))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert cluster.value("solo", "k") == 9


def test_contexts_reach_terminal_states():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    cluster.run_transaction(spec)
    for name in ("coord", "sub"):
        context = cluster.node(name).ctx(spec.txn_id)
        assert context.state is TxnState.FORGOTTEN


def test_handle_latency_positive():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    handle = cluster.run_transaction(updating_spec("coord", ["sub"]))
    assert handle.latency > 0


def test_sequential_transactions_reuse_cluster():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    for i in range(3):
        spec = flat_tree("coord", ["sub"])
        spec.participant("sub").ops.append(write_op("counter", i))
        handle = cluster.run_transaction(spec)
        assert handle.committed
    assert cluster.value("sub", "counter") == 2


def test_spec_with_unknown_node_rejected():
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord"])
    with pytest.raises(ConfigurationError, match="unknown nodes"):
        cluster.run_transaction(flat_tree("coord", ["ghost"]))


def test_duplicate_node_rejected():
    cluster = Cluster(PRESUMED_ABORT, nodes=["a"])
    with pytest.raises(ConfigurationError):
        cluster.add_node("a")


def test_end_is_never_forced_in_pa_commit():
    """§2: the END record does not need to be forced."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub"])
    spec = updating_spec("coord", ["sub"])
    cluster.run_transaction(spec)
    for record in cluster.node("coord").log.all_records():
        if record.record_type.value == "end":
            assert not record.forced


def test_prepare_overtakes_work(two_node_cluster):
    """Peer environments: a prepare may arrive before the subordinate
    finishes its part; the vote waits (§4, Read Only discussion)."""
    spec = updating_spec("coord", ["sub"], await_work_done=False)
    handle = two_node_cluster.run_transaction(spec)
    assert handle.committed
    assert two_node_cluster.value("sub", "key-sub") == 1


def test_latency_model_affects_commit_duration():
    from repro.net.latency import ConstantLatency
    fast = Cluster(PRESUMED_ABORT, nodes=["c", "s"],
                   latency=ConstantLatency(0.5))
    slow = Cluster(PRESUMED_ABORT, nodes=["c", "s"],
                   latency=ConstantLatency(10.0))
    spec_fast = updating_spec("c", ["s"])
    spec_slow = updating_spec("c", ["s"])
    h_fast = fast.run_transaction(spec_fast)
    h_slow = slow.run_transaction(spec_slow)
    assert h_slow.latency > h_fast.latency


def test_read_only_everywhere_no_logging_pa():
    """§3: PA performs no logging at all if everyone is read-only."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "s1", "s2"])
    spec = flat_tree("coord", ["s1", "s2"])
    for participant in spec.participants:
        participant.ops.append(read_op("shared"))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert cluster.metrics.total_log_writes(txn=spec.txn_id) == 0
