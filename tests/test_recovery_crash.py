"""Crash-recovery integration tests across presumptions.

Timeline for the default latency (1.0) / io (0.1) two-node commit:
enroll@0->1, work-done@1->2, prepare@2->3, prepared-force 3.1,
vote@3.1->4.1, committed-force 4.2, commit@4.2->5.2, ack@5.3->6.3.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.core.states import TxnState
from repro.errors import ProtocolError

from tests.conftest import updating_spec


def two_nodes(config, **options):
    defaults = dict(ack_timeout=20.0, retry_interval=20.0)
    defaults.update(options)
    return Cluster(config.with_options(**defaults), nodes=["c", "s"])


class TestSubordinateCrash:
    def test_crash_before_prepare_aborts(self):
        """The subordinate dies before voting: the coordinator's vote
        timeout aborts the transaction."""
        cluster = two_nodes(PRESUMED_ABORT, vote_timeout=10.0)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 2.5)
        handle = cluster.start_transaction(spec)
        cluster.run_until(100.0)
        assert handle.aborted
        assert cluster.value("c", "key-c") is None

    @pytest.mark.parametrize("config", [
        pytest.param(PRESUMED_ABORT, id="pa"),
        pytest.param(BASIC_2PC, id="basic"),
        pytest.param(PRESUMED_COMMIT, id="pc"),
    ])
    def test_in_doubt_crash_recovers_commit_by_inquiry(self, config):
        """Voted YES, crashed, restarted: the subordinate redoes its
        updates, re-locks, inquires, and commits."""
        cluster = two_nodes(config)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 4.5)       # prepared durable, commit lost
        cluster.restart_at("s", 50.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert handle.committed
        assert cluster.value("s", "key-s") == 1
        assert cluster.node("s").ctx(spec.txn_id).state \
            is TxnState.FORGOTTEN

    def test_in_doubt_crash_pn_coordinator_drives(self):
        """PN: the restarted subordinate waits; the coordinator's
        retries deliver the outcome."""
        cluster = two_nodes(PRESUMED_NOTHING)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 5.0)       # PN sub forces more: crash later
        cluster.restart_at("s", 50.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert handle.committed
        assert cluster.value("s", "key-s") == 1
        # Recovery was coordinator-driven: the sub sent no INQUIRE.
        inquiries = cluster.metrics.flows.total(msg_type="inquire")
        assert inquiries == 0

    def test_in_doubt_holds_locks_until_resolved(self):
        cluster = two_nodes(PRESUMED_ABORT)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 4.5)
        cluster.restart_at("s", 50.0)
        cluster.start_transaction(spec)
        cluster.run_until(50.5)
        # Just restarted: still in doubt, lock re-acquired.
        assert cluster.node("s").default_rm.locks.holds(
            spec.txn_id, "key-s")
        cluster.run_until(300.0)
        cluster.node("s").default_rm.locks.assert_released(spec.txn_id)

    def test_crash_before_vote_forced_loses_prepared(self):
        """Crash while the prepared force is in flight: no stable
        prepared record, so the restarted node knows nothing and the
        presumption (abort) applies."""
        cluster = two_nodes(PRESUMED_ABORT, vote_timeout=15.0)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("s", 3.05)      # force in flight
        cluster.restart_at("s", 40.0)
        handle = cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert handle.aborted
        assert cluster.value("s", "key-s") is None
        assert cluster.durable_outcome("s", spec.txn_id) is None


class TestCoordinatorCrash:
    def test_crash_after_decision_drives_commit_on_restart(self):
        cluster = two_nodes(PRESUMED_ABORT)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("c", 4.5)       # committed durable, commit unsent
        cluster.restart_at("c", 50.0)
        cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert cluster.value("s", "key-s") == 1
        assert cluster.value("c", "key-c") == 1
        assert cluster.durable_outcome("c", spec.txn_id) == "commit"

    def test_crash_before_decision_presumes_abort(self):
        """PA coordinator crashes before deciding: nothing on its log;
        the in-doubt subordinate's inquiry gets the presumed abort."""
        cluster = two_nodes(PRESUMED_ABORT, retry_interval=10.0,
                            inquiry_timeout=15.0)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("c", 3.5)       # sub has voted; no decision
        cluster.restart_at("c", 30.0)
        cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert cluster.value("s", "key-s") is None
        assert cluster.node("s").ctx(spec.txn_id).state \
            is TxnState.FORGOTTEN

    def test_pn_crash_after_commit_pending_aborts_everywhere(self):
        """PN: commit-pending with no decision means the restarted
        coordinator decides abort and drives it to the remembered
        children."""
        cluster = two_nodes(PRESUMED_NOTHING, retry_interval=10.0)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("c", 2.5)       # commit-pending durable
        cluster.restart_at("c", 30.0)
        cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert cluster.durable_outcome("c", spec.txn_id) == "abort"
        assert cluster.value("s", "key-s") is None

    def test_pc_crash_after_collecting_aborts_with_acks(self):
        """PC must chase aborts reliably — subordinates would otherwise
        presume commit."""
        cluster = two_nodes(PRESUMED_COMMIT, retry_interval=10.0)
        spec = updating_spec("c", ["s"])
        cluster.crash_at("c", 2.5)       # collecting durable
        cluster.restart_at("c", 30.0)
        cluster.start_transaction(spec)
        cluster.run_until(300.0)
        assert cluster.durable_outcome("c", spec.txn_id) == "abort"
        assert cluster.value("s", "key-s") is None


class TestDataRecovery:
    def test_committed_data_redone_after_crash(self):
        """The volatile store is rebuilt from the log on restart."""
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        handle = cluster.run_transaction(spec)
        assert handle.committed
        cluster.crash("s")
        assert cluster.value("s", "key-s") is None
        cluster.restart("s")
        cluster.run()
        assert cluster.value("s", "key-s") == 1

    def test_loser_updates_not_redone(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        spec.participant("c").veto = True
        cluster.run_transaction(spec)
        cluster.crash("s")
        cluster.restart("s")
        cluster.run()
        assert cluster.value("s", "key-s") is None

    def test_multiple_transactions_recovered_in_order(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        for value in (1, 2, 3):
            spec = updating_spec("c", ["s"])
            spec.participant("s").ops[0] = __import__(
                "repro.lrm.operations", fromlist=["write_op"]
            ).write_op("shared", value)
            cluster.run_transaction(spec)
        cluster.crash("s")
        cluster.restart("s")
        cluster.run()
        assert cluster.value("s", "shared") == 3


class TestRestartValidation:
    def test_restart_of_live_node_rejected(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c"])
        with pytest.raises(ProtocolError):
            cluster.restart("c")

    def test_crashed_node_ignores_traffic(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        spec = updating_spec("c", ["s"])
        cluster.crash("s")
        handle = cluster.start_transaction(spec)
        cluster.run_until(10.0)
        assert not handle.done  # blocked on the dead subordinate

    def test_end_absence_causes_redundant_but_harmless_recovery(self):
        """§2: losing the (non-forced) END only costs redundant
        recovery work."""
        cluster = two_nodes(PRESUMED_ABORT, retry_interval=10.0)
        spec = updating_spec("c", ["s"])
        handle = cluster.run_transaction(spec)
        assert handle.committed
        # Crash after commit: END was non-forced and is lost; COMMITTED
        # was forced and survives.
        cluster.crash("c")
        cluster.restart("c")
        cluster.run_until(cluster.simulator.now + 100.0)
        # Redundant recovery flows happened, and the outcome stands.
        assert cluster.durable_outcome("c", spec.txn_id) == "commit"
        assert cluster.metrics.recovery_flows() > 0
        assert cluster.value("c", "key-c") == 1


class TestCascadedCoordinatorCrash:
    """A cascaded coordinator that crashes after forcing its initiation
    record must resolve by inquiring its parent, never by unilateral
    abort — it may already have voted upward (a read-only vote leaves
    no log record), in which case the decision belongs to the parent.

    Regression: hypothesis found a PN chain n0 -> n1 -> n2 where n1
    (read-only subtree) forced commit-pending, voted read-only, crashed,
    then aborted unilaterally at restart while n0 committed — a durable
    R6 atomicity violation.
    """

    def _chain(self, config):
        from repro.core.spec import ParticipantSpec, TransactionSpec
        from repro.lrm.operations import read_op, write_op
        from repro.verify import ProtocolChecker

        participants = [
            ParticipantSpec(node="n0"),
            ParticipantSpec(node="n1", parent="n0"),
            ParticipantSpec(node="n2", parent="n1"),
        ]
        participants[0].ops.append(write_op("k-n0", 1))
        participants[1].ops.append(read_op("shared"))
        participants[2].ops.append(read_op("shared"))
        spec = TransactionSpec(participants=participants)
        cluster = Cluster(
            config.with_options(ack_timeout=15.0, retry_interval=15.0,
                                vote_timeout=20.0, inquiry_timeout=20.0),
            nodes=["n0", "n1", "n2"])
        checker = ProtocolChecker().attach(cluster)
        return cluster, checker, spec

    @pytest.mark.parametrize("config", [PRESUMED_NOTHING, PRESUMED_COMMIT],
                             ids=["pn", "pc"])
    def test_read_only_cascade_crash_agrees_with_parent(self, config):
        cluster, checker, spec = self._chain(config)
        # n1 forces its initiation record at ~5.1, votes read-only at
        # ~7.2; crash at 8.0 wipes the (unlogged) vote.
        cluster.crash_at("n1", 8.0)
        cluster.restart_at("n1", 13.0)
        cluster.start_transaction(spec)
        cluster.run_until(600.0)
        checker.check_atomicity(spec.txn_id)
        checker.assert_clean()
        assert cluster.durable_outcome("n0", spec.txn_id) == "commit"
        # n1 learned the outcome from its parent instead of presuming
        # abort.  PN forces the subordinate commit record; under PC the
        # record is deliberately unforced — absence means commit there.
        durable = cluster.durable_outcome("n1", spec.txn_id)
        if config is PRESUMED_NOTHING:
            assert durable == "commit"
        else:
            assert durable in ("commit", None)
        assert durable != "abort"

    def test_crash_before_vote_still_aborts_with_parent(self):
        cluster, checker, spec = self._chain(PRESUMED_NOTHING)
        # Crash at 6.0: after the initiation force (~5.1) but before
        # n1's own vote (~7.2).  The parent times out and aborts; the
        # inquiry resolves n1 the same way.
        cluster.crash_at("n1", 6.0)
        cluster.restart_at("n1", 11.0)
        cluster.start_transaction(spec)
        cluster.run_until(600.0)
        checker.check_atomicity(spec.txn_id)
        checker.assert_clean()

    def test_read_only_participant_acks_recovery_outcome(self):
        """A dropped-out read-only participant must answer a recovery
        OUTCOME so the sender's retry loop terminates (and that ack is
        exempt from checker rule R5 — nothing to make durable)."""
        cluster, checker, spec = self._chain(PRESUMED_NOTHING)
        cluster.crash_at("n1", 8.0)
        cluster.restart_at("n1", 13.0)
        cluster.start_transaction(spec)
        cluster.run_until(600.0)
        checker.assert_clean()
        context = cluster.node("n1").ctx(spec.txn_id)
        assert context is None or not context.acks_pending
        # The exchange settled in a handful of messages; an unacked
        # outcome would have retried every 15s out to the 600s horizon.
        assert cluster.metrics.recovery_flows() < 10
