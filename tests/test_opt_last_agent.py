"""The last-agent optimization (§4)."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT, PRESUMED_NOTHING
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.core.states import TxnState
from repro.lrm.operations import read_op, write_op
from repro.net.latency import SatelliteLink
from repro.net.message import MessageType

from tests.conftest import updating_spec


def last_agent_cluster(config=None, **kwargs):
    config = (config or PRESUMED_ABORT).with_options(last_agent=True)
    return Cluster(config, nodes=["coord", "agent"], **kwargs)


def last_agent_spec():
    spec = updating_spec("coord", ["agent"])
    spec.participant("agent").last_agent = True
    return spec


def test_two_flows_instead_of_four():
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed
    assert cluster.metrics.commit_flows(txn=spec.txn_id) == 2


def test_decision_made_by_the_agent():
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    cluster.run_transaction(spec)
    # The agent logs COMMITTED before the coordinator does.
    agent_commit = next(
        r for r in cluster.node("agent").log.all_records()
        if r.record_type.value == "committed")
    coord_commit = next(
        r for r in cluster.node("coord").log.all_records()
        if r.record_type.value == "committed")
    assert agent_commit.written_at < coord_commit.written_at


def test_initiator_forces_prepared_before_delegating():
    """§4: 'the last-agent optimization requires that the initiator
    force-write a prepared record before it sends its YES vote' — the
    possible extra forced write Table 1 lists."""
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    cluster.run_transaction(spec)
    coord_records = cluster.node("coord").log.all_records()
    prepared = [r for r in coord_records
                if r.record_type.value == "prepared"]
    assert len(prepared) == 1 and prepared[0].forced


def test_read_only_initiator_skips_prepared_force():
    """§4: 'the initiator can vote read only to the last agent without
    having to force-write a prepared log record.'"""
    cluster = last_agent_cluster()
    spec = flat_tree("coord", ["agent"])
    spec.participant("coord").ops.append(read_op("x"))
    spec.participant("agent").ops.append(write_op("k", 1))
    spec.participant("agent").last_agent = True
    handle = cluster.run_transaction(spec)
    assert handle.committed
    assert cluster.metrics.total_log_writes(node="coord",
                                            txn=spec.txn_id) == 0
    votes = cluster.metrics.flows.total(
        msg_type=MessageType.VOTE_READ_ONLY.value, txn=spec.txn_id)
    assert votes == 1


def test_agent_veto_aborts_the_delegator():
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    spec.participant("agent").veto = True
    handle = cluster.run_transaction(spec)
    assert handle.aborted
    assert cluster.value("coord", "key-coord") is None


def test_implied_ack_lets_agent_forget():
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    cluster.run_transaction(spec)
    agent_ctx = cluster.node("agent").ctx(spec.txn_id)
    assert agent_ctx.awaiting_implied_ack
    assert agent_ctx.state is TxnState.COMMITTED
    # The coordinator's next data message is the implied ack.
    cluster.send_application_data("coord", "agent")
    assert agent_ctx.state is TxnState.FORGOTTEN
    ends = [r for r in cluster.node("agent").log.all_records()
            if r.record_type.value == "end"]
    assert len(ends) == 1


def test_no_explicit_ack_flows():
    cluster = last_agent_cluster()
    spec = last_agent_spec()
    cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    acks = cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id)
    assert acks == 0


def test_other_children_prepared_before_delegation():
    """§4: all other subordinates must vote YES before the coordinator
    sends its vote to the last agent."""
    cluster = Cluster(PRESUMED_ABORT.with_options(last_agent=True),
                      nodes=["coord", "near", "agent"])
    spec = updating_spec("coord", ["near", "agent"])
    spec.participant("agent").last_agent = True
    order = []
    cluster.network.on_send.append(
        lambda m: order.append((m.msg_type, m.dst)))
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed
    near_vote = order.index((MessageType.VOTE_YES, "coord"))
    delegation = order.index((MessageType.VOTE_YES, "agent"))
    assert near_vote < delegation


def test_satellite_link_benefit():
    """§4: with a faraway partner, last agent reduces the slow link to
    a single round trip and beats parallel prepare."""
    latency = SatelliteLink("agent", slow_delay=50.0, fast_delay=1.0)

    plain = Cluster(PRESUMED_ABORT, nodes=["coord", "near", "agent"],
                    latency=latency)
    spec1 = updating_spec("coord", ["near", "agent"])
    h1 = plain.run_transaction(spec1)

    optimized = Cluster(PRESUMED_ABORT.with_options(last_agent=True),
                        nodes=["coord", "near", "agent"], latency=latency)
    spec2 = updating_spec("coord", ["near", "agent"])
    spec2.participant("agent").last_agent = True
    h2 = optimized.run_transaction(spec2)
    optimized.finalize_implied_acks()

    assert h2.latency < h1.latency


def test_chained_delegation():
    """§4: 'each last agent may choose one of its subordinates to be a
    last agent' — a delegation chain."""
    cluster = Cluster(PRESUMED_ABORT.with_options(last_agent=True),
                      nodes=["root", "l1", "l2"])
    spec = TransactionSpec(participants=[
        ParticipantSpec(node="root", ops=[write_op("r", 1)]),
        ParticipantSpec(node="l1", parent="root", ops=[write_op("a", 1)],
                        last_agent=True),
        ParticipantSpec(node="l2", parent="l1", ops=[write_op("b", 1)],
                        last_agent=True)])
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed
    # 2 flows per delegation edge.
    assert cluster.metrics.commit_flows(txn=spec.txn_id) == 4
    # The final agent decided first.
    commits = {}
    for name in ("root", "l1", "l2"):
        for record in cluster.node(name).log.all_records():
            if record.record_type.value == "committed":
                commits[name] = record.written_at
    assert commits["l2"] < commits["l1"] < commits["root"]


def test_leave_out_offer_rides_the_decision():
    """A last agent cannot offer OK-to-leave-out on a YES vote (it
    never sends one); the offer rides its COMMIT decision instead."""
    config = PRESUMED_ABORT.with_options(last_agent=True, leave_out=True)
    cluster = Cluster(config, nodes=["coord", "agent"])
    first = updating_spec("coord", ["agent"])
    first.participant("agent").last_agent = True
    first.participant("agent").ok_to_leave_out = True
    cluster.run_transaction(first)
    cluster.finalize_implied_acks()
    # Next transaction does no agent work: the agent is left out.
    second = flat_tree("coord", [])
    second.participant("coord").ops.append(write_op("solo", 1))
    handle = cluster.run_transaction(second)
    assert handle.committed
    assert cluster.metrics.commit_flows(src="agent",
                                        txn=second.txn_id) == 0
    assert cluster.metrics.commit_flows(txn=second.txn_id) == 0


def test_last_agent_with_reliable_vote_combo():
    """Last agent and vote-reliable compose: two flows, no acks, and
    the delegator's implied ack still closes the agent's context."""
    config = PRESUMED_ABORT.with_options(last_agent=True,
                                         vote_reliable=True)
    cluster = Cluster(config, nodes=["coord", "agent"],
                      reliable_nodes=["coord", "agent"])
    spec = last_agent_spec()
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed
    assert cluster.metrics.commit_flows(txn=spec.txn_id) == 2
    assert cluster.metrics.flows.total(msg_type=MessageType.ACK.value,
                                       txn=spec.txn_id) == 0


def test_pn_last_agent_keeps_commit_pending():
    """§4: last agent is most useful with PN since the coordinator
    logs before contacting any subordinate anyway."""
    cluster = last_agent_cluster(PRESUMED_NOTHING)
    spec = last_agent_spec()
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed
    types = cluster.metrics.log_writes.group_by(
        "record_type", node="coord", txn=spec.txn_id)
    assert types.get("commit-pending") == 1
    assert types.get("prepared") == 1
