"""The live transport: wire codecs, file WAL, live clock, twin oracle.

Socket-using tests carry the ``live`` marker and skip automatically on
sandboxes without loopback networking (see conftest).  Codec, storage,
clock and schedule-replay tests are pure and always run.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT, PRESUMED_COMMIT
from repro.core.spec import flat_tree
from repro.lrm.operations import read_op, write_op
from repro.net.message import Message, MessageType
from repro.obs.diff import diff_journals
from repro.obs.journal import JournalRecorder
from repro.transport import (FileStableStorage, LiveCluster, LiveClock,
                             WalCorruptionError, load_records,
                             run_twin_check, scan_wal, serve, twin_specs)
from repro.transport.clock import ActivityTracker
from repro.transport.twin import (_run_replay, delivery_schedule)
from repro.transport.wire import (encode_frame, message_from_wire,
                                  message_to_wire, read_frame,
                                  record_from_wire, record_to_wire,
                                  spec_from_wire, spec_to_wire)
from repro.log.records import LogRecord, LogRecordType


# ----------------------------------------------------------------------
# Wire codecs (pure)
# ----------------------------------------------------------------------
class TestWireCodecs:
    def test_spec_round_trip(self):
        spec = flat_tree("n0", ["n1", "n2"], txn_id="t9")
        spec.participants[1].ops.append(write_op("k1", 42))
        spec.participants[2].ops.append(read_op("k2"))
        spec.participants[2].veto = True
        restored = spec_from_wire(json.loads(json.dumps(spec_to_wire(spec))))
        assert restored.txn_id == "t9"
        assert [p.node for p in restored.participants] == ["n0", "n1", "n2"]
        assert restored.participants[1].ops == spec.participants[1].ops
        assert restored.participants[2].veto

    def test_message_round_trip_with_nested_spec(self):
        spec = flat_tree("n0", ["n1"], txn_id="t1")
        message = Message(msg_type=MessageType.DATA, txn_id="t1",
                          src="n0", dst="n1",
                          flags={"enroll": True},
                          payload={"spec": spec,
                                   "participant": spec.participants[1]})
        data = json.loads(json.dumps(message_to_wire(message)))
        restored = message_from_wire(data)
        assert restored.msg_type is MessageType.DATA
        assert restored.msg_id == message.msg_id
        assert restored.payload["spec"].txn_id == "t1"
        assert restored.payload["participant"].node == "n1"

    def test_message_round_trip_with_piggyback(self):
        inner = Message(msg_type=MessageType.ACK, txn_id="t1",
                        src="n1", dst="n0")
        outer = Message(msg_type=MessageType.DATA, txn_id="t2",
                        src="n1", dst="n0",
                        payload={"piggyback": [inner]})
        restored = message_from_wire(
            json.loads(json.dumps(message_to_wire(outer))))
        carried = restored.payload["piggyback"]
        assert len(carried) == 1
        assert carried[0].msg_type is MessageType.ACK
        assert carried[0].txn_id == "t1"

    def test_record_round_trip(self):
        record = LogRecord(lsn=7, txn_id="t1",
                           record_type=LogRecordType.COMMITTED,
                           node="n0", forced=True, written_at=1.25,
                           payload={"children": ["n1"]})
        restored = record_from_wire(
            json.loads(json.dumps(record_to_wire(record))))
        assert restored.lsn == 7
        assert restored.record_type is LogRecordType.COMMITTED
        assert restored.forced
        assert restored.payload == {"children": ["n1"]}

    def test_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"kind": "ping", "n": 1}))
            reader.feed_data(encode_frame({"kind": "pong"}))
            reader.feed_eof()
            first = await read_frame(reader)
            second = await read_frame(reader)
            third = await read_frame(reader)
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert first == {"kind": "ping", "n": 1}
        assert second == {"kind": "pong"}
        assert third is None  # clean EOF


# ----------------------------------------------------------------------
# File-backed stable storage (pure, tmp_path)
# ----------------------------------------------------------------------
class TestFileStableStorage:
    def make_record(self, lsn, forced=True):
        return LogRecord(lsn=lsn, txn_id="t1",
                         record_type=LogRecordType.PREPARED, node="n0",
                         forced=forced, written_at=0.0, payload={})

    def test_append_fsyncs_once_per_batch(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0.wal")
        storage.append([self.make_record(1), self.make_record(2)])
        storage.append([self.make_record(3)])
        assert storage.fsync_count == 2
        assert storage.durable_lsn == 3
        storage.close()

    def test_empty_append_is_not_an_io(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0.wal")
        storage.append([])
        assert storage.fsync_count == 0
        storage.close()

    def test_load_round_trip(self, tmp_path):
        path = tmp_path / "n0.wal"
        storage = FileStableStorage(path)
        storage.append([self.make_record(1), self.make_record(2)])
        storage.close()
        records = load_records(path)
        assert [r.lsn for r in records] == [1, 2]
        assert records[0].record_type is LogRecordType.PREPARED

    def test_out_of_order_append_rejected(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0.wal")
        storage.append([self.make_record(2)])
        with pytest.raises(ValueError):
            storage.append([self.make_record(1)])
        storage.close()

    # -- compaction ----------------------------------------------------
    def make_checkpoint(self, lsn):
        return LogRecord(lsn=lsn, txn_id="-",
                         record_type=LogRecordType.CHECKPOINT, node="n0",
                         forced=True, written_at=0.0, payload={"live": []})

    def test_compact_drops_prefix_before_last_checkpoint(self, tmp_path):
        path = tmp_path / "n0.wal"
        storage = FileStableStorage(path)
        storage.append([self.make_record(1), self.make_record(2)])
        storage.append([self.make_checkpoint(3)])
        storage.append([self.make_record(4)])
        forces = storage.fsync_count
        assert storage.compact()
        # Compaction is maintenance I/O: log-force accounting untouched.
        assert storage.fsync_count == forces
        assert storage.maintenance_fsyncs == 2
        assert [r.lsn for r in storage.records()] == [3, 4]
        assert [r.lsn for r in load_records(path)] == [3, 4]
        # Appends keep working through the rename swap.
        storage.append([self.make_record(5)])
        storage.close()
        assert [r.lsn for r in load_records(path)] == [3, 4, 5]

    def test_compact_keeps_only_the_last_checkpoint(self, tmp_path):
        path = tmp_path / "n0.wal"
        storage = FileStableStorage(path)
        storage.append([self.make_record(1)])
        storage.append([self.make_checkpoint(2)])
        storage.append([self.make_record(3)])
        storage.append([self.make_checkpoint(4)])
        assert storage.compact()
        storage.close()
        records = load_records(path)
        assert [r.lsn for r in records] == [4]
        assert records[0].record_type is LogRecordType.CHECKPOINT

    def test_compact_without_checkpoint_is_refused(self, tmp_path):
        path = tmp_path / "n0.wal"
        storage = FileStableStorage(path)
        storage.append([self.make_record(1)])
        assert not storage.compact()
        assert storage.maintenance_fsyncs == 0
        storage.close()
        assert [r.lsn for r in load_records(path)] == [1]

    def test_compact_with_empty_prefix_is_refused(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0.wal")
        storage.append([self.make_checkpoint(1)])
        storage.append([self.make_record(2)])
        assert not storage.compact()   # nothing before it to drop
        assert storage.maintenance_fsyncs == 0
        storage.close()

    # -- torn-tail recovery --------------------------------------------
    def write_three(self, path):
        storage = FileStableStorage(path)
        for lsn in (1, 2, 3):
            storage.append([self.make_record(lsn)])
        storage.close()
        return path.read_bytes()

    def test_torn_tail_recovery_at_every_byte_offset(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        first, second, _third, trailer = data.split(b"\n")
        assert trailer == b""
        boundary = len(first) + len(second) + 2   # start of record 3
        torn_path = tmp_path / "torn.wal"
        # Every strict prefix of the final record (excluding the clean
        # boundary and the complete-but-newline-less form) is a torn
        # tail: recovery must drop exactly that record and truncate.
        for cut in range(boundary + 1, len(data) - 1):
            torn_path.write_bytes(data[:cut])
            recovered = FileStableStorage(torn_path, recover=True)
            assert recovered.torn_tail is not None, cut
            assert recovered.recovered_count == 2, cut
            assert [r.lsn for r in recovered.records()] == [1, 2]
            assert torn_path.read_bytes() == data[:boundary]
            # Appends resume cleanly after the dropped record.
            recovered.append([self.make_record(3)])
            recovered.close()
            assert [r.lsn for r in load_records(torn_path)] == [1, 2, 3]

    def test_truncation_at_a_record_boundary_is_clean(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        first, second, _third, _trailer = data.split(b"\n")
        boundary = len(first) + len(second) + 2
        path = tmp_path / "cut.wal"
        path.write_bytes(data[:boundary])
        recovered = FileStableStorage(path, recover=True)
        assert recovered.torn_tail is None
        assert recovered.recovered_count == 2
        recovered.close()

    def test_missing_final_newline_is_repaired_not_dropped(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        path = tmp_path / "cut.wal"
        path.write_bytes(data[:-1])   # record 3 complete, newline torn
        recovered = FileStableStorage(path, recover=True)
        assert recovered.torn_tail is None
        assert recovered.recovered_count == 3
        recovered.append([self.make_record(4)])
        recovered.close()
        assert [r.lsn for r in load_records(path)] == [1, 2, 3, 4]

    def test_mid_file_corruption_raises(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        _first, second, _third, _trailer = data.split(b"\n")
        path = tmp_path / "bad.wal"
        path.write_bytes(b'{"garbage\n' + second + b"\n")
        with pytest.raises(WalCorruptionError):
            scan_wal(str(path))
        with pytest.raises(WalCorruptionError):
            FileStableStorage(path, recover=True)

    def test_scan_wal_reports_the_valid_length(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        first, second, _third, _trailer = data.split(b"\n")
        boundary = len(first) + len(second) + 2
        path = tmp_path / "torn.wal"
        path.write_bytes(data[:boundary + 4])
        records, note, valid_len = scan_wal(str(path))
        assert [r.lsn for r in records] == [1, 2]
        assert note is not None and "torn final WAL line 2" in note
        assert valid_len == boundary

    def test_load_records_strict_unless_torn_tail_allowed(self, tmp_path):
        data = self.write_three(tmp_path / "n0.wal")
        path = tmp_path / "torn.wal"
        path.write_bytes(data[:-3])   # tear into record 3
        with pytest.raises(WalCorruptionError):
            load_records(path)
        assert [r.lsn for r in
                load_records(path, allow_torn_tail=True)] == [1, 2]


# ----------------------------------------------------------------------
# Live clock (pure: uses asyncio, no sockets)
# ----------------------------------------------------------------------
class TestLiveClock:
    def test_schedule_order_and_activity(self):
        async def scenario():
            tracker = ActivityTracker()
            clock = LiveClock(seed=3, activity=tracker)
            order = []
            clock.schedule(0.02, lambda: order.append("late"))
            clock.schedule(0.0, lambda: order.append("soon"))
            assert tracker.count == 2
            await tracker.wait_idle()
            return order, tracker.count

        order, remaining = asyncio.run(scenario())
        assert order == ["soon", "late"]
        assert remaining == 0

    def test_timers_are_not_tracked_and_cancel(self):
        async def scenario():
            tracker = ActivityTracker()
            clock = LiveClock(activity=tracker)
            fired = []
            timer = clock.timer(30.0, lambda: fired.append(True))
            assert tracker.count == 0  # armed timers never block idle
            assert timer.active
            assert timer.cancel()
            assert not timer.active and not timer.fired
            return fired

        assert asyncio.run(scenario()) == []

    def test_cancelled_callback_releases_activity(self):
        async def scenario():
            tracker = ActivityTracker()
            clock = LiveClock(activity=tracker)
            call = clock.schedule(5.0, lambda: None)
            assert tracker.count == 1
            call.cancel()
            return tracker.count

        assert asyncio.run(scenario()) == 0

    def test_negative_delay_rejected(self):
        async def scenario():
            clock = LiveClock()
            with pytest.raises(ValueError):
                clock.schedule(-0.1, lambda: None)

        asyncio.run(scenario())

    def test_named_streams_are_deterministic(self):
        async def scenario():
            a, b = LiveClock(seed=5), LiveClock(seed=5)
            return (a.stream("x").randint(0, 10 ** 9),
                    b.stream("x").randint(0, 10 ** 9))

        first, second = asyncio.run(scenario())
        assert first == second


# ----------------------------------------------------------------------
# Schedule replay (pure: sim vs sim)
# ----------------------------------------------------------------------
class TestScheduledReplay:
    def test_replay_of_sim_schedule_is_equivalent(self):
        """A plain sim run's delivery schedule, replayed through the
        ScheduledNetwork, reproduces a causally equivalent journal with
        identical cost triples — the sim half of the twin oracle."""
        nodes = ["n0", "n1", "n2"]
        cluster = Cluster(PRESUMED_COMMIT, nodes=nodes, seed=11)
        recorder = JournalRecorder().attach(cluster)
        costs = {}
        for spec in twin_specs(11, 4, nodes):
            cluster.run_transaction(spec)
            summary = cluster.metrics.cost_summary(spec.txn_id)
            costs[spec.txn_id] = (summary.flows, summary.log_writes,
                                  summary.forced_writes)
        recorder.detach()
        reference = recorder.entries()

        replay = _run_replay(PRESUMED_COMMIT, 11, 4, nodes,
                             delivery_schedule(reference))
        assert replay.unmatched == []
        assert diff_journals(reference, replay.entries,
                             ignore_time=True) is None
        assert replay.costs == costs


# ----------------------------------------------------------------------
# Live socket tests
# ----------------------------------------------------------------------
@pytest.mark.live
class TestLiveCluster:
    def test_live_commit_over_tcp(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["a", "b", "c"],
                                  log_dir=str(tmp_path))
            await cluster.start()
            spec = flat_tree("a", ["b", "c"], txn_id="t0")
            for participant in spec.participants:
                participant.ops.append(
                    write_op(f"k-{participant.node}", 7))
            try:
                handle = await cluster.run_transaction(spec)
            finally:
                await cluster.stop()
            outcomes = {n: cluster.recorded_outcome(n, "t0")
                        for n in cluster.nodes}
            values = {n: cluster.nodes[n].resource_manager().store.get(
                f"k-{n}") for n in cluster.nodes}
            return handle, outcomes, values, cluster.fsync_counts()

        handle, outcomes, values, fsyncs = asyncio.run(scenario())
        assert handle.outcome == "commit"
        assert outcomes == {"a": "commit", "b": "commit", "c": "commit"}
        assert values == {"a": 7, "b": 7, "c": 7}
        # The coordinator forced at least its commit record for real.
        assert fsyncs["a"] >= 1

    def test_wal_survives_on_disk(self, tmp_path):
        async def scenario():
            cluster = LiveCluster(PRESUMED_ABORT, nodes=["a", "b"],
                                  log_dir=str(tmp_path))
            await cluster.start()
            spec = flat_tree("a", ["b"], txn_id="t0")
            spec.participants[1].ops.append(write_op("k", 1))
            try:
                await cluster.run_transaction(spec)
            finally:
                await cluster.stop()

        asyncio.run(scenario())
        records = load_records(tmp_path / "b.wal")
        assert any(r.record_type is LogRecordType.PREPARED
                   for r in records)


@pytest.mark.live
class TestTwinOracle:
    def test_twin_clean_for_presumed_abort(self, tmp_path):
        report = run_twin_check("presumed_abort", seed=11, txns=3,
                                log_dir=str(tmp_path))
        assert report.clean, report.describe()
        assert report.live_entries == report.sim_entries > 0
        # The artifacts the CLI diff workflow uses were written.
        assert (tmp_path / "presumed_abort-live.jsonl").exists()
        assert (tmp_path / "presumed_abort-sim.jsonl").exists()

    def test_twin_clean_for_basic(self):
        report = run_twin_check("basic", seed=7, txns=2)
        assert report.clean, report.describe()


@pytest.mark.live
class TestServe:
    def test_begin_frame_runs_a_transaction(self):
        async def scenario():
            addresses = {}
            up = asyncio.Event()

            def ready(cluster, addrs):
                addresses.update(addrs)
                up.set()

            server = asyncio.ensure_future(
                serve(PRESUMED_ABORT, ["n0", "n1"], ready=ready))
            await asyncio.wait_for(up.wait(), 10)
            host, port = addresses["n0"]
            reader, writer = await asyncio.open_connection(host, port)
            spec = flat_tree("n0", ["n1"], txn_id="cli-1")
            spec.participants[1].ops.append(write_op("k", 5))
            writer.write(encode_frame({"kind": "ping"}))
            writer.write(encode_frame({"kind": "begin",
                                       "spec": spec_to_wire(spec)}))
            pong = await asyncio.wait_for(read_frame(reader), 10)
            outcome = await asyncio.wait_for(read_frame(reader), 10)
            writer.close()
            server.cancel()
            try:
                await server
            except asyncio.CancelledError:
                pass
            return pong, outcome

        pong, outcome = asyncio.run(scenario())
        assert pong["kind"] == "pong"
        assert outcome == {"kind": "outcome", "txn": "cli-1",
                           "outcome": "commit", "outcome_pending": False}
