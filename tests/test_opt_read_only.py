"""The read-only optimization (§4): savings, cascaded rule, early lock
release, and the serializability hazard the paper warns about."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import BASIC_2PC, PRESUMED_ABORT, PRESUMED_NOTHING
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.core.states import TxnState
from repro.lrm.operations import read_op, write_op

from tests.conftest import updating_spec


def spec_with_readers(root, updaters, readers):
    spec = flat_tree(root, updaters + readers)
    spec.participant(root).ops.append(write_op(f"key-{root}", 1))
    for name in updaters:
        spec.participant(name).ops.append(write_op(f"key-{name}", 1))
    for name in readers:
        spec.participant(name).ops.append(read_op("catalogue"))
    return spec


def test_reader_excluded_from_phase_two():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "u", "r"])
    spec = spec_with_readers("c", ["u"], ["r"])
    handle = cluster.run_transaction(spec)
    assert handle.committed
    # The reader sent exactly one flow (its read-only vote) and
    # received exactly one (the prepare).
    assert cluster.metrics.commit_flows(src="r", txn=spec.txn_id) == 1
    assert cluster.metrics.total_log_writes(node="r", txn=spec.txn_id) == 0


def test_savings_are_2m_flows_and_2m_forced():
    n, m = 6, 3
    nodes = [f"n{i}" for i in range(n)]
    base = Cluster(PRESUMED_ABORT, nodes=nodes)
    base_spec = updating_spec("n0", nodes[1:])
    base.run_transaction(base_spec)

    optimized = Cluster(PRESUMED_ABORT, nodes=nodes)
    opt_spec = spec_with_readers("n0", nodes[1:n - m], nodes[n - m:])
    optimized.run_transaction(opt_spec)

    assert (base.metrics.commit_flows(txn=base_spec.txn_id)
            - optimized.metrics.commit_flows(txn=opt_spec.txn_id)) == 2 * m
    assert (base.metrics.forced_log_writes(txn=base_spec.txn_id)
            - optimized.metrics.forced_log_writes(txn=opt_spec.txn_id)) \
        == 2 * m


def test_reader_releases_locks_at_prepare_time():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "u", "r"])
    spec = spec_with_readers("c", ["u"], ["r"])
    released_at = {}
    original = cluster.node("r").default_rm.locks.release_all

    def spy(txn_id):
        released_at[txn_id] = cluster.simulator.now
        original(txn_id)

    cluster.node("r").default_rm.locks.release_all = spy
    handle = cluster.run_transaction(spec)
    assert spec.txn_id in released_at
    assert released_at[spec.txn_id] < handle.completed_at


def test_reader_does_not_learn_outcome():
    """Table 1's disadvantage: the read-only voter never hears whether
    the transaction committed."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "u", "r"])
    spec = spec_with_readers("c", ["u"], ["r"])
    cluster.run_transaction(spec)
    context = cluster.node("r").ctx(spec.txn_id)
    assert context.state is TxnState.READ_ONLY_DONE
    assert context.outcome is None


def test_cascaded_votes_read_only_only_if_whole_subtree_is():
    """§4: a cascaded coordinator may vote read-only iff ALL its
    subordinates voted read-only."""
    # Case 1: whole subtree read-only -> intermediate votes read-only.
    cluster = Cluster(PRESUMED_ABORT, nodes=["root", "mid", "leaf"])
    spec = TransactionSpec(participants=[
        ParticipantSpec(node="root", ops=[write_op("k", 1)]),
        ParticipantSpec(node="mid", parent="root", ops=[read_op("a")]),
        ParticipantSpec(node="leaf", parent="mid", ops=[read_op("b")])])
    cluster.run_transaction(spec)
    assert cluster.node("mid").ctx(spec.txn_id).state \
        is TxnState.READ_ONLY_DONE
    assert cluster.metrics.total_log_writes(node="mid",
                                            txn=spec.txn_id) == 0

    # Case 2: a leaf updates -> the intermediate must vote YES and log.
    cluster2 = Cluster(PRESUMED_ABORT, nodes=["root", "mid", "leaf"])
    spec2 = TransactionSpec(participants=[
        ParticipantSpec(node="root", ops=[write_op("k", 1)]),
        ParticipantSpec(node="mid", parent="root", ops=[read_op("a")]),
        ParticipantSpec(node="leaf", parent="mid",
                        ops=[write_op("b", 2)])])
    cluster2.run_transaction(spec2)
    assert cluster2.node("mid").ctx(spec2.txn_id).state \
        is TxnState.FORGOTTEN
    assert cluster2.metrics.forced_log_writes(node="mid",
                                              txn=spec2.txn_id) == 2


def test_pn_still_logs_commit_pending_when_all_read_only():
    """§4: 'PN still has the coordinator log a commit-pending record,
    but the subordinate performs no logging.'"""
    cluster = Cluster(PRESUMED_NOTHING, nodes=["c", "r1", "r2"])
    spec = flat_tree("c", ["r1", "r2"])
    for participant in spec.participants[1:]:
        participant.ops.append(read_op("k"))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    types = cluster.metrics.log_writes.group_by("record_type",
                                                node="c", txn=spec.txn_id)
    assert types.get("commit-pending") == 1
    assert cluster.metrics.total_log_writes(node="r1",
                                            txn=spec.txn_id) == 0


def test_baseline_treats_readers_as_full_participants():
    """With the optimization off (the Section 2 baseline), a read-only
    participant votes YES, logs and holds locks to the end."""
    cluster = Cluster(BASIC_2PC, nodes=["c", "r"])
    spec = flat_tree("c", ["r"])
    spec.participant("c").ops.append(write_op("k", 1))
    spec.participant("r").ops.append(read_op("x"))
    cluster.run_transaction(spec)
    assert cluster.metrics.forced_log_writes(node="r",
                                             txn=spec.txn_id) == 2
    assert cluster.metrics.commit_flows(src="r", txn=spec.txn_id) == 2


def test_serialization_hazard_demo():
    """The paper's §4 hazard: Pa votes read-only and releases its locks
    while Pb is still working; an unrelated transaction slips in and
    changes the data Pa read, violating two-phase locking across the
    distributed transaction."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "pa", "pb"])
    cluster.node("pa").default_rm.store.redo_write("shared", "v0")

    # Pb is slow: its work finishes long after Pa voted read-only.
    spec = TransactionSpec(participants=[
        ParticipantSpec(node="coord", ops=[write_op("c", 1)]),
        ParticipantSpec(node="pa", ops=[read_op("shared")], parent="coord"),
        ParticipantSpec(node="pb", ops=[write_op("b", 1)], parent="coord"),
    ], await_work_done=False)
    handle = cluster.start_transaction(spec)

    observed = {}

    def intruder():
        # An unrelated transaction writes the key Pa read, while the
        # distributed transaction is still in flight at Pb.
        rm = cluster.node("pa").default_rm
        if not rm.locks.holds(spec.txn_id, "shared"):
            rm.store.redo_write("shared", "intruder!")
            observed["intruded"] = True

    cluster.simulator.at(30.0, intruder)

    # Hold Pb's vote hostage until after the intruder ran.
    pb_rm = cluster.node("pb").default_rm
    cluster.node("pb").contexts  # force enrollment first
    cluster.run_until(25.0)
    cluster.simulator.at(40.0, lambda: None)
    cluster.run_until(100.0)
    assert handle.done and handle.committed
    assert observed.get("intruded"), \
        "Pa's early lock release let an unrelated write slip in"
    assert cluster.value("pa", "shared") == "intruder!"
    del pb_rm
