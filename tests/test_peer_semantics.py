"""Peer-to-peer semantics: independent initiators, acknowledgment
timing (early vs late), and group commit system effects."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT, PRESUMED_NOTHING
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.log.group_commit import GroupCommitPolicy
from repro.lrm.operations import write_op
from repro.net.message import MessageType

from tests.conftest import updating_spec


class TestTwoInitiators:
    def test_second_initiator_aborts_the_transaction(self):
        """§3 (PN): 'it is an error for two participants to initiate
        commit processing independently for the same transaction ...
        if this occurs, the transaction aborts.'"""
        cluster = Cluster(PRESUMED_ABORT, nodes=["p", "q"])
        spec = TransactionSpec(txn_id="shared", participants=[
            ParticipantSpec(node="p", ops=[write_op("a", 1)]),
            ParticipantSpec(node="q", parent="p", ops=[write_op("b", 1)])])
        handle = cluster.start_transaction(spec)

        def q_initiates():
            q = cluster.node("q")
            context = q.ctx("shared")
            if context is not None:
                context.parent = None   # q believes it owns the commit
                q.initiate_commit(context)

        cluster.simulator.at(1.5, q_initiates)
        cluster.run_until(100.0)
        assert handle.aborted
        assert cluster.value("p", "a") is None
        assert cluster.value("q", "b") is None

    def test_vote_no_sent_to_conflicting_initiator(self):
        cluster = Cluster(PRESUMED_ABORT, nodes=["p", "q"])
        spec = TransactionSpec(txn_id="dup", participants=[
            ParticipantSpec(node="p", ops=[write_op("a", 1)]),
            ParticipantSpec(node="q", parent="p", ops=[write_op("b", 1)])])
        cluster.start_transaction(spec)
        no_votes = []
        cluster.network.on_send.append(
            lambda m: no_votes.append(m)
            if m.msg_type is MessageType.VOTE_NO else None)

        def q_initiates():
            context = cluster.node("q").ctx("dup")
            if context is not None:
                context.parent = None
                cluster.node("q").initiate_commit(context)

        cluster.simulator.at(1.5, q_initiates)
        cluster.run_until(100.0)
        assert any(v.src == "q" and v.dst == "p" for v in no_votes) or \
            any(v.src == "p" and v.dst == "q" for v in no_votes)


class TestAckTiming:
    def chain_spec(self):
        spec = TransactionSpec(participants=[
            ParticipantSpec(node="root", ops=[write_op("r", 1)]),
            ParticipantSpec(node="mid", parent="root",
                            ops=[write_op("m", 1)]),
            ParticipantSpec(node="leaf", parent="mid",
                            ops=[write_op("l", 1)])])
        return spec

    def run_with(self, config):
        cluster = Cluster(config, nodes=["root", "mid", "leaf"])
        spec = self.chain_spec()
        order = []
        cluster.network.on_send.append(
            lambda m: order.append((m.msg_type, m.src, m.dst)))
        handle = cluster.run_transaction(spec)
        return cluster, handle, order

    def test_late_ack_waits_for_subtree(self):
        __, handle, order = self.run_with(PRESUMED_ABORT)
        mid_up = order.index((MessageType.ACK, "mid", "root"))
        leaf_up = order.index((MessageType.ACK, "leaf", "mid"))
        assert leaf_up < mid_up

    def test_early_ack_precedes_subtree(self):
        __, handle, order = self.run_with(
            PRESUMED_ABORT.with_options(early_ack=True))
        mid_up = order.index((MessageType.ACK, "mid", "root"))
        leaf_up = order.index((MessageType.ACK, "leaf", "mid"))
        assert mid_up < leaf_up

    def test_early_ack_completes_root_sooner(self):
        __, late_handle, __o = self.run_with(PRESUMED_ABORT)
        __, early_handle, __o2 = self.run_with(
            PRESUMED_ABORT.with_options(early_ack=True))
        assert early_handle.latency < late_handle.latency

    def test_flow_counts_identical_either_way(self):
        late_cluster, late_handle, __ = self.run_with(PRESUMED_ABORT)
        early_cluster, early_handle, __2 = self.run_with(
            PRESUMED_ABORT.with_options(early_ack=True))
        assert late_cluster.metrics.commit_flows() == \
            early_cluster.metrics.commit_flows()


class TestGroupCommitIntegration:
    def run_concurrent(self, group_size, n_txns=8, stagger=0.0):
        config = PRESUMED_ABORT.with_options(
            group_commit=GroupCommitPolicy(group_size=group_size,
                                           timeout=5.0))
        cluster = Cluster(config, nodes=["c", "s"])
        handles = []

        def start(i):
            spec = TransactionSpec(participants=[
                ParticipantSpec(node="c", ops=[write_op(f"c{i}", i)]),
                ParticipantSpec(node="s", parent="c",
                                ops=[write_op(f"s{i}", i)])])
            handles.append(cluster.start_transaction(spec))

        for i in range(n_txns):
            cluster.simulator.at(i * stagger, lambda i=i: start(i))
        cluster.run()
        assert all(h.committed for h in handles)
        return cluster

    def test_fewer_physical_ios_with_batching(self):
        immediate = self.run_concurrent(group_size=1)
        batched = self.run_concurrent(group_size=4)
        assert batched.metrics.physical_ios() < \
            immediate.metrics.physical_ios()

    def test_longer_lock_holds_with_batching(self):
        """Table 1's disadvantage: individual transactions hold locks
        longer while their forces wait for the group to fill.  The
        effect needs staggered arrivals (lockstep groups fill at once)."""
        immediate = self.run_concurrent(group_size=1, stagger=1.5)
        batched = self.run_concurrent(group_size=4, stagger=1.5)
        assert batched.metrics.mean_lock_hold() > \
            immediate.metrics.mean_lock_hold()

    def test_correctness_unaffected_by_batching(self):
        cluster = self.run_concurrent(group_size=4)
        for i in range(8):
            assert cluster.value("s", f"s{i}") == i
