"""Unit tests for the named random streams."""

import pytest

from repro.sim.randomness import RandomStream, StreamFactory


def test_same_seed_same_sequence():
    a = RandomStream(123)
    b = RandomStream(123)
    assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]


def test_uniform_bounds():
    stream = RandomStream(1)
    for __ in range(100):
        value = stream.uniform(2.0, 3.0)
        assert 2.0 <= value <= 3.0


def test_uniform_reversed_bounds_rejected():
    with pytest.raises(ValueError):
        RandomStream(1).uniform(3.0, 2.0)


def test_expovariate_positive_rate_required():
    with pytest.raises(ValueError):
        RandomStream(1).expovariate(0.0)


def test_chance_bounds_and_extremes():
    stream = RandomStream(5)
    assert all(stream.chance(1.0) for __ in range(20))
    assert not any(stream.chance(0.0) for __ in range(20))
    with pytest.raises(ValueError):
        stream.chance(1.5)


def test_choice_empty_rejected():
    with pytest.raises(ValueError):
        RandomStream(1).choice([])


def test_choice_returns_member():
    stream = RandomStream(2)
    items = ["x", "y", "z"]
    for __ in range(20):
        assert stream.choice(items) in items


def test_factory_streams_stable_by_name():
    f1 = StreamFactory(9)
    f2 = StreamFactory(9)
    assert f1.stream("alpha").random() == f2.stream("alpha").random()


def test_factory_streams_independent_by_name():
    factory = StreamFactory(9)
    a = factory.stream("a")
    # Drawing from one stream must not perturb another.
    before = StreamFactory(9).stream("b").random()
    a.random()
    a.random()
    after = factory.stream("b").random()
    assert before == after


def test_factory_returns_same_instance():
    factory = StreamFactory(0)
    assert factory.stream("x") is factory.stream("x")


def test_shuffle_and_sample():
    stream = RandomStream(3)
    items = list(range(10))
    sample = stream.sample(items, 4)
    assert len(sample) == 4
    assert set(sample) <= set(items)
    shuffled = list(items)
    stream.shuffle(shuffled)
    assert sorted(shuffled) == items
