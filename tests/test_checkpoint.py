"""Fuzzy-checkpoint tests: restart recovery from a bounded log suffix."""

import pytest

from repro.core.checkpoint import (
    CHECKPOINT_TXN,
    build_checkpoint_payload,
    deserialize_record,
    serialize_record,
)
from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import flat_tree
from repro.core.states import TxnState
from repro.log.records import LogRecord, LogRecordType
from repro.lrm.operations import write_op

from tests.conftest import updating_spec


def cluster_with_history(n_txns=5):
    cluster = Cluster(PRESUMED_ABORT.with_options(
        ack_timeout=15.0, retry_interval=15.0), nodes=["c", "s"])
    for i in range(n_txns):
        spec = flat_tree("c", ["s"])
        spec.participant("s").ops.append(write_op(f"k{i}", i))
        spec.participant("c").ops.append(write_op(f"h{i}", i))
        cluster.run_transaction(spec)
    return cluster


def test_record_serialization_round_trip():
    record = LogRecord(lsn=7, txn_id="t", record_type=LogRecordType.PREPARED,
                       node="n", forced=True, written_at=3.5,
                       payload={"coordinator": "c"})
    clone = deserialize_record(serialize_record(record))
    assert clone == record


def test_payload_skips_resolved_transactions():
    cluster = cluster_with_history(4)
    payload = build_checkpoint_payload(cluster.node("s"))
    # Every transaction committed and wrote END: nothing to carry.
    assert payload["carried"] == []
    assert payload["stores"]["default"]["k0"] == 0


def test_payload_carries_in_doubt_transaction_fully():
    cluster = cluster_with_history(2)
    spec = updating_spec("c", ["s"])
    now = cluster.simulator.now
    cluster.partition_at("c", "s", now + 4.5)   # s will be left in doubt
    cluster.start_transaction(spec)
    cluster.run_until(now + 10.0)
    payload = build_checkpoint_payload(cluster.node("s"))
    carried_types = {entry["record_type"] for entry in payload["carried"]
                     if entry["txn_id"] == spec.txn_id}
    assert "prepared" in carried_types
    assert "lrm-update" in carried_types     # undo images carried


def test_restart_after_checkpoint_preserves_committed_data():
    cluster = cluster_with_history(5)
    cluster.node("s").take_checkpoint()
    cluster.run()
    # More work after the checkpoint.
    spec = flat_tree("c", ["s"])
    spec.participant("s").ops.append(write_op("post", "yes"))
    cluster.run_transaction(spec)
    cluster.crash("s")
    cluster.restart("s")
    cluster.run()
    for i in range(5):
        assert cluster.value("s", f"k{i}") == i
    assert cluster.value("s", "post") == "yes"


def test_checkpoint_bounds_recovery_scan():
    cluster = cluster_with_history(12)
    node = cluster.node("s")
    full_history = len(node.log.stable.records())
    node.take_checkpoint()
    cluster.run()
    cluster.crash("s")
    cluster.restart("s")
    cluster.run()
    assert node.last_recovery_scan < full_history
    assert node.last_recovery_scan <= 2  # nothing carried, tiny suffix


def test_in_flight_loser_undone_from_snapshot():
    """A transaction active at checkpoint time leaves dirty values in
    the snapshot; restart must roll them back."""
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
    cluster.node("s").default_rm.store.redo_write("balance", 100)
    spec = updating_spec("c", ["s"])
    spec.participant("s").ops[0] = write_op("balance", -999)
    cluster.partition_at("c", "s", 2.5)      # prepare never arrives
    cluster.start_transaction(spec)
    cluster.run_until(5.0)
    # The dirty write is in place, the txn never prepared.
    assert cluster.value("s", "balance") == -999
    cluster.node("s").take_checkpoint()
    cluster.run_until(6.0)
    cluster.crash("s")
    cluster.restart("s")
    cluster.run_until(10.0)
    assert cluster.value("s", "balance") == 100


def test_in_doubt_across_checkpoint_resolves():
    """Prepared before the checkpoint, crash after it: the carried
    records re-lock and the inquiry resolves the transaction."""
    config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                         retry_interval=15.0)
    cluster = Cluster(config, nodes=["c", "s"])
    spec = updating_spec("c", ["s"])
    cluster.partition_at("c", "s", 4.5)      # commit lost; s in doubt
    cluster.start_transaction(spec)
    cluster.run_until(10.0)
    cluster.node("s").take_checkpoint()
    cluster.run_until(12.0)
    cluster.crash("s")
    cluster.heal("c", "s")
    cluster.restart_at("s", 20.0)
    cluster.run_until(300.0)
    assert cluster.value("s", "key-s") == 1
    assert cluster.node("s").ctx(spec.txn_id).state is TxnState.FORGOTTEN


def test_in_doubt_across_checkpoint_aborts_cleanly():
    """Same shape, but the coordinator never decided: the presumption
    aborts and the carried undo images roll the snapshot back."""
    config = PRESUMED_ABORT.with_options(retry_interval=10.0)
    cluster = Cluster(config, nodes=["c", "s"])
    cluster.node("s").default_rm.store.redo_write("key-s", "orig")
    spec = updating_spec("c", ["s"])
    cluster.crash_at("c", 3.5)               # c dies before deciding
    cluster.start_transaction(spec)
    cluster.run_until(8.0)
    cluster.node("s").take_checkpoint()
    cluster.run_until(10.0)
    cluster.crash("s")
    cluster.restart_at("c", 15.0)
    cluster.restart_at("s", 20.0)
    cluster.run_until(300.0)
    assert cluster.value("s", "key-s") == "orig"
    cluster.node("s").default_rm.locks.assert_released(spec.txn_id)


def test_checkpoint_record_is_forced():
    cluster = cluster_with_history(1)
    node = cluster.node("s")
    node.take_checkpoint()
    cluster.run()
    checkpoints = [r for r in node.log.stable.records()
                   if r.record_type is LogRecordType.CHECKPOINT]
    assert len(checkpoints) == 1
    assert checkpoints[0].forced
    assert checkpoints[0].txn_id == CHECKPOINT_TXN


def test_multiple_checkpoints_use_latest():
    cluster = cluster_with_history(3)
    node = cluster.node("s")
    node.take_checkpoint()
    cluster.run()
    spec = flat_tree("c", ["s"])
    spec.participant("s").ops.append(write_op("between", 1))
    cluster.run_transaction(spec)
    node.take_checkpoint()
    cluster.run()
    cluster.crash("s")
    cluster.restart("s")
    cluster.run()
    assert cluster.value("s", "between") == 1
    assert node.last_recovery_scan <= 2


def test_equivalence_with_and_without_checkpoint():
    """Recovery lands in the same final state whether or not a
    checkpoint intervened."""
    def run(with_checkpoint):
        config = PRESUMED_ABORT.with_options(ack_timeout=15.0,
                                             retry_interval=15.0)
        cluster = Cluster(config, nodes=["c", "s"])
        for i in range(3):
            spec = flat_tree("c", ["s"])
            spec.participant("s").ops.append(write_op(f"k{i}", i))
            cluster.run_transaction(spec)
        if with_checkpoint:
            cluster.node("s").take_checkpoint()
            cluster.run()
        spec = updating_spec("c", ["s"])
        cluster.partition_at("c", "s", cluster.simulator.now + 4.5)
        cluster.start_transaction(spec)
        cluster.run_until(cluster.simulator.now + 10.0)
        cluster.crash("s")
        cluster.heal_all_links()
        cluster.restart_at("s", cluster.simulator.now + 5.0)
        cluster.run_until(cluster.simulator.now + 300.0)
        return {key: cluster.value("s", key)
                for key in ("k0", "k1", "k2", "key-s")}

    assert run(True) == run(False)
