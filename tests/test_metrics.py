"""Unit tests for counters and the metrics collector."""

import pytest

from repro.metrics.collector import (
    CostSummary,
    HeuristicEvent,
    MetricsCollector,
    TransactionRecord,
)
from repro.metrics.counters import TaggedCounter
from repro.metrics.histogram import Histogram, geometric_bounds


class TestTaggedCounter:
    def test_requires_dimensions(self):
        with pytest.raises(ValueError):
            TaggedCounter(())

    def test_add_and_total(self):
        counter = TaggedCounter(("phase", "type"))
        counter.add(("commit", "prepare"))
        counter.add(("commit", "prepare"), 2)
        counter.add(("data", "enroll"))
        assert counter.total() == 4
        assert counter.total(phase="commit") == 3
        assert counter.total(phase="commit", type="prepare") == 3

    def test_key_arity_checked(self):
        counter = TaggedCounter(("a", "b"))
        with pytest.raises(ValueError):
            counter.add(("only-one",))

    def test_unknown_dimension_rejected(self):
        counter = TaggedCounter(("a",))
        counter.add(("x",))
        with pytest.raises(ValueError):
            counter.total(bogus="x")

    def test_group_by(self):
        counter = TaggedCounter(("phase", "node"))
        counter.add(("commit", "a"), 2)
        counter.add(("commit", "b"), 3)
        counter.add(("data", "a"), 7)
        assert counter.group_by("node", phase="commit") == {"a": 2, "b": 3}

    def test_diff_reports_increments_only(self):
        counter = TaggedCounter(("k",))
        counter.add(("x",), 2)
        snapshot = counter.snapshot()
        counter.add(("x",))
        counter.add(("y",), 5)
        delta = counter.diff(snapshot)
        assert delta.total(k="x") == 1
        assert delta.total(k="y") == 5


class TestMetricsCollector:
    def test_commit_flows_filters_phase(self, metrics):
        metrics.record_flow("commit", "prepare", "c", "t1")
        metrics.record_flow("data", "data", "c", "t1")
        metrics.record_flow("recovery", "outcome", "c", "t1")
        assert metrics.commit_flows() == 1
        assert metrics.data_flows() == 1
        assert metrics.recovery_flows() == 1

    def test_log_writes_exclude_data_records(self, metrics):
        metrics.record_log_write("n", "prepared", True, "t1")
        metrics.record_log_write("n", "lrm-update", False, "t1")
        metrics.record_log_write("n", "end", False, "t1")
        assert metrics.total_log_writes() == 2
        assert metrics.total_log_writes(include_data=True) == 3
        assert metrics.forced_log_writes() == 1

    def test_cost_summary_per_txn(self, metrics):
        metrics.record_flow("commit", "prepare", "c", "t1")
        metrics.record_flow("commit", "prepare", "c", "t2")
        metrics.record_log_write("n", "committed", True, "t1")
        summary = metrics.cost_summary("t1")
        assert summary.as_tuple() == (1, 1, 1)

    def test_node_costs_split_roles(self, metrics):
        metrics.record_flow("commit", "prepare", "coord", "t")
        metrics.record_flow("commit", "vote-yes", "sub", "t")
        metrics.record_log_write("sub", "prepared", True, "t")
        assert metrics.node_costs("coord", "t").flows == 1
        assert metrics.node_costs("sub", "t").as_tuple() == (1, 1, 1)

    def test_lock_hold_stats(self, metrics):
        metrics.record_lock_hold(2.0)
        metrics.record_lock_hold(4.0)
        assert metrics.mean_lock_hold() == pytest.approx(3.0)
        assert metrics.max_lock_hold() == pytest.approx(4.0)
        with pytest.raises(ValueError):
            metrics.record_lock_hold(-1.0)

    def test_empty_stats_are_zero(self, metrics):
        assert metrics.mean_lock_hold() == 0.0
        assert metrics.max_lock_hold() == 0.0
        assert metrics.mean_latency() == 0.0

    def test_heuristic_event_filtering(self, metrics):
        damaged = HeuristicEvent("n1", "t", "commit", 1.0, damaged=True)
        clean = HeuristicEvent("n2", "t", "commit", 1.0, damaged=False)
        metrics.record_heuristic(damaged)
        metrics.record_heuristic(clean)
        assert metrics.damaged_heuristics() == [damaged]

    def test_transaction_latency(self, metrics):
        metrics.record_transaction(TransactionRecord(
            txn_id="t", outcome="commit", started_at=1.0, finished_at=5.0))
        assert metrics.mean_latency() == pytest.approx(4.0)

    def test_snapshot_windowing(self, metrics):
        metrics.record_flow("commit", "prepare", "c", "t1")
        snap = metrics.snapshot()
        metrics.record_flow("commit", "commit", "c", "t1")
        window = metrics.since(snap)
        assert window.commit_flows() == 1

    def test_physical_io_counting(self, metrics):
        metrics.record_log_io("n1")
        metrics.record_log_io("n1")
        metrics.record_log_io("n2")
        assert metrics.physical_ios() == 3
        assert metrics.physical_ios("n1") == 2


class TestCostSummary:
    def test_tuple_and_str(self):
        summary = CostSummary(4, 5, 3)
        assert summary.as_tuple() == (4, 5, 3)
        assert "4 flows" in str(summary)
        assert "3 forced" in str(summary)


class TestResetAndWindowing:
    def test_reset_clears_everything(self, metrics):
        metrics.record_flow("commit", "prepare", "c", "t1")
        metrics.record_log_write("c", "committed", True, "t1")
        metrics.record_log_io("c")
        metrics.record_transaction(TransactionRecord(
            txn_id="t1", outcome="commit", started_at=0.0, finished_at=1.0))
        metrics.record_heuristic(HeuristicEvent("c", "t1", "commit", 1.0))
        metrics.record_lock_hold(2.0)
        metrics.record_force_latency("c", 0.5)
        metrics.reset()
        assert metrics.commit_flows() == 0
        assert metrics.total_log_writes() == 0
        assert metrics.physical_ios() == 0
        assert metrics.transactions == []
        assert metrics.heuristics == []
        assert metrics.lock_holds == []
        assert metrics.force_latencies == []

    def test_since_windows_list_metrics(self, metrics):
        metrics.record_transaction(TransactionRecord(
            txn_id="t1", outcome="commit", started_at=0.0, finished_at=2.0))
        metrics.record_lock_hold(1.0)
        metrics.record_force_latency("c", 0.25)
        metrics.record_heuristic(HeuristicEvent("c", "t1", "commit", 1.0))
        snap = metrics.snapshot()
        metrics.record_transaction(TransactionRecord(
            txn_id="t2", outcome="abort", started_at=2.0, finished_at=6.0))
        metrics.record_lock_hold(3.0)
        metrics.record_force_latency("s", 0.75)
        window = metrics.since(snap)
        assert [t.txn_id for t in window.transactions] == ["t2"]
        assert window.lock_holds == [3.0]
        assert window.force_latencies == [("s", 0.75)]
        assert window.heuristics == []
        assert window.mean_latency() == pytest.approx(4.0)
        # The source collector is untouched by windowing.
        assert len(metrics.transactions) == 2

    def test_negative_force_latency_rejected(self, metrics):
        with pytest.raises(ValueError):
            metrics.record_force_latency("c", -0.1)


class TestHistogram:
    def test_percentiles_of_uniform_data(self):
        histogram = Histogram()
        histogram.record_many(float(i) for i in range(1, 101))
        assert histogram.count == 100
        assert histogram.mean == pytest.approx(50.5)
        assert histogram.max == 100.0
        # Bucketed percentiles are approximate: the interpolated value
        # must land within the right bucket's neighbourhood.
        assert histogram.p50 == pytest.approx(50.0, rel=0.35)
        assert histogram.p99 == pytest.approx(99.0, rel=0.35)
        assert histogram.p50 <= histogram.p90 <= histogram.p99

    def test_empty_histogram_is_zero(self):
        histogram = Histogram()
        assert histogram.count == 0
        assert histogram.mean == 0.0
        assert histogram.p99 == 0.0
        assert histogram.summary()["max"] == 0.0

    def test_percentile_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_bounds_must_be_sorted_and_positive(self):
        with pytest.raises(ValueError):
            Histogram(bounds=[3.0, 1.0, 2.0])
        with pytest.raises(ValueError):
            geometric_bounds(10.0, 1.0)

    def test_merge_requires_matching_bounds(self):
        left = Histogram(bounds=geometric_bounds(0.1, 10.0, 4))
        right = Histogram()
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_accumulates(self):
        left, right = Histogram(), Histogram()
        left.record_many([1.0, 2.0])
        right.record_many([3.0, 4.0])
        merged = left.merge(right)
        assert merged is left  # in-place fold, chainable
        assert merged.count == 4
        assert merged.mean == pytest.approx(2.5)
        assert merged.max == 4.0
        assert right.count == 2  # the folded-in histogram is untouched

    def test_round_trips_through_dict(self):
        histogram = Histogram()
        histogram.record_many([0.5, 5.0, 50.0])
        restored = Histogram.from_dict(histogram.to_dict())
        assert restored.count == histogram.count
        assert restored.summary() == histogram.summary()


class TestHistogramMergeEdges:
    def test_merge_empty_into_empty(self):
        left = Histogram().merge(Histogram())
        assert left.count == 0
        assert left.min is None and left.max is None
        assert left.mean == 0.0 and left.p99 == 0.0

    def test_merge_populated_into_empty(self):
        left, right = Histogram(), Histogram()
        right.record_many([1.0, 4.0])
        left.merge(right)
        assert left.count == 2
        assert left.min == 1.0 and left.max == 4.0
        assert left.mean == pytest.approx(2.5)

    def test_merge_empty_into_populated_changes_nothing(self):
        left = Histogram()
        left.record_many([1.0, 4.0])
        before = left.summary()
        left.merge(Histogram())
        assert left.summary() == before

    def test_merged_percentiles_match_combined_recording(self):
        left, right, combined = Histogram(), Histogram(), Histogram()
        lows = [float(i) for i in range(1, 51)]
        highs = [float(i) for i in range(51, 101)]
        left.record_many(lows)
        right.record_many(highs)
        combined.record_many(lows + highs)
        left.merge(right)
        assert left.counts == combined.counts
        for q in (0.5, 0.9, 0.99):
            assert left.percentile(q) == combined.percentile(q)

    def test_single_value_percentiles_clamp_to_extremes(self):
        histogram = Histogram()
        histogram.record(7.0)
        # min == max: every quantile collapses to the one value, not
        # to a bucket-edge artifact.
        assert histogram.percentile(0.0) == 7.0
        assert histogram.percentile(0.5) == 7.0
        assert histogram.percentile(1.0) == 7.0

    def test_value_on_bucket_edge_lands_in_lower_bucket(self):
        # Bounds are *inclusive* upper edges: a value exactly on an
        # edge belongs to that edge's bucket, not the next one up.
        histogram = Histogram(bounds=[1.0, 2.0, 4.0])
        for value in (1.0, 2.0, 4.0):
            histogram.record(value)
        assert list(histogram.counts) == [1, 1, 1, 0]

    def test_values_beyond_last_bound_go_to_overflow(self):
        histogram = Histogram(bounds=[1.0, 2.0])
        histogram.record_many([5.0, 9.0])
        assert list(histogram.counts) == [0, 0, 2]
        # Overflow-bucket percentiles clamp to the observed max, not
        # to an unbounded bucket edge.
        assert histogram.percentile(0.5) <= 9.0
        assert histogram.percentile(1.0) == 9.0

    def test_extreme_quantiles_clamp_to_observed_range(self):
        histogram = Histogram(bounds=[1.0, 2.0, 4.0, 8.0])
        histogram.record_many([1.5, 3.0, 6.0])
        assert histogram.percentile(0.0) == 1.5
        assert histogram.percentile(1.0) == 6.0

    def test_percentile_monotonic_in_q(self):
        histogram = Histogram()
        histogram.record_many(float(i) for i in range(1, 42))
        quantiles = [histogram.percentile(q / 20.0) for q in range(21)]
        assert quantiles == sorted(quantiles)

    def test_all_mass_on_one_edge_collapses(self):
        # Every sample exactly at a bucket's inclusive upper edge:
        # min == max == edge, so interpolation must not leak below it.
        histogram = Histogram(bounds=[1.0, 2.0, 4.0])
        histogram.record_many([2.0, 2.0, 2.0])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert histogram.percentile(q) == 2.0

    def test_boundary_sample_survives_merge_and_dict(self):
        histogram = Histogram(bounds=[1.0, 2.0, 4.0])
        histogram.record_many([1.0, 2.0, 4.0, 5.0])
        restored = Histogram.from_dict(histogram.to_dict())
        assert list(restored.counts) == list(histogram.counts)
        other = Histogram(bounds=[1.0, 2.0, 4.0])
        other.record(2.0)
        histogram.merge(other)
        assert list(histogram.counts) == [1, 2, 1, 1]


class TestDeadlockMetrics:
    def test_record_count_and_victims(self):
        metrics = MetricsCollector()
        assert metrics.deadlock_count() == 0
        metrics.record_deadlock("t2", ["t1", "t2"])
        metrics.record_deadlock("t4", ["t3", "t4"])
        assert metrics.deadlock_count() == 2
        assert metrics.deadlock_victims() == ["t2", "t4"]
        assert metrics.deadlocks[0].cycle == ["t1", "t2"]

    def test_since_windows_deadlocks(self):
        metrics = MetricsCollector()
        metrics.record_deadlock("t1", ["t1", "t2"])
        snap = metrics.snapshot()
        metrics.record_deadlock("t3", ["t3", "t4"])
        window = metrics.since(snap)
        assert window.deadlock_count() == 1
        assert window.deadlock_victims() == ["t3"]

    def test_run_report_surfaces_deadlocks(self):
        from repro.core.cluster import Cluster
        from repro.core.config import PRESUMED_ABORT
        from repro.obs import RunReport

        cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
        cluster.metrics.record_deadlock("t9", ["t8", "t9"])
        report = RunReport.from_run(cluster)
        assert report.counters["deadlocks detected"] == 1
        assert "deadlock victim: t9" in report.notes
        assert "note: deadlock victim: t9" in report.render()
