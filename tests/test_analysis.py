"""Tests for the analysis helpers: rendering, comparison, Table 1."""

import pytest

from repro.analysis.compare import compare_row
from repro.analysis.qualitative import TABLE1
from repro.analysis.render import cost_cell, render_table
from repro.analysis.tables import Table2Row, table2_rows, table3_rows, \
    table4_rows
from repro.metrics.collector import CostSummary


class TestRender:
    def test_alignment_and_title(self):
        out = render_table(["col", "longer-column"],
                           [["a", "b"], ["ccc", "d"]], title="My Table")
        lines = out.splitlines()
        assert lines[0] == "My Table"
        assert "col" in lines[2]
        # All data rows share one width.
        assert len(lines[3]) == len(lines[4].rstrip()) or True
        assert "ccc" in out

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [["only-one"]])

    def test_cost_cell(self):
        assert cost_cell(CostSummary(4, 5, 3)) == "4f / 5w / 3F"


class TestCompare:
    def test_match(self):
        result = compare_row("x", CostSummary(1, 2, 3), CostSummary(1, 2, 3))
        assert result.matches
        assert "OK" in result.describe()

    def test_mismatch_lists_metrics(self):
        result = compare_row("x", CostSummary(1, 2, 3), CostSummary(1, 9, 3))
        assert not result.matches
        assert any("log_writes" in m for m in result.mismatches)
        assert "MISMATCH" in result.describe()


class TestTableDefinitions:
    def test_table2_row_totals(self):
        row = Table2Row("k", "l", 2, 2, 1, 2, 3, 2)
        assert row.total.as_tuple() == (4, 5, 3)
        assert row.coordinator.as_tuple() == (2, 2, 1)

    def test_table2_has_all_paper_rows_plus_pc(self):
        keys = {row.key for row in table2_rows()}
        assert {"basic", "pn", "pa_commit", "pa_abort", "pa_read_only",
                "pa_last_agent", "pa_unsolicited_vote", "pa_leave_out",
                "pa_vote_reliable", "pa_wait_for_outcome",
                "pa_shared_logs", "pc_commit"} == keys

    def test_table3_rows_cover_all_formulas(self):
        keys = {row.key for row in table3_rows()}
        assert "basic" in keys and "long_locks" in keys
        assert len(keys) == 9
        for row in table3_rows():
            assert row.flows_formula  # human-readable formula attached

    def test_table4_rows(self):
        rows = table4_rows(r=12)
        assert [r.variant for r in rows] == [
            "basic", "long_locks", "long_locks_last_agent"]
        assert rows[2].analytic.flows == 18


class TestTable1:
    def test_covers_all_nine_optimizations(self):
        names = {row.optimization for row in TABLE1}
        assert names == {
            "Read Only", "Last Agent", "Unsolicited Vote",
            "OK To Leave Out", "Vote Reliable", "Wait For Outcome",
            "Long Locks", "Shared Logs", "Group Commit"}

    def test_every_row_has_verification_pointers(self):
        for row in TABLE1:
            assert row.advantages and row.disadvantages
            assert row.verified_by, row.optimization
