"""Examples smoke test: the runnable walkthroughs must stay runnable.

Each example is executed as a real subprocess (the way a reader would
run it) with ``src`` on ``PYTHONPATH``; it must exit 0 and produce the
output its narrative promises.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = REPO_ROOT / "examples"


def run_example(name: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, env=env, timeout=120)


def test_quickstart_runs_clean():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "outcome: commit" in result.stdout
    assert "commit-protocol cost" in result.stdout


def test_operator_console_runs_clean():
    result = run_example("operator_console.py")
    assert result.returncode == 0, result.stderr
    assert "in doubt" in result.stdout
    assert "heuristic" in result.stdout.lower()


@pytest.mark.parametrize("name", sorted(
    path.name for path in EXAMPLES.glob("*.py")))
def test_every_example_exits_zero(name):
    result = run_example(name)
    assert result.returncode == 0, (
        f"{name} failed:\n{result.stderr[-2000:]}")
    assert result.stdout.strip(), f"{name} printed nothing"
