"""Workload generation tests."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.sim.randomness import RandomStream
from repro.workload.chains import chained_transaction_specs
from repro.workload.generator import WorkloadGenerator, WorkloadParams
from repro.workload.profiles import (
    PROFILES,
    banking_reconciliation,
    read_mostly_reporting,
    travel_booking,
)
from repro.workload.trees import (
    balanced_tree_spec,
    chain_spec,
    flat_spec,
    random_tree_spec,
)


NODES = [f"n{i}" for i in range(6)]


class TestTrees:
    def test_flat(self):
        spec = flat_spec(NODES)
        assert spec.root.node == "n0"
        assert len(spec.children_of("n0")) == 5

    def test_chain(self):
        spec = chain_spec(NODES)
        assert spec.participant("n5").parent == "n4"

    def test_balanced(self):
        spec = balanced_tree_spec(NODES, fanout=2)
        assert spec.participant("n1").parent == "n0"
        assert spec.participant("n2").parent == "n0"
        assert spec.participant("n3").parent == "n1"
        with pytest.raises(ValueError):
            balanced_tree_spec(NODES, fanout=0)

    def test_random_tree_valid_and_deterministic(self):
        a = random_tree_spec(NODES, RandomStream(5))
        b = random_tree_spec(NODES, RandomStream(5))
        assert [p.parent for p in a.participants] == \
            [p.parent for p in b.participants]
        a.validate()

    def test_no_update_variant(self):
        spec = flat_spec(NODES, updates=False)
        assert all(not p.ops for p in spec.participants)


class TestGenerator:
    def test_params_validation(self):
        with pytest.raises(ValueError):
            WorkloadParams(read_only_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadParams(update_fraction=-0.1)
        with pytest.raises(ValueError):
            WorkloadParams(ops_per_participant=-1)
        with pytest.raises(ValueError):
            WorkloadParams(key_space=0)

    def test_stream_produces_valid_specs(self):
        generator = WorkloadGenerator(NODES, WorkloadParams(
            read_only_fraction=0.5), RandomStream(3))
        specs = list(generator.stream(10))
        assert len(specs) == 10
        for spec in specs:
            spec.validate()
            assert spec.size == len(NODES)

    def test_read_only_fraction_zero_means_updates(self):
        generator = WorkloadGenerator(NODES, WorkloadParams(
            read_only_fraction=0.0, update_fraction=1.0),
            RandomStream(3))
        spec = generator.next_spec()
        assert all(any(op.is_update for op in p.ops)
                   for p in spec.participants)

    def test_generated_specs_run(self):
        generator = WorkloadGenerator(NODES, WorkloadParams(
            read_only_fraction=0.4, key_space=8), RandomStream(1))
        cluster = Cluster(PRESUMED_ABORT, nodes=NODES)
        for spec in generator.stream(5):
            handle = cluster.run_transaction(spec)
            assert handle.done

    def test_negative_count_rejected(self):
        generator = WorkloadGenerator(NODES)
        with pytest.raises(ValueError):
            list(generator.stream(-1))


class TestChains:
    def test_alternating_roots(self):
        specs = chained_transaction_specs(4)
        roots = [s.root.node for s in specs]
        assert roots == ["a", "b", "a", "b"]

    def test_last_agent_pairs_require_even(self):
        with pytest.raises(ValueError):
            chained_transaction_specs(3, last_agent_pairs=True)

    def test_pair_pattern_defers_first_of_each_pair(self):
        specs = chained_transaction_specs(4, last_agent_pairs=True)
        assert [s.long_locks for s in specs] == [True, False, True, False]

    def test_r_validation(self):
        with pytest.raises(ValueError):
            chained_transaction_specs(0)


class TestProfiles:
    def test_registry_builds_all(self):
        for name, factory in PROFILES.items():
            profile = factory()
            assert profile.name == name
            assert profile.specs()

    def test_banking_profile_runs_with_long_locks(self):
        profile = banking_reconciliation(r=4)
        cluster = profile.build_cluster()
        specs = profile.specs()
        for spec in specs:
            cluster.run_transaction(spec)
        for spec in specs:
            assert cluster.metrics.commit_flows(txn=spec.txn_id) == 3

    def test_travel_profile_uses_satellite_last_agent(self):
        profile = travel_booking(satellite_delay=40.0)
        cluster = profile.build_cluster()
        [spec] = profile.specs()
        handle = cluster.run_transaction(spec)
        cluster.finalize_implied_acks()
        assert handle.committed
        # One slow round trip with the airline: delegation out, commit
        # back — exactly 2 commit flows on the satellite link.
        airline_flows = (cluster.metrics.commit_flows(src="airline")
                         + cluster.metrics.commit_flows(src="agency"))
        assert cluster.metrics.flows.total(
            phase="commit", src="airline") == 1

    def test_reporting_profile_read_only_savings(self):
        profile = read_mostly_reporting(n=8, readers=6)
        cluster = profile.build_cluster()
        [spec] = profile.specs()
        handle = cluster.run_transaction(spec)
        assert handle.committed
        # 6 read-only branches: 2 flows each; 1 updating branch: 4.
        assert cluster.metrics.commit_flows(txn=spec.txn_id) == 6 * 2 + 4
