"""The crash-point matrix.

Rather than hand-picking crash instants, crash a node deterministically
after its k-th log write (or k-th message send) for every k the
protocol produces, under every presumption — then restart, run
recovery, and assert atomicity plus the wire-protocol rules.  This
systematically covers the windows the paper's recovery arguments
reason about: before/after the prepared force, between decision and
propagation, before/after END, mid-acknowledgment.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
)
from repro.verify import ProtocolChecker

from tests.conftest import assert_atomic, updating_spec

CONFIGS = [
    pytest.param(BASIC_2PC, id="basic"),
    pytest.param(PRESUMED_ABORT, id="pa"),
    pytest.param(PRESUMED_NOTHING, id="pn"),
    pytest.param(PRESUMED_COMMIT, id="pc"),
]

RECOVERY_OPTIONS = dict(ack_timeout=15.0, retry_interval=15.0,
                        vote_timeout=25.0, inquiry_timeout=25.0,
                        work_timeout=40.0)


def crash_after_log_write(cluster, node_name: str, k: int) -> None:
    """Arm: the node crashes right after its k-th log write."""
    node = cluster.nodes[node_name]
    count = {"n": 0}

    def hook(record) -> None:
        count["n"] += 1
        if count["n"] == k and node.alive:
            cluster.simulator.call_soon(node.crash,
                                        name=f"crash-after-write-{k}")

    node.log.on_write.append(hook)


def crash_after_send(cluster, node_name: str, k: int) -> None:
    """Arm: the node crashes right after its k-th network send."""
    node = cluster.nodes[node_name]
    count = {"n": 0}

    def hook(message) -> None:
        if message.src != node_name:
            return
        count["n"] += 1
        if count["n"] == k and node.alive:
            cluster.simulator.call_soon(node.crash,
                                        name=f"crash-after-send-{k}")

    cluster.network.on_send.append(hook)


def run_matrix_case(config, victim: str, k: int, mode: str):
    cluster = Cluster(config.with_options(**RECOVERY_OPTIONS),
                      nodes=["c", "s"])
    checker = ProtocolChecker().attach(cluster)
    spec = updating_spec("c", ["s"])
    if mode == "log":
        crash_after_log_write(cluster, victim, k)
    else:
        crash_after_send(cluster, victim, k)
    restart_done = {"armed": False}

    def maybe_restart():
        node = cluster.nodes[victim]
        if not node.alive and not restart_done["armed"]:
            restart_done["armed"] = True
            cluster.simulator.schedule(30.0, node.restart,
                                       name="matrix-restart")

    cluster.simulator.add_event_hook(lambda e: maybe_restart())
    cluster.start_transaction(spec)
    cluster.run_until(600.0, max_events=400_000)
    checker.check_atomicity(spec.txn_id)
    checker.assert_clean()
    outcome = assert_atomic(cluster, spec)
    # Data must match the agreed outcome everywhere.
    for name in ("c", "s"):
        value = cluster.value(name, f"key-{name}")
        if outcome == "commit":
            recorded = cluster.recorded_outcome(name, spec.txn_id)
            if recorded == "commit":
                assert value == 1, (name, k, mode)
        else:
            assert value in (None,), (name, k, mode)
    return outcome


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("k", range(1, 7), ids=lambda k: f"w{k}")
def test_subordinate_crash_after_each_log_write(config, k):
    run_matrix_case(config, "s", k, "log")


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("k", range(1, 7), ids=lambda k: f"w{k}")
def test_coordinator_crash_after_each_log_write(config, k):
    run_matrix_case(config, "c", k, "log")


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("k", range(1, 6), ids=lambda k: f"m{k}")
def test_subordinate_crash_after_each_send(config, k):
    run_matrix_case(config, "s", k, "send")


@pytest.mark.parametrize("config", CONFIGS)
@pytest.mark.parametrize("k", range(1, 6), ids=lambda k: f"m{k}")
def test_coordinator_crash_after_each_send(config, k):
    run_matrix_case(config, "c", k, "send")
