"""LU 6.2 conversation-state tracking tests."""

import pytest

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import write_op
from repro.net.conversation import ConversationTracker
from repro.workload.chains import chained_transaction_specs

from tests.conftest import updating_spec


def test_turnaround_counting_basic_commit():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s"])
    tracker = ConversationTracker().attach(cluster)
    cluster.run_transaction(updating_spec("c", ["s"]))
    state = tracker.session("c", "s")
    # enroll(c) work-done(s) prepare(c) vote(s) commit(c) ack(s):
    # five direction changes on one session.
    assert state.messages == 6
    assert state.turnarounds == 5
    tracker.assert_clean()


def test_long_locks_saves_messages_not_turnarounds():
    """The deferred ack rides the next message in the SAME direction,
    so long locks removes wire messages without changing the number of
    half-duplex line turnarounds — piggybacking in the purest sense."""
    def stats(long_locks: bool, r: int = 4):
        config = PRESUMED_ABORT.with_options(long_locks=long_locks)
        cluster = Cluster(config, nodes=["a", "b"])
        tracker = ConversationTracker().attach(cluster)
        for spec in chained_transaction_specs(r, long_locks=long_locks):
            cluster.run_transaction(spec)
        cluster.send_application_data("a", "b")
        cluster.send_application_data("b", "a")
        state = tracker.session("a", "b")
        return state.messages, state.turnarounds

    ll_messages, ll_turnarounds = stats(True)
    plain_messages, plain_turnarounds = stats(False)
    assert ll_messages < plain_messages
    assert ll_turnarounds == plain_turnarounds


def test_long_locks_precondition_satisfied_by_chain():
    """In a well-formed chain the subordinate really does speak next
    after every long-locks commit."""
    config = PRESUMED_ABORT.with_options(long_locks=True)
    cluster = Cluster(config, nodes=["a", "b"])
    tracker = ConversationTracker().attach(cluster)
    for spec in chained_transaction_specs(4, long_locks=True):
        cluster.run_transaction(spec)
    cluster.send_application_data("a", "b")
    cluster.send_application_data("b", "a")
    tracker.assert_clean()


def test_long_locks_precondition_violation_detected():
    """If the coordinator itself speaks next (it was supposed to sit in
    RECEIVE state), the tracker flags the application design error."""
    config = PRESUMED_ABORT.with_options(long_locks=True)
    cluster = Cluster(config, nodes=["a", "b"])
    tracker = ConversationTracker().attach(cluster)
    spec = TransactionSpec(participants=[
        ParticipantSpec(node="a", ops=[write_op("x", 1)]),
        ParticipantSpec(node="b", parent="a", ops=[write_op("y", 1)])],
        long_locks=True)
    cluster.run_transaction(spec)
    # The coordinator barges in with new data instead of waiting.
    cluster.send_application_data("a", "b")
    assert len(tracker.violations) == 1
    assert "a sent" in str(tracker.violations[0])
    with pytest.raises(AssertionError):
        tracker.assert_clean()


def test_sessions_tracked_per_pair():
    cluster = Cluster(PRESUMED_ABORT, nodes=["c", "s1", "s2"])
    tracker = ConversationTracker().attach(cluster)
    cluster.run_transaction(updating_spec("c", ["s1", "s2"]))
    assert len(tracker.sessions) == 2
    assert tracker.session("c", "s1").messages == 6
    # Session keys are direction-independent.
    assert tracker.session("s1", "c") is tracker.session("c", "s1")


def test_receiver_property():
    from repro.net.conversation import SessionState
    state = SessionState(partners=("a", "b"))
    assert state.receiver is None
    state.sender = "a"
    assert state.receiver == "b"
