"""Tests for the parallel sweep engine (repro.parallel)."""

import pytest

from repro.cli import main as cli_main
from repro.analysis.sweeps import sweep_tree_size
from repro.parallel.pool import (
    RunSpec,
    SweepExecutionError,
    default_workers,
    run_specs,
    sweep,
)
from repro.parallel.sweeps import presumption_study, run_study


# Module-level so they pickle by reference into worker processes.
def _square(x):
    return x * x


def _boom(x):
    if x == 2:
        raise ValueError(f"injected failure for x={x}")
    return x


class TestRunSpecs:
    def test_results_in_spec_order(self):
        specs = [RunSpec(fn=_square, args=(i,)) for i in range(8)]
        assert run_specs(specs, workers=1) == [i * i for i in range(8)]
        assert run_specs(specs, workers=3) == [i * i for i in range(8)]

    def test_serial_error_identifies_spec(self):
        specs = [RunSpec(fn=_boom, args=(i,), label=f"run-{i}")
                 for i in range(4)]
        with pytest.raises(SweepExecutionError, match="run-2") as info:
            run_specs(specs, workers=1)
        assert info.value.index == 2
        assert info.value.spec.args == (2,)

    def test_worker_error_identifies_spec(self):
        specs = [RunSpec(fn=_boom, args=(i,), label=f"run-{i}")
                 for i in range(4)]
        with pytest.raises(SweepExecutionError, match="run-2") as info:
            run_specs(specs, workers=2)
        assert info.value.index == 2
        assert "injected failure" in str(info.value)

    def test_sweep_grid_helper(self):
        results = sweep(_square, [{"x": 2}, {"x": 5}], workers=1)
        assert results == [4, 25]

    def test_default_workers_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
        assert default_workers() == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "6")
        assert default_workers() == 6
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "junk")
        assert default_workers() == 1


class TestDeterministicSweeps:
    def test_presumption_study_identical_across_worker_counts(self):
        kwargs = dict(abort_rates=(0.0, 0.5), presumptions=("pa", "pc"),
                      n_txns=6, seed=11)
        serial = presumption_study(workers=1, **kwargs)
        parallel = presumption_study(workers=4, **kwargs)
        assert serial == parallel
        # The study covers the grid in order.
        labels = [(row["abort_rate"], row["presumption"])
                  for row in serial]
        assert labels == [(0.0, "pa"), (0.0, "pc"),
                          (0.5, "pa"), (0.5, "pc")]

    def test_tree_size_sweep_identical_across_worker_counts(self):
        serial = sweep_tree_size([2, 4], ["pa", "pc"], workers=1)
        parallel = sweep_tree_size([2, 4], ["pa", "pc"], workers=4)
        assert serial == parallel

    def test_unknown_study_rejected(self):
        with pytest.raises(KeyError):
            run_study("nonesuch")


class TestSweepCli:
    def test_sweep_subcommand_renders_table(self, capsys):
        assert cli_main(["sweep", "--study", "link-speed"]) == 0
        out = capsys.readouterr().out
        assert "Sweep study: link-speed" in out
        assert "link_delay" in out

    def test_sweep_subcommand_csv(self, capsys):
        assert cli_main(["sweep", "--study", "read-only", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("readers,")
        assert len(out.strip().splitlines()) == 6  # header + 5 rows


class TestSaturation:
    def test_aggregate_metrics(self):
        from repro.parallel import run_saturation
        result = run_saturation(workers=1, txns_per_worker=30)
        assert result["txns"] == 30
        assert 0 < result["committed"] <= 30
        assert result["txns_per_sec_per_core"] > 0
        assert result["txns_per_sec"] >= result["txns_per_sec_per_core"]
        assert result["gc"] == "deferred"
        assert len(result["cells"]) == 1
        assert result["cells"][0]["events"] > 0

    def test_cells_are_deterministic_per_seed(self):
        from repro.parallel.saturate import saturation_cell
        first = saturation_cell(seed=7, txns=20)
        second = saturation_cell(seed=7, txns=20)
        assert (first["committed"], first["events"]) == \
            (second["committed"], second["events"])

    def test_cli_saturate(self, capsys):
        assert cli_main(["saturate", "--workers", "1",
                         "--txns", "20"]) == 0
        out = capsys.readouterr().out
        assert "txns/s/core" in out

    def test_cli_saturate_json(self, capsys):
        import json
        assert cli_main(["saturate", "--workers", "1", "--txns", "15",
                         "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["txns"] == 15
        assert payload["gc"] == "deferred"
