"""Journal divergence differ: localize the first causally-divergent event.

Two journals of "the same" run — record vs replay, wheel vs heap
scheduler, serial vs parallel sweep shards, eventually live transport
vs simulated twin — are equivalent iff every *site* observed the same
sequence of actions and the cross-site causal edges pair the same
events.  The global interleaving of independent sites is a permitted
reordering and is deliberately not compared; per-site program order
and the causal wiring are the contract.

:func:`diff_journals` returns ``None`` for equivalent journals, or a
:class:`Divergence` naming the first point of disagreement — chosen as
the earliest candidate by ``(t, eid)`` across sites — with the node,
transaction, protocol phase, and expected-vs-observed entries spelled
out for a human.

:func:`run_journal_self_check` is the oracle gate: record a seeded
workload, replay it on a fresh cluster, and demand an empty diff for
every protocol variant.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.journal import (JournalEntry, JournalRecorder,
                               normalize_txn_ids)

#: Protocol variants the self-check gate must hold for.
SELF_CHECK_PROTOCOLS = ("basic", "presumed_abort", "presumed_nothing",
                       "presumed_commit")


class Divergence:
    """The first causally-divergent event between two journals."""

    def __init__(self, site: str, position: int, reason: str,
                 expected: Optional[JournalEntry],
                 observed: Optional[JournalEntry]) -> None:
        self.site = site
        self.position = position
        self.reason = reason
        self.expected = expected
        self.observed = observed

    # ------------------------------------------------------------------
    @property
    def _anchor(self) -> Optional[JournalEntry]:
        return self.expected if self.expected is not None else self.observed

    def describe(self) -> str:
        """Human-readable localization: node, txn, phase, expected vs
        observed."""
        anchor = self._anchor
        lines = [
            f"first divergence at node {self.site}, "
            f"site-position {self.position}"
            + (f", txn {anchor.txn}" if anchor and anchor.txn else "")
            + (f", phase {anchor.phase}" if anchor and anchor.phase
               else "")
            + f": {self.reason}",
            "  expected: " + (self.expected.describe()
                              if self.expected else "(no further events)"),
            "  observed: " + (self.observed.describe()
                              if self.observed else "(no further events)"),
        ]
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "site": self.site,
            "position": self.position,
            "reason": self.reason,
            "txn": self._anchor.txn if self._anchor else None,
            "phase": self._anchor.phase if self._anchor else None,
            "expected": self.expected.to_dict() if self.expected else None,
            "observed": self.observed.to_dict() if self.observed else None,
        }

    def __repr__(self) -> str:
        return f"<Divergence {self.site}#{self.position}: {self.reason}>"


def _by_site(entries: Sequence[JournalEntry]
             ) -> Dict[str, List[JournalEntry]]:
    sites: Dict[str, List[JournalEntry]] = {}
    for entry in entries:
        sites.setdefault(entry.node, []).append(entry)
    return sites


def _sort_key(divergence: Divergence) -> Tuple[float, int]:
    anchor = divergence._anchor
    if anchor is None:
        return (float("inf"), 1 << 62)
    return (anchor.t, anchor.eid)


def diff_journals(expected: Sequence[JournalEntry],
                  observed: Sequence[JournalEntry],
                  ignore_time: bool = False) -> Optional[Divergence]:
    """Compare two journals modulo permitted reorderings.

    Per-site sequences are compared by entry signature; if all match,
    cross-site causal edges must pair the same (positionally matched)
    events.  ``ignore_time`` drops timestamps from the comparison —
    for journals from different clocks (e.g. a live transport twin).
    Returns ``None`` if equivalent, else the first :class:`Divergence`
    by ``(t, eid)``.
    """
    a_sites = _by_site(expected)
    b_sites = _by_site(observed)
    with_time = not ignore_time
    candidates: List[Divergence] = []

    for site in sorted(set(a_sites) | set(b_sites)):
        a_seq = a_sites.get(site, [])
        b_seq = b_sites.get(site, [])
        for position in range(max(len(a_seq), len(b_seq))):
            a_entry = a_seq[position] if position < len(a_seq) else None
            b_entry = b_seq[position] if position < len(b_seq) else None
            if a_entry is None or b_entry is None:
                reason = ("observed journal has extra events at this site"
                          if a_entry is None else
                          "observed journal ends early at this site")
                candidates.append(Divergence(site, position, reason,
                                             a_entry, b_entry))
                break
            if a_entry.signature(with_time) != b_entry.signature(with_time):
                candidates.append(Divergence(
                    site, position, "event mismatch", a_entry, b_entry))
                break

    if candidates:
        return min(candidates, key=_sort_key)

    # Per-site sequences agree; verify the causal wiring pairs the same
    # events.  Positional matching per site gives the eid mapping.
    a_to_b: Dict[int, int] = {}
    for site, a_seq in a_sites.items():
        for a_entry, b_entry in zip(a_seq, b_sites[site]):
            a_to_b[a_entry.eid] = b_entry.eid
    for site in sorted(a_sites):
        for position, (a_entry, b_entry) in enumerate(
                zip(a_sites[site], b_sites[site])):
            mapped = sorted(a_to_b[p] for p in a_entry.parents
                            if p in a_to_b)
            actual = sorted(p for p in b_entry.parents
                            if p in a_to_b.values())
            if mapped != actual:
                candidates.append(Divergence(
                    site, position,
                    "causal parents pair different events",
                    a_entry, b_entry))
                break
    if candidates:
        return min(candidates, key=_sort_key)
    return None


# ----------------------------------------------------------------------
# Self-check: record -> replay -> diff must be empty
# ----------------------------------------------------------------------
def record_workload_journal(config, seed: int = 11, txns: int = 8,
                            nodes: Optional[Sequence[str]] = None,
                            columnar: bool = False) -> List[JournalEntry]:
    """Run a seeded generated workload under a journal recorder and
    return the txn-normalized entries."""
    from repro.core.cluster import Cluster
    from repro.sim.randomness import RandomStream
    from repro.workload.generator import WorkloadGenerator, WorkloadParams

    node_names = list(nodes or ["n0", "n1", "n2"])
    cluster = Cluster(config, nodes=node_names, seed=seed)
    recorder = JournalRecorder(columnar=columnar).attach(cluster)
    generator = WorkloadGenerator(
        node_names, WorkloadParams(read_only_fraction=0.3, key_space=4),
        RandomStream(seed))
    for spec in generator.stream(txns):
        cluster.run_transaction(spec)
    recorder.detach()
    return normalize_txn_ids(recorder.entries())


def run_journal_self_check(seed: int = 11, txns: int = 8
                           ) -> Dict[str, Optional[Divergence]]:
    """Record -> replay -> diff for every protocol variant.

    Each protocol's workload is recorded twice on fresh clusters with
    the same seed; determinism requires the journals to be equivalent.
    Returns ``{protocol: None}`` when clean; any non-``None`` value is
    the localized divergence (a determinism bug).
    """
    from repro.core.config import (BASIC_2PC, PRESUMED_ABORT,
                                   PRESUMED_COMMIT, PRESUMED_NOTHING)

    configs = {
        "basic": BASIC_2PC,
        "presumed_abort": PRESUMED_ABORT,
        "presumed_nothing": PRESUMED_NOTHING,
        "presumed_commit": PRESUMED_COMMIT,
    }
    results: Dict[str, Optional[Divergence]] = {}
    for name in SELF_CHECK_PROTOCOLS:
        config = configs[name]
        recorded = record_workload_journal(config, seed=seed, txns=txns)
        replayed = record_workload_journal(config, seed=seed, txns=txns)
        results[name] = diff_journals(recorded, replayed)
    return results
