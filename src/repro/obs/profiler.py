"""Opt-in kernel profiler: where does simulated time's real time go?

The simulator names every event it schedules
(``deliver:...``, ``log-io:Node``, ``group-commit-timer:Node``,
``heuristic-timeout:...``).  The profiler buckets events by the prefix
before the first ``:`` and accumulates count, total and max wall-clock
handler cost per bucket, plus a wall-clock histogram, so a slow sweep
can be blamed on (say) message delivery handlers rather than guessed
at.

The kernel's fast path is preserved by construction: with no profiler
installed the run loop takes a single ``is None`` branch per event and
never calls ``perf_counter``.  Installation is either per-simulator
(:meth:`Simulator.set_profiler`) or global via :meth:`activate`, which
sets :attr:`Simulator.default_profiler` so simulators built out of the
caller's reach (inside sweep cells, workload profiles) pick it up at
construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.metrics.histogram import Histogram, geometric_bounds
from repro.sim.kernel import Simulator

#: Wall-clock handler costs are microseconds-ish; ladder from 100ns
#: to 1s, 5 buckets per decade.
WALL_CLOCK_BOUNDS = geometric_bounds(lo=1e-7, hi=1.0, per_decade=5)


class EventTypeStats:
    """Accumulated handler cost for one event-name prefix."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        return {"count": self.count,
                "total_s": round(self.total, 9),
                "mean_s": round(self.mean, 9),
                "max_s": round(self.max, 9)}


class KernelProfiler:
    """Implements the kernel's ``KernelProfilerProtocol``."""

    def __init__(self) -> None:
        self.by_type: Dict[str, EventTypeStats] = {}
        self.histogram = Histogram(bounds=WALL_CLOCK_BOUNDS)
        self.events = 0
        self.total_seconds = 0.0

    # ------------------------------------------------------------------
    # The hot callback (one dict lookup + arithmetic per event)
    # ------------------------------------------------------------------
    def record(self, event, seconds: float) -> None:
        name = event.name
        key = name.split(":", 1)[0] if name else "(unnamed)"
        stats = self.by_type.get(key)
        if stats is None:
            stats = self.by_type[key] = EventTypeStats()
        stats.count += 1
        stats.total += seconds
        if seconds > stats.max:
            stats.max = seconds
        self.events += 1
        self.total_seconds += seconds
        self.histogram.record(seconds)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def activate(self) -> "KernelProfiler":
        """Profile every simulator constructed from now on.

        Global by design: sweep cells and workload profiles build their
        own clusters internally, and this is the only seam that reaches
        them.  Pair with :meth:`deactivate` (``try/finally``).
        """
        Simulator.default_profiler = self
        return self

    def deactivate(self) -> "KernelProfiler":
        if Simulator.default_profiler is self:
            Simulator.default_profiler = None
        return self

    def __enter__(self) -> "KernelProfiler":
        return self.activate()

    def __exit__(self, *exc_info) -> None:
        self.deactivate()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def rows(self) -> List[List[str]]:
        """Table rows sorted by total cost, descending."""
        ordered = sorted(self.by_type.items(),
                         key=lambda item: item[1].total, reverse=True)
        rows = []
        for key, stats in ordered:
            share = (100.0 * stats.total / self.total_seconds
                     if self.total_seconds else 0.0)
            rows.append([key, str(stats.count),
                         f"{stats.total * 1e3:.3f}",
                         f"{stats.mean * 1e6:.2f}",
                         f"{stats.max * 1e6:.2f}",
                         f"{share:.1f}%"])
        return rows

    def render(self) -> str:
        from repro.analysis.render import render_table
        if not self.events:
            return "kernel profile: no events recorded"
        table = render_table(
            ["event type", "count", "total ms", "mean us", "max us",
             "share"],
            self.rows(),
            title="Kernel profile (wall-clock handler cost by event type)")
        tail = (f"{self.events} events, "
                f"{self.total_seconds * 1e3:.1f} ms in handlers, "
                f"p50={self.histogram.p50 * 1e6:.2f}us "
                f"p99={self.histogram.p99 * 1e6:.2f}us")
        return f"{table}\n{tail}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "total_seconds": round(self.total_seconds, 9),
            "by_type": {key: stats.to_dict()
                        for key, stats in sorted(self.by_type.items())},
            "wall_clock": self.histogram.summary(),
        }

    def __repr__(self) -> str:
        return (f"<KernelProfiler events={self.events} "
                f"types={len(self.by_type)} "
                f"total={self.total_seconds * 1e3:.1f}ms>")


def profiled_simulator(profiler: Optional[KernelProfiler],
                       simulator: Simulator) -> Simulator:
    """Attach ``profiler`` (if any) to an existing simulator."""
    if profiler is not None:
        simulator.set_profiler(profiler)
    return simulator
