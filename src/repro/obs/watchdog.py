"""Watchdog detectors over a journal (or live hooks) + Prometheus text.

The journal records everything the cost model counts; the watchdogs
ask the operational questions a deployment twin will need answered
continuously:

* **in-doubt residency** — how long did a (txn, node) pair sit in the
  PREPARED window where a coordinator failure blocks it (paper §2's
  central operational hazard)?  Windows longer than the threshold, or
  still open when the journal ends, are findings.
* **lock-wait burn** — lock requests that waited longer than the
  threshold between parking (``wait``) and ``grant``, or that were
  never granted at all.
* **orphaned spans** — messages sent but never delivered, and
  transactions whose last recorded state at some node is not settled
  when the journal ends.
* **unacked forces** — forced log writes whose ``harden`` (the I/O
  completion ack) never arrived.

:meth:`Watchdog.scan` runs over any entry sequence;
:meth:`Watchdog.attach` runs the same detectors live by carrying an
internal :class:`~repro.obs.journal.JournalRecorder`.  Findings feed
:class:`~repro.obs.report.RunReport` and
:func:`prometheus_text` — a text-exposition snapshot in the format the
future TCP transport will serve on a metrics port.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.journal import (SETTLED_STATES, JournalEntry,
                               JournalRecorder)

#: Detector names, in report order (all always appear in the
#: Prometheus exposition, zero-valued when quiet).  ``link_down`` is an
#: external detector: the transport reports it via
#: :meth:`Watchdog.record_external` when a supervised link exhausts its
#: reconnect backoff budget.
DETECTORS = ("in_doubt", "lock_wait", "orphan", "unacked_force",
             "link_down")

#: PREPARED is the in-doubt window (repro.core.states.TxnState).
_IN_DOUBT_STATE = "prepared"


class WatchdogFinding:
    """One detector firing: where, when, and by how much."""

    __slots__ = ("detector", "txn", "node", "at", "message", "value")

    def __init__(self, detector: str, txn: Optional[str], node: str,
                 at: float, message: str,
                 value: Optional[float] = None) -> None:
        self.detector = detector
        self.txn = txn
        self.node = node
        self.at = at
        self.message = message
        self.value = value

    def describe(self) -> str:
        where = f"txn {self.txn} @ {self.node}" if self.txn else self.node
        return f"[{self.detector}] {where}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"detector": self.detector, "txn": self.txn,
                "node": self.node, "at": self.at,
                "message": self.message, "value": self.value}

    def __repr__(self) -> str:
        return f"<WatchdogFinding {self.describe()}>"


class Watchdog:
    """Threshold-configured detectors over journal entries.

    ``in_doubt_threshold`` / ``lock_wait_threshold`` are sim-time
    durations; windows at least that long fire.  Windows still open
    when the journal ends always fire — an unresolved in-doubt txn or
    an ungranted lock is a finding at any duration.
    """

    def __init__(self, in_doubt_threshold: float = 50.0,
                 lock_wait_threshold: float = 50.0) -> None:
        self.in_doubt_threshold = in_doubt_threshold
        self.lock_wait_threshold = lock_wait_threshold
        self._recorder: Optional[JournalRecorder] = None
        self._external: List[WatchdogFinding] = []

    # ------------------------------------------------------------------
    # Live mode
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "Watchdog":
        """Record live through an internal journal recorder."""
        if self._recorder is None:
            self._recorder = JournalRecorder()
        self._recorder.attach(cluster)
        return self

    def detach(self) -> None:
        if self._recorder is not None:
            self._recorder.detach()

    @property
    def attached(self) -> bool:
        return self._recorder is not None and self._recorder.attached

    def findings(self) -> List[WatchdogFinding]:
        """Scan the live recorder's journal so far."""
        if self._recorder is None:
            return []
        return self.scan(self._recorder.entries())

    def entries(self) -> List[JournalEntry]:
        return self._recorder.entries() if self._recorder else []

    def record_external(self, finding: WatchdogFinding) -> None:
        """File a finding from outside the journal (e.g. the transport
        reporting a link whose reconnect loop gave up).  External
        findings merge into every subsequent :meth:`scan`."""
        if finding.detector not in DETECTORS:
            raise ValueError(f"unknown detector {finding.detector!r}")
        self._external.append(finding)

    # ------------------------------------------------------------------
    # Detectors
    # ------------------------------------------------------------------
    def scan(self, entries: Sequence[JournalEntry],
             end_time: Optional[float] = None) -> List[WatchdogFinding]:
        """Run all four detectors; findings ordered by (at, detector)."""
        entries = list(entries)
        if end_time is None:
            end_time = max((e.t for e in entries), default=0.0)
        findings: List[WatchdogFinding] = []
        findings += self._scan_in_doubt(entries, end_time)
        findings += self._scan_lock_wait(entries, end_time)
        findings += self._scan_orphans(entries, end_time)
        findings += self._scan_unacked_forces(entries, end_time)
        findings += self._external
        findings.sort(key=lambda f: (f.at, DETECTORS.index(f.detector),
                                     f.node, f.txn or ""))
        return findings

    def _scan_in_doubt(self, entries, end_time) -> List[WatchdogFinding]:
        opened: Dict[Tuple[str, str], float] = {}
        out: List[WatchdogFinding] = []
        for entry in entries:
            if entry.kind != "transition" or entry.txn is None:
                continue
            key = (entry.txn, entry.node)
            if entry.ref == _IN_DOUBT_STATE:
                opened.setdefault(key, entry.t)
            elif key in opened:
                start = opened.pop(key)
                residency = entry.t - start
                if residency >= self.in_doubt_threshold:
                    out.append(WatchdogFinding(
                        "in_doubt", entry.txn, entry.node, entry.t,
                        f"in-doubt for {residency:g} "
                        f"(threshold {self.in_doubt_threshold:g})",
                        residency))
        for (txn, node), start in sorted(opened.items()):
            out.append(WatchdogFinding(
                "in_doubt", txn, node, end_time,
                f"still in doubt at journal end (since t={start:g})",
                end_time - start))
        return out

    def _scan_lock_wait(self, entries, end_time) -> List[WatchdogFinding]:
        waiting: Dict[Tuple[str, str, str], float] = {}
        out: List[WatchdogFinding] = []
        for entry in entries:
            if entry.txn is None or entry.ref is None:
                continue
            key = (entry.node, entry.txn, entry.ref)
            if entry.kind == "wait":
                waiting.setdefault(key, entry.t)
            elif entry.kind == "grant" and key in waiting:
                start = waiting.pop(key)
                burn = entry.t - start
                if burn >= self.lock_wait_threshold:
                    out.append(WatchdogFinding(
                        "lock_wait", entry.txn, entry.node, entry.t,
                        f"waited {burn:g} for lock {entry.ref!r} "
                        f"(threshold {self.lock_wait_threshold:g})",
                        burn))
        for (node, txn, key), start in sorted(waiting.items()):
            out.append(WatchdogFinding(
                "lock_wait", txn, node, end_time,
                f"lock {key!r} never granted (waiting since "
                f"t={start:g})", end_time - start))
        return out

    def _scan_orphans(self, entries, end_time) -> List[WatchdogFinding]:
        out: List[WatchdogFinding] = []
        sends: Dict[int, JournalEntry] = {
            e.eid: e for e in entries if e.kind == "send"}
        for entry in entries:
            if entry.kind != "deliver":
                continue
            for parent in entry.parents:
                sends.pop(parent, None)
        for eid in sorted(sends):
            send = sends[eid]
            out.append(WatchdogFinding(
                "orphan", send.txn, send.node, send.t,
                f"{send.ref} to {send.peer} sent at t={send.t:g} "
                "never delivered"))
        last_state: Dict[Tuple[str, str], JournalEntry] = {}
        for entry in entries:
            if entry.kind == "transition" and entry.txn is not None:
                last_state[(entry.txn, entry.node)] = entry
        for (txn, node), entry in sorted(last_state.items()):
            if entry.ref not in SETTLED_STATES:
                out.append(WatchdogFinding(
                    "orphan", txn, node, end_time,
                    f"span left open: last state {entry.ref!r} "
                    f"at t={entry.t:g}"))
        return out

    def _scan_unacked_forces(self, entries, end_time
                             ) -> List[WatchdogFinding]:
        pending: Dict[Tuple[str, int], JournalEntry] = {}
        for entry in entries:
            if entry.kind == "write" and entry.forced:
                pending[(entry.node, entry.lsn)] = entry
            elif entry.kind == "harden":
                pending.pop((entry.node, entry.lsn), None)
        out: List[WatchdogFinding] = []
        for (node, lsn), write in sorted(pending.items()):
            out.append(WatchdogFinding(
                "unacked_force", write.txn, node, end_time,
                f"forced {write.ref} (lsn {lsn}) written at "
                f"t={write.t:g} never hardened"))
        return out


# ----------------------------------------------------------------------
# Prometheus-style text exposition
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def prometheus_text(entries: Sequence[JournalEntry],
                    findings: Sequence[WatchdogFinding] = (),
                    prefix: str = "repro") -> str:
    """Render journal + watchdog state in Prometheus text exposition.

    This is the snapshot format a live transport twin will serve from
    a metrics endpoint: entry counters by kind, finding counters by
    detector (all detectors present, zero when quiet), and the
    journal's last timestamp as a gauge.
    """
    by_kind: Dict[str, int] = {}
    last_time = 0.0
    for entry in entries:
        by_kind[entry.kind] = by_kind.get(entry.kind, 0) + 1
        if entry.t > last_time:
            last_time = entry.t
    by_detector = {name: 0 for name in DETECTORS}
    for finding in findings:
        by_detector[finding.detector] = \
            by_detector.get(finding.detector, 0) + 1

    lines = [
        f"# HELP {prefix}_journal_entries_total Journal entries "
        "recorded, by kind.",
        f"# TYPE {prefix}_journal_entries_total counter",
    ]
    for kind in sorted(by_kind):
        lines.append(f'{prefix}_journal_entries_total'
                     f'{{kind="{_escape_label(kind)}"}} {by_kind[kind]}')
    lines += [
        f"# HELP {prefix}_watchdog_findings_total Watchdog findings, "
        "by detector.",
        f"# TYPE {prefix}_watchdog_findings_total counter",
    ]
    for detector in DETECTORS:
        lines.append(f'{prefix}_watchdog_findings_total'
                     f'{{detector="{detector}"}} {by_detector[detector]}')
    lines += [
        f"# HELP {prefix}_journal_last_time Sim time of the newest "
        "journal entry.",
        f"# TYPE {prefix}_journal_last_time gauge",
        f"{prefix}_journal_last_time {last_time:g}",
    ]
    return "\n".join(lines) + "\n"
