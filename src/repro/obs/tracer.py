"""SpanTracer: turns cluster hooks into per-transaction span trees.

The tracer attaches to a :class:`~repro.core.cluster.Cluster` and
listens on the observability hooks the substrates expose:

====================  ==============================================
hook                  span activity
====================  ==============================================
node.on_transition    open/close the root txn span and phase spans
log.on_write          open a log-force span for each forced record
log.on_flush          close log-force spans as records harden
network.on_send       open a message-wait span at the sender
network.on_deliver    close it at the receiver
node.on_note          attach protocol notes as point events
====================  ==============================================

All hooks are list-append installs, so an unattached cluster pays
nothing — the hook lists stay empty and the kernel's ``if hooks:``
fast paths skip them.

The span tree for one committed transaction (Figure 2's Presumed
Abort flow) looks like::

    txn T1 @Coord
      prepare @Coord              (PREPARING: prepares out, votes in)
        msg:prepare @Coord        (wait for delivery at Sub1)
        msg:prepare @Coord
      prepare @Sub1               (vote deliberation at the subordinate)
        log-force:prepared @Sub1
        msg:vote-yes @Sub1
      ...
      commit @Coord               (COMMITTING: decision out, acks in)
        log-force:committed @Coord
        msg:commit @Coord
      commit @Sub1
        log-force:committed @Sub1
        msg:ack @Sub1
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.states import TxnState
from repro.obs.span import (KIND_LOG, KIND_MESSAGE, KIND_PHASE, KIND_TXN,
                            Span)

#: States that open a named phase span on the node entering them.
#: States not listed (ACTIVE, COMMITTED, ABORTED, FORGOTTEN,
#: READ_ONLY_DONE) only close whatever phase was running.
PHASE_OF_STATE: Dict[TxnState, str] = {
    TxnState.PREPARING: "prepare",
    TxnState.PREPARED: "in-doubt",
    TxnState.COMMITTING: "commit",
    TxnState.ABORTING: "abort",
    TxnState.HEURISTIC_COMMITTED: "heuristic",
    TxnState.HEURISTIC_ABORTED: "heuristic",
}

#: Root-node states at which the transaction span ends (the commit
#: protocol is over from the application's point of view).
ROOT_FINAL_STATES = frozenset({
    TxnState.FORGOTTEN,
    TxnState.READ_ONLY_DONE,
})


class SpanTracer:
    """Collects spans from one cluster.  Attach, run, export."""

    def __init__(self) -> None:
        self.cluster = None
        self.spans: List[Span] = []
        self._next_id = 1
        self._roots: Dict[str, Span] = {}                # txn -> root span
        self._phases: Dict[Tuple[str, str], Span] = {}   # (txn, node) -> span
        self._forces: Dict[Tuple[int, int], Span] = {}   # (log id, lsn)
        self._messages: Dict[int, Span] = {}             # msg_id -> span
        self._installed: List[Tuple[list, object]] = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "SpanTracer":
        """Install hooks on every node, log and the network.

        Attaching twice to the same cluster is a no-op; attaching to a
        different cluster while still attached is an error (detach
        first).
        """
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("SpanTracer is already attached to a "
                               "different cluster; detach() first")
        self.cluster = cluster

        def install(hook_list: list, hook) -> None:
            hook_list.append(hook)
            self._installed.append((hook_list, hook))

        install(cluster.network.on_send, self._on_send)
        install(cluster.network.on_deliver, self._on_deliver)
        for node in cluster.nodes.values():
            install(node.on_transition, self._on_transition)
            install(node.on_note, self._on_note)
            seen_logs = set()
            for rm in [node] + node.all_rms():
                log = rm.log
                if id(log) in seen_logs:
                    continue
                seen_logs.add(id(log))
                install(log.on_write, self._on_write)
                install(log.on_flush, self._on_flush)
        return self

    def detach(self) -> None:
        """Remove every installed hook (idempotent)."""
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass
        self._installed = []
        self.cluster = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    # ------------------------------------------------------------------
    # Span bookkeeping
    # ------------------------------------------------------------------
    @property
    def _now(self) -> float:
        return self.cluster.simulator.now if self.cluster else 0.0

    def _open(self, name: str, kind: str, node: str, txn_id: str,
              parent: Optional[Span]) -> Span:
        span = Span(span_id=self._next_id, name=name, kind=kind, node=node,
                    txn_id=txn_id, start=self._now,
                    parent_id=parent.span_id if parent else None)
        self._next_id += 1
        self.spans.append(span)
        return span

    def _parent_for(self, txn_id: str, node: str) -> Optional[Span]:
        """The open phase on this node, else the txn root span."""
        phase = self._phases.get((txn_id, node))
        if phase is not None:
            return phase
        return self._roots.get(txn_id)

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_transition(self, node: str, txn_id: str,
                       old: Optional[TxnState], new: TxnState) -> None:
        now = self._now
        context = self.cluster.nodes[node].ctx(txn_id)
        # Root txn span: opened when the commit coordinator first
        # creates the context.  Restart recovery also rebuilds parentless
        # contexts, so only the first one becomes the root.
        if old is None and context is not None and context.parent is None \
                and txn_id not in self._roots:
            root = self._open(f"txn {txn_id}", KIND_TXN, node, txn_id,
                              parent=None)
            root.attributes["coordinator"] = node
            self._roots[txn_id] = root

        phase = self._phases.pop((txn_id, node), None)
        if phase is not None:
            phase.close(now)

        name = PHASE_OF_STATE.get(new)
        if name is not None:
            span = self._open(name, KIND_PHASE, node, txn_id,
                              parent=self._roots.get(txn_id))
            span.attributes["state"] = new.value
            self._phases[(txn_id, node)] = span

        root = self._roots.get(txn_id)
        if root is not None and not root.finished:
            if new in (TxnState.COMMITTED, TxnState.ABORTED,
                       TxnState.HEURISTIC_COMMITTED,
                       TxnState.HEURISTIC_ABORTED) \
                    and node == root.node:
                root.attributes.setdefault("outcome", new.value)
            if new in ROOT_FINAL_STATES and node == root.node:
                root.close(now)

    def _on_write(self, record) -> None:
        if not record.forced:
            return
        span = self._open(f"log-force:{record.record_type.value}",
                          KIND_LOG, record.node, record.txn_id,
                          parent=self._parent_for(record.txn_id,
                                                  record.node))
        span.attributes["lsn"] = record.lsn
        self._forces[(id_of_log(record), record.lsn)] = span

    def _on_flush(self, durable) -> None:
        now = self._now
        for record in durable:
            span = self._forces.pop((id_of_log(record), record.lsn), None)
            if span is not None:
                span.close(now)

    def _on_send(self, message) -> None:
        span = self._open(f"msg:{message.msg_type.value}", KIND_MESSAGE,
                          message.src, message.txn_id,
                          parent=self._parent_for(message.txn_id,
                                                  message.src))
        span.attributes["dst"] = message.dst
        self._messages[message.msg_id] = span

    def _on_deliver(self, message) -> None:
        span = self._messages.pop(message.msg_id, None)
        if span is not None:
            span.close(self._now)

    def _on_note(self, node: str, txn_id: str, text: str) -> None:
        target = self._parent_for(txn_id, node)
        if target is not None:
            target.add_event(self._now, f"{node}: {text}")

    # ------------------------------------------------------------------
    # Finishing and queries
    # ------------------------------------------------------------------
    def finish(self) -> List[Span]:
        """Close every still-open span at the current virtual time.

        Messages lost to partitions/crashes and phases interrupted by a
        crash leave open spans; closing them at ``finish()`` time keeps
        exports well-formed while their duration still shows the stall.
        """
        now = self._now
        for span in self.spans:
            span.close(now)
        self._phases.clear()
        self._forces.clear()
        self._messages.clear()
        return self.spans

    def spans_for(self, txn_id: str) -> List[Span]:
        return [s for s in self.spans if s.txn_id == txn_id]

    def txn_ids(self) -> List[str]:
        seen: List[str] = []
        for span in self.spans:
            if span.txn_id not in seen:
                seen.append(span.txn_id)
        return seen

    def phase_durations(self) -> Dict[str, List[float]]:
        """Completed phase-span durations grouped by phase name."""
        out: Dict[str, List[float]] = {}
        for span in self.spans:
            if span.kind == KIND_PHASE and span.end is not None:
                out.setdefault(span.name, []).append(span.duration)
        return out


def id_of_log(record) -> int:
    """Key log-force spans by the record's owning log.

    LSNs restart per log manager, so (node-name, lsn) would collide
    between a TM log and a detached RM's private log on the same node.
    ``record.node`` is unique per log manager (detached own-log RMs get
    a ``node/rm`` name), so hashing it keys the force map safely.
    """
    return hash(record.node)
