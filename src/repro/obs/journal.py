"""Flight-recorder journal: the canonical record of one run's schedule.

The simulator is deterministic, so *everything the paper's cost model
counts* — message flows, log writes, forced writes, lock holds — can
be captured as an append-only, causally-ordered event journal and
replayed as an oracle: two runs that are supposed to be equivalent
(wheel vs heap scheduler, serial vs parallel sweep shards, a live
transport vs its simulated twin) must produce journals that the
:mod:`repro.obs.diff` differ finds equivalent, and any divergence is
localized to the first causally-divergent event.

One journal entry is emitted per observable action, with a **stable
id** (``eid``, dense emission order) and **causal parent ids**:

==========  =========================================================
kind        meaning / causal parents
==========  =========================================================
transition  commit-context state change; parents: previous entry at
            this node, plus — at context creation on a cascaded /
            subordinate node — the latest entry of the same txn at
            the parent node (the parent/child txn edge)
send        a flow left ``src``; parent: previous entry at ``src``
deliver     the flow reached ``dst``; parents: its ``send`` entry
            (message edge) and the previous entry at ``dst``
write       a log record was appended; ``forced`` marks force
            requests
harden      the record reached stable storage; parents: its ``write``
            entry (force->ack edge) and the previous entry at the log
wait        a lock request parked in the wait queue
grant       a lock was granted; parent: its ``wait`` entry if any
release     strict-2PL release; parent: its ``grant`` entry
kernel      (opt-in) a simulator event dispatch
==========  =========================================================

Every entry also carries the protocol phase the (txn, node) pair was
in when the action happened, so divergence reports can say *where in
the protocol* two runs forked.

Storage is either a plain list of :class:`JournalEntry` objects or —
``JournalRecorder(columnar=True)`` — a :class:`JournalTape` built on
:mod:`repro.metrics.columns` primitives (interned strings + typed
array buffers, entries materialized lazily).  Serialisation is
schema-versioned JSONL: a header line naming :data:`SCHEMA`, then one
entry per line.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.metrics.columns import FloatColumn, IntColumn, StringInterner

#: Journal wire-format version; bumped on any incompatible change.
SCHEMA = "repro-journal/1"

#: Phase stamped on entries hitting a (txn, node) pair before any
#: commit context exists there (mirrors repro.obs.ledger.IDLE_PHASE).
IDLE_PHASE = "idle"

#: JSONL fields, in serialisation order.
_FIELDS = ("eid", "t", "kind", "node", "txn", "phase", "ref", "peer",
           "lsn", "forced", "parents")

#: (txn, node) protocol states that count as settled for orphan
#: detection — anything else at journal end is an abandoned span.
SETTLED_STATES = frozenset({
    "committed", "aborted", "forgotten", "read-only-done",
    "heuristic-committed", "heuristic-aborted",
})


class JournalEntry:
    """One observable action: stable id, causal parents, location.

    ``ref``/``peer`` are the kind-specific payload: message type and
    destination for ``send``, record type for ``write``/``harden``
    (with ``lsn``/``forced``), lock key and mode for ``wait``/
    ``grant``/``release``, new and old state for ``transition``.
    """

    __slots__ = ("eid", "t", "kind", "node", "txn", "phase", "ref",
                 "peer", "lsn", "forced", "parents")

    def __init__(self, eid: int, t: float, kind: str, node: str,
                 txn: Optional[str], phase: Optional[str],
                 ref: Optional[str] = None, peer: Optional[str] = None,
                 lsn: Optional[int] = None, forced: Optional[bool] = None,
                 parents: Sequence[int] = ()) -> None:
        self.eid = eid
        self.t = t
        self.kind = kind
        self.node = node
        self.txn = txn
        self.phase = phase
        self.ref = ref
        self.peer = peer
        self.lsn = lsn
        self.forced = forced
        self.parents = tuple(parents)

    # ------------------------------------------------------------------
    def signature(self, with_time: bool = True) -> Tuple:
        """What the differ compares: everything but ids and parents."""
        base = (self.kind, self.node, self.txn, self.phase, self.ref,
                self.peer, self.lsn, self.forced)
        return base + (self.t,) if with_time else base

    def describe(self) -> str:
        """One-line human rendering used in diff and watchdog output."""
        parts = [self.kind]
        if self.ref is not None:
            parts.append(self.ref)
        body = ":".join(parts)
        where = f"@{self.node}"
        if self.kind == "send" and self.peer is not None:
            where = f"{self.node}->{self.peer}"
        elif self.kind == "deliver" and self.peer is not None:
            where = f"{self.peer}->{self.node}"
        elif self.peer is not None:
            body += f"({self.peer})"
        extras = []
        if self.lsn is not None:
            extras.append(f"lsn={self.lsn}")
        if self.forced:
            extras.append("forced")
        if self.txn is not None:
            extras.append(f"txn={self.txn}")
        if self.phase is not None:
            extras.append(f"phase={self.phase}")
        extras.append(f"t={self.t:g}")
        return f"{body} {where} [{', '.join(extras)}]"

    def to_dict(self) -> Dict[str, object]:
        return {
            "eid": self.eid, "t": self.t, "kind": self.kind,
            "node": self.node, "txn": self.txn, "phase": self.phase,
            "ref": self.ref, "peer": self.peer, "lsn": self.lsn,
            "forced": self.forced, "parents": list(self.parents),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "JournalEntry":
        return cls(eid=data["eid"], t=data["t"], kind=data["kind"],
                   node=data["node"], txn=data.get("txn"),
                   phase=data.get("phase"), ref=data.get("ref"),
                   peer=data.get("peer"), lsn=data.get("lsn"),
                   forced=data.get("forced"),
                   parents=data.get("parents") or ())

    def __eq__(self, other) -> bool:
        if not isinstance(other, JournalEntry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return f"<JournalEntry #{self.eid} {self.describe()}>"


class JournalTape:
    """Columnar journal storage: one interned/typed column per field.

    Same layout idea as
    :class:`~repro.metrics.columns.ColumnarTraceLog`: strings intern
    to small ints, scalars live in typed array buffers, and variable-
    length parent lists flatten into one int column indexed by a
    per-entry offset column.  Entries materialize lazily on read.
    """

    __slots__ = ("_t", "_kind", "_node", "_txn", "_phase", "_ref",
                 "_peer", "_lsn", "_forced", "_par_flat", "_par_start",
                 "_interner")

    def __init__(self) -> None:
        self._interner = StringInterner()
        self._t = FloatColumn()
        self._kind = IntColumn()
        self._node = IntColumn()
        self._txn = IntColumn()
        self._phase = IntColumn()
        self._ref = IntColumn()
        self._peer = IntColumn()
        self._lsn = IntColumn()      # -1 encodes None
        self._forced = IntColumn()   # -1 none / 0 false / 1 true
        self._par_flat = IntColumn()
        self._par_start = IntColumn()

    def append_fields(self, t: float, kind: str, node: str,
                      txn: Optional[str], phase: Optional[str],
                      ref: Optional[str], peer: Optional[str],
                      lsn: Optional[int], forced: Optional[bool],
                      parents: Sequence[int]) -> None:
        intern = self._interner.intern
        self._t.append(t)
        self._kind.append(intern(kind))
        self._node.append(intern(node))
        self._txn.append(intern(txn))
        self._phase.append(intern(phase))
        self._ref.append(intern(ref))
        self._peer.append(intern(peer))
        self._lsn.append(-1 if lsn is None else lsn)
        self._forced.append(-1 if forced is None else int(forced))
        self._par_start.append(len(self._par_flat))
        for parent in parents:
            self._par_flat.append(parent)

    def _materialize(self, index: int) -> JournalEntry:
        lookup = self._interner.lookup
        start = self._par_start[index]
        end = (self._par_start[index + 1] if index + 1 < len(self._t)
               else len(self._par_flat))
        lsn = self._lsn[index]
        forced = self._forced[index]
        return JournalEntry(
            eid=index, t=self._t[index],
            kind=lookup(self._kind[index]),
            node=lookup(self._node[index]),
            txn=lookup(self._txn[index]),
            phase=lookup(self._phase[index]),
            ref=lookup(self._ref[index]),
            peer=lookup(self._peer[index]),
            lsn=None if lsn < 0 else lsn,
            forced=None if forced < 0 else bool(forced),
            parents=[self._par_flat[i] for i in range(start, end)])

    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self) -> Iterator[JournalEntry]:
        for index in range(len(self._t)):
            yield self._materialize(index)

    def __getitem__(self, index: int) -> JournalEntry:
        if index < 0:
            index += len(self._t)
        if not 0 <= index < len(self._t):
            raise IndexError("journal index out of range")
        return self._materialize(index)


class JournalRecorder:
    """Records a cluster run as a causally-linked journal.

    Attach/detach follow the Tracer contract: attaching twice to the
    same cluster is a no-op, attaching elsewhere while attached
    raises, ``detach()`` removes every installed hook and is
    idempotent.  All installs are list-appends, so an unattached
    cluster pays nothing.

    ``columnar`` stores entries in a :class:`JournalTape` instead of a
    Python list (same entries, array-backed).  ``kernel_events``
    additionally journals every simulator event dispatch (huge —
    debugging only).
    """

    def __init__(self, columnar: bool = False,
                 kernel_events: bool = False) -> None:
        self.cluster = None
        self.columnar = columnar
        self.kernel_events = kernel_events
        self._tape: Optional[JournalTape] = (JournalTape() if columnar
                                             else None)
        self._entries: List[JournalEntry] = []
        self._n = 0
        self._installed: List[Tuple[list, object]] = []
        self._kernel_hook = None
        # Causal bookkeeping.
        self._last_at_site: Dict[str, int] = {}
        self._last_txn_site: Dict[Tuple[str, str], int] = {}
        self._states: Dict[Tuple[str, str], str] = {}
        self._sends: Dict[int, int] = {}          # msg_id -> send eid
        self._writes: Dict[Tuple[str, int], int] = {}  # (site, lsn) -> eid
        self._waits: Dict[Tuple[str, str, str], int] = {}
        self._grants: Dict[Tuple[str, str, str], int] = {}

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "JournalRecorder":
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("JournalRecorder is already attached to a "
                               "different cluster; detach() first")
        self.cluster = cluster

        def install(hook_list: list, hook) -> None:
            hook_list.append(hook)
            self._installed.append((hook_list, hook))

        install(cluster.network.on_send, self._on_send)
        install(cluster.network.on_deliver, self._on_deliver)
        for node in cluster.nodes.values():
            install(node.on_transition, self._on_transition)
            seen_logs = set()
            for rm in [node] + node.all_rms():
                log = getattr(rm, "log", None)
                if log is None or id(log) in seen_logs:
                    continue
                seen_logs.add(id(log))
                install(log.on_write, self._on_write)
                install(log.on_flush, self._on_flush)
            for rm in node.all_rms():
                locks = rm.locks
                node_name = node.name

                def on_wait(txn_id, key, mode, _node=node_name):
                    self._on_wait(_node, txn_id, key, mode)

                def on_grant(txn_id, key, mode, _node=node_name):
                    self._on_grant(_node, txn_id, key, mode)

                def on_release(txn_id, key, _node=node_name):
                    self._on_release(_node, txn_id, key)

                install(locks.on_wait, on_wait)
                install(locks.on_grant, on_grant)
                install(locks.on_release, on_release)
        if self.kernel_events:
            def on_event(event) -> None:
                self._on_kernel(event)
            self._kernel_hook = on_event
            cluster.simulator.add_event_hook(on_event)
        return self

    def detach(self) -> None:
        """Remove every installed hook (idempotent)."""
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass
        self._installed = []
        if self.cluster is not None and self._kernel_hook is not None:
            self.cluster.simulator.remove_event_hook(self._kernel_hook)
        self._kernel_hook = None
        self.cluster = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    @property
    def _now(self) -> float:
        return self.cluster.simulator.now if self.cluster else 0.0

    def _emit(self, kind: str, site: str, txn: Optional[str],
              phase: Optional[str], ref: Optional[str] = None,
              peer: Optional[str] = None, lsn: Optional[int] = None,
              forced: Optional[bool] = None,
              extra_parents: Sequence[Optional[int]] = ()) -> int:
        eid = self._n
        parents: List[int] = []
        previous = self._last_at_site.get(site)
        if previous is not None:
            parents.append(previous)
        for parent in extra_parents:
            if parent is not None and parent not in parents:
                parents.append(parent)
        if self._tape is not None:
            self._tape.append_fields(self._now, kind, site, txn, phase,
                                     ref, peer, lsn, forced, parents)
        else:
            self._entries.append(JournalEntry(
                eid=eid, t=self._now, kind=kind, node=site, txn=txn,
                phase=phase, ref=ref, peer=peer, lsn=lsn, forced=forced,
                parents=parents))
        self._n = eid + 1
        self._last_at_site[site] = eid
        if txn is not None:
            self._last_txn_site[(txn, site)] = eid
        return eid

    def _phase(self, txn: Optional[str], site: str) -> str:
        # Detached own-log RMs journal under "node/rm"; protocol state
        # lives at the owning node.
        node = site.split("/", 1)[0]
        return self._states.get((txn, node), IDLE_PHASE)

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_transition(self, node: str, txn_id: str, old, new) -> None:
        extra: List[Optional[int]] = []
        if old is None:
            # Context creation: link the parent/child txn edge so the
            # causal DAG shows who enrolled this node.
            context = self.cluster.nodes[node].ctx(txn_id)
            parent_node = getattr(context, "parent", None)
            if parent_node is not None:
                extra.append(self._last_txn_site.get((txn_id, parent_node)))
        self._states[(txn_id, node)] = new.value
        self._emit("transition", node, txn_id, new.value, ref=new.value,
                   peer=old.value if old is not None else None,
                   extra_parents=extra)

    def _on_send(self, message) -> None:
        eid = self._emit("send", message.src, message.txn_id,
                         self._phase(message.txn_id, message.src),
                         ref=message.msg_type.value, peer=message.dst)
        self._sends[message.msg_id] = eid

    def _on_deliver(self, message) -> None:
        self._emit("deliver", message.dst, message.txn_id,
                   self._phase(message.txn_id, message.dst),
                   ref=message.msg_type.value, peer=message.src,
                   extra_parents=[self._sends.pop(message.msg_id, None)])

    def _on_write(self, record) -> None:
        site = record.node
        eid = self._emit("write", site, record.txn_id,
                         self._phase(record.txn_id, site),
                         ref=record.record_type.value, lsn=record.lsn,
                         forced=record.forced)
        self._writes[(site, record.lsn)] = eid

    def _on_flush(self, durable) -> None:
        for record in durable:
            site = record.node
            self._emit("harden", site, record.txn_id,
                       self._phase(record.txn_id, site),
                       ref=record.record_type.value, lsn=record.lsn,
                       extra_parents=[
                           self._writes.pop((site, record.lsn), None)])

    def _on_wait(self, node: str, txn_id: str, key: str, mode) -> None:
        eid = self._emit("wait", node, txn_id, self._phase(txn_id, node),
                         ref=key, peer=getattr(mode, "value", str(mode)))
        self._waits[(node, txn_id, key)] = eid

    def _on_grant(self, node: str, txn_id: str, key: str, mode) -> None:
        eid = self._emit("grant", node, txn_id, self._phase(txn_id, node),
                         ref=key, peer=getattr(mode, "value", str(mode)),
                         extra_parents=[
                             self._waits.pop((node, txn_id, key), None)])
        self._grants[(node, txn_id, key)] = eid

    def _on_release(self, node: str, txn_id: str, key: str) -> None:
        self._emit("release", node, txn_id, self._phase(txn_id, node),
                   ref=key,
                   extra_parents=[
                       self._grants.pop((node, txn_id, key), None)])

    def _on_kernel(self, event) -> None:
        self._emit("kernel", "kernel", None, None,
                   ref=getattr(event, "name", "") or "event")

    # ------------------------------------------------------------------
    # Queries / export
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._n

    def entries(self) -> List[JournalEntry]:
        """The journal as entry objects (materialized when columnar)."""
        if self._tape is not None:
            return list(self._tape)
        return list(self._entries)

    def to_jsonl(self, meta: Optional[Dict[str, object]] = None) -> str:
        return journal_to_jsonl(self.entries(), meta=meta)


# ----------------------------------------------------------------------
# Serialisation
# ----------------------------------------------------------------------
def journal_to_jsonl(entries: Sequence[JournalEntry],
                     meta: Optional[Dict[str, object]] = None) -> str:
    """Header line + one JSON object per entry, in eid order."""
    header = {"schema": SCHEMA, "meta": dict(meta or {})}
    lines = [json.dumps(header, sort_keys=True)]
    for entry in sorted(entries, key=lambda e: e.eid):
        lines.append(json.dumps(entry.to_dict(), sort_keys=True,
                                separators=(",", ":")))
    return "\n".join(lines)


def journal_from_jsonl(text: str
                       ) -> Tuple[Dict[str, object], List[JournalEntry]]:
    """Parse a journal; returns (meta, entries).

    Raises :class:`ValueError` naming the offending line for malformed
    JSON, missing fields, or an unsupported schema version.
    """
    meta: Optional[Dict[str, object]] = None
    entries: List[JournalEntry] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {lineno}: invalid JSON: {error}")
        if meta is None:
            schema = data.get("schema")
            if schema != SCHEMA:
                raise ValueError(
                    f"line {lineno}: unsupported journal schema "
                    f"{schema!r} (this reader handles {SCHEMA!r})")
            meta = dict(data.get("meta") or {})
            continue
        missing = [f for f in ("eid", "t", "kind", "node")
                   if f not in data]
        if missing:
            raise ValueError(f"line {lineno}: journal entry missing "
                             f"field(s) {', '.join(missing)}")
        entries.append(JournalEntry.from_dict(data))
    if meta is None:
        raise ValueError("empty journal: no schema header line")
    return meta, entries


def normalize_txn_ids(entries: Sequence[JournalEntry]
                      ) -> List[JournalEntry]:
    """Rewrite txn ids to ``t0, t1, ...`` by first appearance.

    Transaction ids draw from a process-global counter, so two
    recordings of the same workload in one process name their
    transactions differently; normalizing makes such journals
    comparable.  Returns new entries; the input is left untouched.
    """
    alias: Dict[str, str] = {}
    out: List[JournalEntry] = []
    for entry in entries:
        txn = entry.txn
        if txn is not None:
            short = alias.get(txn)
            if short is None:
                short = f"t{len(alias)}"
                alias[txn] = short
            txn = short
        out.append(JournalEntry(
            eid=entry.eid, t=entry.t, kind=entry.kind, node=entry.node,
            txn=txn, phase=entry.phase, ref=entry.ref, peer=entry.peer,
            lsn=entry.lsn, forced=entry.forced, parents=entry.parents))
    return out
