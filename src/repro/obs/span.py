"""The span model: OTel-style timed intervals forming per-txn trees.

A :class:`Span` is a named interval of virtual time on one node,
attributed to one transaction, with a parent span, free-form
attributes, and point-in-time events.  The :class:`~repro.obs.tracer.
SpanTracer` emits, per transaction:

* one **root transaction span** at the commit coordinator;
* **phase spans** per node (``prepare``, ``in-doubt``, ``commit``,
  ``abort``, ``heuristic``) bounded by the protocol state machine's
  transitions;
* **log-force spans** (force requested -> record durable) and
  **message-wait spans** (sent -> delivered) as children of whichever
  phase was open on that node.

This module also holds the serialisers: JSONL for diffing/persisting,
and the Chrome ``trace_event`` format so a trace drops straight into
``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence, Tuple

#: Span kinds (the ``kind`` attribute; coarser than names).
KIND_TXN = "txn"
KIND_PHASE = "phase"
KIND_LOG = "log-force"
KIND_MESSAGE = "message"


class Span:
    """One timed interval of work, part of a per-transaction tree."""

    __slots__ = ("span_id", "parent_id", "name", "kind", "node", "txn_id",
                 "start", "end", "attributes", "events")

    def __init__(self, span_id: int, name: str, kind: str, node: str,
                 txn_id: str, start: float,
                 parent_id: Optional[int] = None) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.node = node
        self.txn_id = txn_id
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, object] = {}
        self.events: List[Tuple[float, str]] = []

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def close(self, at_time: float) -> None:
        if self.end is None:
            self.end = at_time

    def add_event(self, at_time: float, text: str) -> None:
        self.events.append((at_time, text))

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "node": self.node,
            "txn_id": self.txn_id,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
            "events": [[t, text] for t, text in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Span":
        span = cls(span_id=data["span_id"], name=data["name"],
                   kind=data["kind"], node=data["node"],
                   txn_id=data["txn_id"], start=data["start"],
                   parent_id=data.get("parent_id"))
        span.end = data.get("end")
        span.attributes = dict(data.get("attributes") or {})
        span.events = [(t, text) for t, text in data.get("events") or []]
        return span

    def __repr__(self) -> str:
        timing = (f"{self.start:.2f}..{self.end:.2f}"
                  if self.end is not None else f"{self.start:.2f}..open")
        return (f"<Span #{self.span_id} {self.name} {self.kind} "
                f"{self.txn_id}@{self.node} [{timing}]>")


# ----------------------------------------------------------------------
# Serialisation of span collections
# ----------------------------------------------------------------------
def spans_to_jsonl(spans: Sequence[Span]) -> str:
    """One JSON object per line, in span-id order."""
    ordered = sorted(spans, key=lambda s: s.span_id)
    return "\n".join(json.dumps(span.to_dict(), sort_keys=True)
                     for span in ordered)


def spans_from_jsonl(text: str) -> List[Span]:
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {lineno}: invalid JSON: {error}")
        try:
            spans.append(Span.from_dict(data))
        except (KeyError, TypeError) as error:
            raise ValueError(f"line {lineno}: invalid span: {error}")
    return spans


def spans_to_chrome(spans: Sequence[Span],
                    time_scale: float = 1000.0) -> Dict[str, object]:
    """Spans as a Chrome ``trace_event`` JSON document.

    One virtual time unit maps to ``time_scale`` trace microseconds
    (default 1000, i.e. 1 unit = 1ms on the viewer's axis).  Each
    transaction becomes a "process" and each node a "thread" within
    it, so the viewer groups the tree the way the paper's figures do:
    one lane per participant.  Unfinished spans become instant events.
    """
    events: List[Dict[str, object]] = []
    txn_pids: Dict[str, int] = {}
    tids: Dict[Tuple[int, str], int] = {}
    for span in sorted(spans, key=lambda s: s.span_id):
        pid = txn_pids.setdefault(span.txn_id, len(txn_pids) + 1)
        tid_key = (pid, span.node)
        tid = tids.setdefault(tid_key, len(tids) + 1)
        args: Dict[str, object] = {"txn_id": span.txn_id,
                                   "node": span.node,
                                   "span_id": span.span_id}
        args.update(span.attributes)
        base = {"name": span.name, "cat": span.kind, "pid": pid,
                "tid": tid, "ts": span.start * time_scale, "args": args}
        if span.end is None:
            events.append({**base, "ph": "i", "s": "t"})
        else:
            events.append({**base, "ph": "X",
                           "dur": (span.end - span.start) * time_scale})
        for at_time, text in span.events:
            events.append({"name": text, "cat": "event", "ph": "i",
                           "s": "t", "pid": pid, "tid": tid,
                           "ts": at_time * time_scale,
                           "args": {"txn_id": span.txn_id,
                                    "node": span.node}})
    for txn_id, pid in txn_pids.items():
        events.append({"name": "process_name", "ph": "M", "pid": pid,
                       "tid": 0, "args": {"name": f"txn {txn_id}"}})
    for (pid, node), tid in tids.items():
        events.append({"name": "thread_name", "ph": "M", "pid": pid,
                       "tid": tid, "args": {"name": node}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


# ----------------------------------------------------------------------
# Tree assembly and rendering
# ----------------------------------------------------------------------
def build_tree(spans: Sequence[Span]
               ) -> Tuple[List[Span], Dict[int, List[Span]]]:
    """(roots, children-by-parent-id), both in span-id order."""
    children: Dict[int, List[Span]] = {}
    roots: List[Span] = []
    by_id = {span.span_id: span for span in spans}
    for span in sorted(spans, key=lambda s: s.span_id):
        if span.parent_id is not None and span.parent_id in by_id:
            children.setdefault(span.parent_id, []).append(span)
        else:
            roots.append(span)
    return roots, children


def render_span_tree(spans: Sequence[Span],
                     include_events: bool = False) -> str:
    """Indented text rendering of the span forest (CLI ``--format
    spans``)."""
    roots, children = build_tree(spans)
    lines: List[str] = []

    def describe(span: Span) -> str:
        if span.end is None:
            timing = f"{span.start:8.2f} ..    open"
        else:
            timing = (f"{span.start:8.2f} +{span.end - span.start:7.2f}")
        extras = ""
        if span.attributes:
            parts = [f"{k}={v}" for k, v in sorted(span.attributes.items())]
            extras = "  {" + ", ".join(parts) + "}"
        return f"[{timing}] {span.name} @{span.node}{extras}"

    def walk(span: Span, depth: int) -> None:
        lines.append("  " * depth + describe(span))
        if include_events:
            for at_time, text in span.events:
                lines.append("  " * (depth + 1) +
                             f"[{at_time:8.2f}] * {text}")
        for child in children.get(span.span_id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
