"""`repro-2pc top`: a terminal dashboard over a running (or recorded)
cluster.

One snapshot type, two sources.  :meth:`TopSnapshot.from_admin` is
built from the admin plane's ``/status`` + ``/indoubt`` JSON — the
live path, polled by ``repro-2pc top --connect``.  :meth:`TopSnapshot.
from_journal` derives the same picture from a flight-recorder journal
(``repro-2pc top --journal``), so simulated runs get the identical
dashboard without a server.

The dashboard answers the paper's operator questions at a glance:
what is in flight, what is stuck in the in-doubt window (and holding
which locks, for how long), where lock-wait time is burning, what the
watchdogs flagged, and how the commit/abort split looks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.journal import SETTLED_STATES, JournalEntry
from repro.obs.watchdog import Watchdog, WatchdogFinding

_IN_DOUBT_STATE = "prepared"

#: Transition refs that settle a transaction, mapped to the outcome
#: bucket the dashboard reports.
_OUTCOME_OF_STATE = {
    "committed": "commit",
    "aborted": "abort",
    "heuristic-committed": "heuristic-commit",
    "heuristic-aborted": "heuristic-abort",
}


class TopSnapshot:
    """Everything one refresh of the dashboard shows."""

    def __init__(self, source: str, at: float,
                 outcomes: Optional[Dict[str, int]] = None,
                 completed: int = 0, open_txns: int = 0,
                 in_doubt: Sequence[Dict[str, object]] = (),
                 lock_waiters: int = 0, lock_wait_count: int = 0,
                 lock_wait_total: float = 0.0,
                 findings: Sequence[Dict[str, object]] = (),
                 frames: Optional[Dict[str, int]] = None,
                 heuristics: int = 0, damaged: int = 0,
                 accepting: bool = True,
                 nodes: Sequence[str] = ()) -> None:
        self.source = source
        self.at = at
        self.outcomes = dict(outcomes or {})
        self.completed = completed
        self.open_txns = open_txns
        #: In-doubt rows as dicts (InDoubtEntry.to_dict shape: node,
        #: txn, coordinator, in_doubt_for, held_keys, phase).
        self.in_doubt = [dict(entry) for entry in in_doubt]
        self.lock_waiters = lock_waiters
        self.lock_wait_count = lock_wait_count
        self.lock_wait_total = lock_wait_total
        #: Watchdog findings as dicts (WatchdogFinding.to_dict shape).
        self.findings = [dict(finding) for finding in findings]
        self.frames = dict(frames or {})
        self.heuristics = heuristics
        self.damaged = damaged
        self.accepting = accepting
        self.nodes = list(nodes)

    # ------------------------------------------------------------------
    # Sources
    # ------------------------------------------------------------------
    @classmethod
    def from_admin(cls, status: Dict[str, object],
                   indoubt: Sequence[Dict[str, object]]) -> "TopSnapshot":
        """Build from the admin plane's ``/status`` and ``/indoubt``."""
        txns = status.get("transactions") or {}
        heur = status.get("heuristics") or {}
        watchdog = status.get("watchdog") or {}
        nodes = status.get("nodes")
        node_names = (sorted(nodes) if isinstance(nodes, dict)
                      else list(nodes or []))
        return cls(
            source="admin",
            at=float(status.get("uptime", 0.0)),
            outcomes=dict(txns.get("outcomes") or {}),
            completed=int(txns.get("completed", 0)),
            open_txns=int(txns.get("open", 0)),
            in_doubt=list(indoubt),
            findings=list(watchdog.get("details") or []),
            frames=dict(status.get("frames") or {}),
            heuristics=int(heur.get("total", 0)),
            damaged=int(heur.get("damaged", 0)),
            accepting=bool(status.get("accepting", True)),
            nodes=node_names,
        )

    @classmethod
    def from_journal(cls, entries: Sequence[JournalEntry],
                     watchdog: Optional[Watchdog] = None
                     ) -> "TopSnapshot":
        """Derive the dashboard from a flight-recorder journal."""
        entries = list(entries)
        end = max((e.t for e in entries), default=0.0)
        last_state: Dict[Tuple[str, str], JournalEntry] = {}
        prepared_at: Dict[Tuple[str, str], float] = {}
        outcome_of: Dict[str, str] = {}
        held: Dict[Tuple[str, str], List[str]] = {}
        waiting: Dict[Tuple[str, str, str], float] = {}
        wait_count = 0
        wait_total = 0.0
        nodes: set = set()
        frames = {"sent": 0, "received": 0}
        for entry in entries:
            nodes.add(entry.node)
            if entry.kind == "transition" and entry.txn is not None:
                key = (entry.txn, entry.node)
                last_state[key] = entry
                if entry.ref == _IN_DOUBT_STATE:
                    prepared_at.setdefault(key, entry.t)
                else:
                    prepared_at.pop(key, None)
                outcome = _OUTCOME_OF_STATE.get(entry.ref or "")
                if outcome is not None and entry.txn not in outcome_of:
                    outcome_of[entry.txn] = outcome
            elif entry.kind == "send":
                frames["sent"] += 1
            elif entry.kind == "deliver":
                frames["received"] += 1
            elif entry.kind == "grant" and entry.txn is not None:
                held.setdefault((entry.node, entry.txn),
                                []).append(entry.ref)
                start = waiting.pop((entry.node, entry.txn, entry.ref),
                                    None)
                if start is not None:
                    wait_count += 1
                    wait_total += entry.t - start
            elif entry.kind == "wait" and entry.txn is not None:
                waiting.setdefault((entry.node, entry.txn, entry.ref),
                                   entry.t)
            elif entry.kind == "release" and entry.txn is not None:
                keys = held.get((entry.node, entry.txn))
                if keys and entry.ref in keys:
                    keys.remove(entry.ref)

        outcomes: Dict[str, int] = {}
        for outcome in outcome_of.values():
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
        open_pairs = [key for key, entry in last_state.items()
                      if entry.ref not in SETTLED_STATES]
        in_doubt = []
        for (txn, node), since in sorted(prepared_at.items()):
            keys = sorted(held.get((node, txn), []))
            in_doubt.append({
                "node": node, "txn": txn, "coordinator": None,
                "in_doubt_for": round(end - since, 6),
                "held_keys": keys, "phase": _IN_DOUBT_STATE,
            })
        findings = (watchdog or Watchdog()).scan(entries, end_time=end)
        return cls(
            source="journal", at=end, outcomes=outcomes,
            completed=len(outcome_of), open_txns=len(open_pairs),
            in_doubt=in_doubt, lock_waiters=len(waiting),
            lock_wait_count=wait_count, lock_wait_total=wait_total,
            findings=[f.to_dict() for f in findings],
            frames=frames, accepting=True,
            heuristics=sum(1 for o in outcome_of.values()
                           if o.startswith("heuristic")),
            nodes=sorted(nodes),
        )


def render_top(snapshot: TopSnapshot, width: int = 78,
               max_rows: int = 10) -> str:
    """Render one snapshot as the ``repro-2pc top`` screen."""
    lines: List[str] = []
    rule = "-" * width

    state = "accepting" if snapshot.accepting else "DRAINING"
    lines.append(f"repro-2pc top · {snapshot.source} · "
                 f"t={snapshot.at:g} · {state}")
    if snapshot.nodes:
        lines.append(f"nodes: {', '.join(snapshot.nodes)}")
    lines.append(rule)

    rate = (snapshot.completed / snapshot.at
            if snapshot.at > 0 else 0.0)
    outcome_bits = [f"{name}={count}" for name, count
                    in sorted(snapshot.outcomes.items())]
    lines.append(f"txns: {snapshot.completed} done "
                 f"({', '.join(outcome_bits) or 'none'}) · "
                 f"{snapshot.open_txns} open · {rate:.2f}/s")
    lines.append(f"heuristics: {snapshot.heuristics} taken, "
                 f"{snapshot.damaged} damaged · frames: "
                 f"{snapshot.frames.get('sent', 0)} sent / "
                 f"{snapshot.frames.get('received', 0)} received")
    mean_wait = (snapshot.lock_wait_total / snapshot.lock_wait_count
                 if snapshot.lock_wait_count else 0.0)
    lines.append(f"lock-wait burn: {snapshot.lock_wait_total:g} total "
                 f"over {snapshot.lock_wait_count} grants "
                 f"(mean {mean_wait:g}) · {snapshot.lock_waiters} "
                 "still waiting")
    lines.append(rule)

    lines.append(f"in-doubt ({len(snapshot.in_doubt)}):")
    if not snapshot.in_doubt:
        lines.append("  (none)")
    for row in snapshot.in_doubt[:max_rows]:
        keys = ", ".join(row.get("held_keys") or []) or "-"
        coord = row.get("coordinator") or "?"
        lines.append(f"  {row.get('txn')}@{row.get('node')} "
                     f"[{row.get('phase', _IN_DOUBT_STATE)}] "
                     f"coord={coord} "
                     f"for={float(row.get('in_doubt_for', 0.0)):g} "
                     f"holding [{keys}]")
    if len(snapshot.in_doubt) > max_rows:
        lines.append(f"  ... and {len(snapshot.in_doubt) - max_rows} "
                     "more")
    lines.append(rule)

    lines.append(f"watchdog findings ({len(snapshot.findings)}):")
    if not snapshot.findings:
        lines.append("  (none)")
    for row in snapshot.findings[:max_rows]:
        where = (f"txn {row.get('txn')} @ {row.get('node')}"
                 if row.get("txn") else str(row.get("node")))
        lines.append(f"  [{row.get('detector')}] {where}: "
                     f"{row.get('message')}")
    if len(snapshot.findings) > max_rows:
        lines.append(f"  ... and {len(snapshot.findings) - max_rows} "
                     "more")
    return "\n".join(lines) + "\n"
