"""Causal (happens-before) DAG reconstruction from a journal.

A :class:`~repro.obs.journal.JournalEntry`'s ``parents`` list encodes
per-site program order plus the cross-site edges the recorder matched
(send->deliver, write->harden, wait->grant->release, parent/child txn
enrollment).  This module turns a flat journal back into that graph so
callers can ask the questions divergence analysis needs: what happened
before what, which chain of events bounded a transaction's latency,
and which events belong to one transaction's causal cone.

Everything here is deterministic: :meth:`CausalGraph.linearize` is a
Kahn topological sort with a ``(t, eid)`` tie-break, so the same
journal always yields the same ordering — a property the differ and
the journal self-check rely on.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.obs.journal import JournalEntry


class CausalGraph:
    """Happens-before DAG over a journal's entries."""

    def __init__(self, entries: Sequence[JournalEntry]) -> None:
        self.by_eid: Dict[int, JournalEntry] = {e.eid: e for e in entries}
        self.children: Dict[int, List[int]] = {e.eid: [] for e in entries}
        for entry in entries:
            for parent in entry.parents:
                if parent in self.children:
                    self.children[parent].append(entry.eid)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.by_eid)

    def entry(self, eid: int) -> JournalEntry:
        return self.by_eid[eid]

    def parents_of(self, eid: int) -> List[int]:
        return [p for p in self.by_eid[eid].parents if p in self.by_eid]

    def roots(self) -> List[int]:
        """Entries with no (known) parents, in eid order."""
        return sorted(eid for eid, entry in self.by_eid.items()
                      if not any(p in self.by_eid for p in entry.parents))

    # ------------------------------------------------------------------
    def ancestors(self, eid: int) -> Set[int]:
        """Every entry that happens-before ``eid`` (excludes itself)."""
        seen: Set[int] = set()
        stack = list(self.parents_of(eid))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(p for p in self.parents_of(current)
                         if p not in seen)
        return seen

    def happens_before(self, a: int, b: int) -> bool:
        """True iff entry ``a`` is in entry ``b``'s causal past."""
        return a in self.ancestors(b)

    # ------------------------------------------------------------------
    def linearize(self) -> List[JournalEntry]:
        """Deterministic topological order: Kahn keyed by ``(t, eid)``.

        Any valid journal linearizes completely; a cyclic ``parents``
        encoding (corrupt journal) raises :class:`ValueError`.
        """
        indegree: Dict[int, int] = {
            eid: len(self.parents_of(eid)) for eid in self.by_eid}
        ready = [( self.by_eid[eid].t, eid)
                 for eid, degree in indegree.items() if degree == 0]
        heapq.heapify(ready)
        out: List[JournalEntry] = []
        while ready:
            _, eid = heapq.heappop(ready)
            out.append(self.by_eid[eid])
            for child in self.children[eid]:
                indegree[child] -= 1
                if indegree[child] == 0:
                    heapq.heappush(ready, (self.by_eid[child].t, child))
        if len(out) != len(self.by_eid):
            raise ValueError("journal causal graph contains a cycle "
                             f"({len(self.by_eid) - len(out)} entries "
                             "unreachable)")
        return out

    def critical_path(self, eid: Optional[int] = None
                      ) -> List[JournalEntry]:
        """Longest happens-before chain ending at ``eid``.

        With ``eid=None`` the overall longest chain in the graph —
        the run's causal critical path.  Ties break toward smaller
        eids, keeping the result deterministic.
        """
        best_len: Dict[int, int] = {}
        best_parent: Dict[int, Optional[int]] = {}
        for entry in self.linearize():
            parents = self.parents_of(entry.eid)
            if parents:
                parent = min(parents,
                             key=lambda p: (-best_len.get(p, 0), p))
                best_len[entry.eid] = best_len.get(parent, 0) + 1
                best_parent[entry.eid] = parent
            else:
                best_len[entry.eid] = 1
                best_parent[entry.eid] = None
        if not best_len:
            return []
        if eid is None:
            eid = min(best_len, key=lambda e: (-best_len[e], e))
        chain: List[JournalEntry] = []
        cursor: Optional[int] = eid
        while cursor is not None:
            chain.append(self.by_eid[cursor])
            cursor = best_parent.get(cursor)
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    def txn_cone(self, txn_id: str) -> "CausalGraph":
        """Subgraph of one transaction's entries plus their causal past.

        This is the per-txn happens-before graph: everything the
        transaction did, and everything those actions depended on
        (e.g. the lock release of a conflicting transaction that a
        grant waited behind).
        """
        seed = [e.eid for e in self.by_eid.values() if e.txn == txn_id]
        keep: Set[int] = set(seed)
        for eid in seed:
            keep |= self.ancestors(eid)
        return CausalGraph([self.by_eid[eid] for eid in sorted(keep)])

    def txn_ids(self) -> List[str]:
        """Distinct transaction ids, by first journal appearance."""
        seen: List[str] = []
        for eid in sorted(self.by_eid):
            txn = self.by_eid[eid].txn
            if txn is not None and txn not in seen:
                seen.append(txn)
        return seen


def build_causal_graph(entries: Iterable[JournalEntry]) -> CausalGraph:
    """Convenience wrapper: journal entries -> :class:`CausalGraph`."""
    return CausalGraph(list(entries))
