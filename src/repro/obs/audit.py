"""Conformance auditing: observed per-transaction costs vs the formulas.

The analytic formulas in :mod:`repro.analysis.formulas` predict the
exact (flows, log writes, forced writes) triple every protocol and
optimization should pay.  The :class:`ConformanceAuditor` closes the
loop at runtime: riding a :class:`~repro.obs.ledger.CostLedger`, it
diffs each transaction's observed triple against the prediction the
moment the transaction completes, and classifies any divergence —
*expected under faults* when the run shows fault evidence (crashes,
drops, recovery traffic, heuristics, aborts), *anomaly* otherwise.
A passing audit is the strongest statement the reproduction makes:
not just that totals match the tables in aggregate, but that every
single transaction paid exactly the predicted costs.

`run_audit_cell` / `run_audit_matrix` drive the protocol × variant
grid (BASIC/PA/PN/PC × baseline/read-only/last-agent/group-commit)
used by ``repro-2pc audit`` and the parallel sweep study; both are
module-level and picklable so cells shard across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.analysis.formulas import (
    TABLE3_FORMULAS,
    TABLE3_PC_FORMULAS,
    TABLE3_PN_FORMULAS,
    basic_2pc_costs,
    pc_commit_costs,
    pn_commit_costs,
)
from repro.metrics.collector import CostSummary

#: The audit matrix: every presumption crossed with every variant.
AUDIT_PROTOCOLS = ("basic", "pa", "pn", "pc")
AUDIT_VARIANTS = ("baseline", "read_only", "last_agent", "group_commit")

CLASS_CONFORMS = "conforms"
CLASS_EXPECTED_UNDER_FAULTS = "expected-under-faults"
CLASS_ANOMALY = "anomaly"


def _triple(costs: Optional[CostSummary]) -> Optional[Dict[str, int]]:
    if costs is None:
        return None
    return {"flows": costs.flows, "log_writes": costs.log_writes,
            "forced_writes": costs.forced_writes}


def _untriple(data: Optional[Dict[str, int]]) -> Optional[CostSummary]:
    if data is None:
        return None
    return CostSummary(flows=data["flows"], log_writes=data["log_writes"],
                       forced_writes=data["forced_writes"])


def expected_costs(protocol: str, variant: str, n: int,
                   m: int = 0) -> CostSummary:
    """The formulas' prediction for one audit-matrix cell.

    ``protocol`` is a presumption key (basic/pa/pn/pc); ``variant`` an
    audit variant.  Group commit batches physical I/Os without changing
    which records are written or sent, so its triple is the baseline's.
    In this codebase BASIC differs from PA only on the abort/recovery
    path, so the fault-free commit case shares PA's predictions.
    """
    if protocol not in AUDIT_PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    if variant not in AUDIT_VARIANTS:
        raise ValueError(f"unknown audit variant {variant!r}")
    if variant in ("baseline", "group_commit"):
        return {"basic": basic_2pc_costs, "pa": basic_2pc_costs,
                "pn": pn_commit_costs, "pc": pc_commit_costs}[protocol](n)
    table = {"basic": TABLE3_FORMULAS, "pa": TABLE3_FORMULAS,
             "pn": TABLE3_PN_FORMULAS, "pc": TABLE3_PC_FORMULAS}[protocol]
    return table[variant].costs(n, m)


@dataclass
class AuditFinding:
    """One audited transaction: prediction, observation, verdict."""

    txn_id: str
    observed: CostSummary
    expected: Optional[CostSummary]
    classification: str
    lock_time: float = 0.0
    fault_signals: List[str] = field(default_factory=list)
    audited_at: float = 0.0
    note: str = ""

    @property
    def conforms(self) -> bool:
        return self.classification == CLASS_CONFORMS

    @property
    def is_anomaly(self) -> bool:
        return self.classification == CLASS_ANOMALY

    def to_dict(self) -> Dict[str, object]:
        return {
            "txn_id": self.txn_id,
            "observed": _triple(self.observed),
            "expected": _triple(self.expected),
            "classification": self.classification,
            "lock_time": round(self.lock_time, 9),
            "fault_signals": list(self.fault_signals),
            "audited_at": self.audited_at,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AuditFinding":
        return cls(
            txn_id=data["txn_id"],
            observed=_untriple(data["observed"]),
            expected=_untriple(data.get("expected")),
            classification=data["classification"],
            lock_time=data.get("lock_time", 0.0),
            fault_signals=list(data.get("fault_signals", ())),
            audited_at=data.get("audited_at", 0.0),
            note=data.get("note", ""),
        )


#: A predictor maps txn_id -> expected triple (None = no prediction,
#: the finding then just records the observation as conforming).
Predictor = Union[CostSummary, Dict[str, CostSummary],
                  Callable[[str], Optional[CostSummary]], None]


class ConformanceAuditor:
    """Audits each transaction against its predicted cost triple.

    Rides a :class:`~repro.obs.ledger.CostLedger` (which must be
    attached to the same cluster) and the nodes' ``on_transition``
    hooks.  A transaction is complete when every node that opened a
    context for it has reached a terminal state (FORGOTTEN or
    READ_ONLY_DONE); the audit itself is deferred one simulator event
    (``call_soon``) so trailing log writes in the completing event are
    counted before the diff.  ``finish()`` sweeps stragglers — any
    transaction still unaudited is classified with an ``incomplete``
    fault signal.

    ``zero_tolerance`` disables the fault excuse: every divergence is
    an anomaly, whatever the run's fault evidence says.
    """

    def __init__(self, predictor: Predictor = None,
                 zero_tolerance: bool = False) -> None:
        self.predictor = predictor
        self.zero_tolerance = zero_tolerance
        self.cluster = None
        self.ledger = None
        self.findings: List[AuditFinding] = []
        self._audited: set = set()
        self._states: Dict[str, Dict[str, object]] = {}
        self._installed: List = []

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster, ledger) -> "ConformanceAuditor":
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("ConformanceAuditor is already attached to "
                               "a different cluster; detach() first")
        if ledger.cluster is not cluster:
            raise RuntimeError("the ledger must be attached to the same "
                               "cluster before the auditor")
        self.cluster = cluster
        self.ledger = ledger
        for node in cluster.nodes.values():
            node.on_transition.append(self._on_transition)
            self._installed.append((node.on_transition, self._on_transition))
        return self

    def detach(self) -> None:
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass
        self._installed = []
        self.cluster = None
        self.ledger = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    # ------------------------------------------------------------------
    # Completion tracking
    # ------------------------------------------------------------------
    def _on_transition(self, node: str, txn_id: str, old, new) -> None:
        states = self._states.setdefault(txn_id, {})
        states[node] = new
        if txn_id in self._audited or not new.terminal:
            return
        if all(state.terminal for state in states.values()):
            # Defer one event so the completing event's trailing log
            # writes (the end record lands after the transition) are in
            # the ledger before the diff.
            self.cluster.simulator.call_soon(
                lambda: self._audit_if_complete(txn_id),
                name=f"audit:{txn_id}")

    def _audit_if_complete(self, txn_id: str) -> None:
        if txn_id in self._audited:
            return
        states = self._states.get(txn_id, {})
        if not states or not all(s.terminal for s in states.values()):
            return  # a node re-entered the protocol; audit again later
        self._audit(txn_id)

    # ------------------------------------------------------------------
    # The audit itself
    # ------------------------------------------------------------------
    def _predict(self, txn_id: str) -> Optional[CostSummary]:
        predictor = self.predictor
        if predictor is None:
            return None
        if isinstance(predictor, CostSummary):
            return predictor
        if isinstance(predictor, dict):
            return predictor.get(txn_id)
        return predictor(txn_id)

    def _fault_signals(self, txn_id: str) -> List[str]:
        metrics = self.cluster.metrics
        signals = []
        # Scan newest-first: this transaction just completed, so its
        # record (if recorded yet) is at the tail.
        for record in reversed(metrics.transactions):
            if record.txn_id == txn_id:
                if record.outcome != "commit":
                    signals.append(f"outcome:{record.outcome}")
                break
        if metrics.drops.total() > 0:
            signals.append("message-drops")
        # The ledger already attributes recovery flows per transaction
        # (O(1), unlike a TaggedCounter scan over every flow key).
        entry = self.ledger.entries.get(txn_id)
        if entry is not None and entry.recovery_flows > 0:
            signals.append("recovery-traffic")
        if any(h.txn_id == txn_id for h in metrics.heuristics):
            signals.append("heuristic-decision")
        crashed = [node.name for node in self.cluster.nodes.values()
                   if node.crash_count > 0]
        if crashed:
            signals.append("node-crash:" + ",".join(sorted(crashed)))
        return signals

    def _audit(self, txn_id: str,
               extra_signals: Sequence[str] = ()) -> AuditFinding:
        self._audited.add(txn_id)
        observed = self.ledger.cost_summary(txn_id)
        expected = self._predict(txn_id)
        signals = self._fault_signals(txn_id) + list(extra_signals)
        if expected is None or observed == expected:
            classification = CLASS_CONFORMS
            note = ""
        elif signals and not self.zero_tolerance:
            classification = CLASS_EXPECTED_UNDER_FAULTS
            note = ("observed differs from prediction; run shows fault "
                    "evidence")
        else:
            classification = CLASS_ANOMALY
            note = "observed differs from prediction in a fault-free run" \
                if not signals else \
                "zero-tolerance: divergence under faults still anomalous"
        finding = AuditFinding(
            txn_id=txn_id, observed=observed, expected=expected,
            classification=classification,
            lock_time=self.ledger.lock_time(txn_id),
            fault_signals=signals,
            audited_at=self.cluster.simulator.now, note=note)
        self.findings.append(finding)
        return finding

    def finish(self) -> List[AuditFinding]:
        """Audit every transaction still pending (as incomplete)."""
        for txn_id in list(self._states):
            if txn_id not in self._audited:
                self._audit(txn_id, extra_signals=["incomplete"])
        return self.findings

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        counts = {CLASS_CONFORMS: 0, CLASS_EXPECTED_UNDER_FAULTS: 0,
                  CLASS_ANOMALY: 0}
        for finding in self.findings:
            counts[finding.classification] += 1
        return counts

    def anomalies(self) -> List[AuditFinding]:
        return [f for f in self.findings if f.is_anomaly]

    def to_dict(self) -> Dict[str, object]:
        return {"counts": self.counts(),
                "findings": [f.to_dict() for f in self.findings]}


# ----------------------------------------------------------------------
# The audit matrix (module-level and picklable for pool.sweep)
# ----------------------------------------------------------------------
def _cell_config(protocol: str, variant: str):
    from repro.core.config import (
        BASIC_2PC, PRESUMED_ABORT, PRESUMED_COMMIT, PRESUMED_NOTHING)
    from repro.log.group_commit import GroupCommitPolicy

    config = {"basic": BASIC_2PC, "pa": PRESUMED_ABORT,
              "pn": PRESUMED_NOTHING, "pc": PRESUMED_COMMIT}[protocol]
    if variant == "read_only":
        config = config.with_options(read_only=True)
    elif variant == "last_agent":
        config = config.with_options(last_agent=True)
    elif variant == "group_commit":
        config = config.with_options(
            group_commit=GroupCommitPolicy(group_size=3, timeout=5.0))
    return config


def _cell_spec(variant: str, names: List[str], m: int, txn_id: str):
    from repro.core.spec import ParticipantSpec, TransactionSpec
    from repro.lrm.operations import read_op, write_op

    root, others = names[0], names[1:]
    if variant == "last_agent":
        # m last agents form a delegation chain at the tail (the same
        # topology the Table 3 scenario measures).
        participants = [ParticipantSpec(
            node=root, ops=[write_op(f"k-{root}-{txn_id}", 1)])]
        flat, chain = others[:len(others) - m], others[len(others) - m:]
        for name in flat:
            participants.append(ParticipantSpec(
                node=name, parent=root,
                ops=[write_op(f"k-{name}-{txn_id}", 1)]))
        previous = root
        for name in chain:
            participants.append(ParticipantSpec(
                node=name, parent=previous, last_agent=True,
                ops=[write_op(f"k-{name}-{txn_id}", 1)]))
            previous = name
        return TransactionSpec(participants=participants, txn_id=txn_id)
    participants = [ParticipantSpec(
        node=root, ops=[write_op(f"k-{root}-{txn_id}", 1)])]
    for i, name in enumerate(others):
        if variant == "read_only" and i < m:
            ops = [read_op(f"shared-{name}")]
        else:
            ops = [write_op(f"k-{name}-{txn_id}", 1)]
        participants.append(ParticipantSpec(node=name, parent=root,
                                            ops=ops))
    return TransactionSpec(participants=participants, txn_id=txn_id)


def run_audit_cell(protocol: str, variant: str, n: int = 3, m: int = 1,
                   txns: int = 3, seed: int = 7,
                   zero_tolerance: bool = False) -> Dict[str, object]:
    """Run one audit-matrix cell and return a serializable report.

    Builds a fresh cluster for (protocol, variant), runs ``txns``
    transactions with a ledger and an auditor attached (explicit txn
    ids keep worker processes bit-identical to a serial run), and
    reports the findings plus classification totals.
    """
    from repro.core.cluster import Cluster
    from repro.obs.ledger import CostLedger

    effective_m = m if variant in ("read_only", "last_agent") else 0
    expected = expected_costs(protocol, variant, n, effective_m)
    names = [f"n{i}" for i in range(n)]
    cluster = Cluster(_cell_config(protocol, variant), nodes=names,
                      seed=seed)
    ledger = CostLedger().attach(cluster)
    auditor = ConformanceAuditor(predictor=expected,
                                 zero_tolerance=zero_tolerance)
    auditor.attach(cluster, ledger)
    for i in range(txns):
        txn_id = f"audit-{protocol}-{variant}-{i}"
        spec = _cell_spec(variant, names, effective_m, txn_id)
        cluster.run_transaction(spec)
        if variant == "last_agent":
            cluster.finalize_implied_acks()
    auditor.finish()
    counts = auditor.counts()
    return {
        "protocol": protocol,
        "variant": variant,
        "n": n,
        "m": effective_m,
        "txns": txns,
        "expected": _triple(expected),
        "findings": [f.to_dict() for f in auditor.findings],
        "conforms": counts[CLASS_CONFORMS],
        "expected_under_faults": counts[CLASS_EXPECTED_UNDER_FAULTS],
        "anomalies": counts[CLASS_ANOMALY],
        "lock_time": round(sum(f.lock_time for f in auditor.findings), 9),
    }


def run_faulty_audit_cell(protocol: str = "pa", seed: int = 7
                          ) -> Dict[str, object]:
    """A seeded crash-recovery run whose divergence the auditor must
    classify as expected-under-faults (never as an anomaly).

    The subordinate crashes with the commit decision in flight (its
    prepared record durable) and restarts later; recovery re-acquires
    locks, inquires, and commits — correct outcome, extra flows and
    writes relative to the fault-free prediction.
    """
    from repro.core.cluster import Cluster
    from repro.obs.ledger import CostLedger

    config = _cell_config(protocol, "baseline").with_options(
        ack_timeout=20.0, retry_interval=20.0)
    cluster = Cluster(config, nodes=["c", "s"], seed=seed)
    ledger = CostLedger().attach(cluster)
    expected = expected_costs(protocol, "baseline", 2)
    auditor = ConformanceAuditor(predictor=expected)
    auditor.attach(cluster, ledger)
    spec = _cell_spec("baseline", ["c", "s"], 0,
                      f"audit-fault-{protocol}")
    cluster.crash_at("s", 4.5)      # prepared durable, commit lost
    cluster.restart_at("s", 50.0)
    handle = cluster.start_transaction(spec)
    cluster.run_until(300.0)
    auditor.finish()
    counts = auditor.counts()
    return {
        "protocol": protocol,
        "variant": "crash-recovery",
        "outcome": handle.outcome,
        "expected": _triple(expected),
        "findings": [f.to_dict() for f in auditor.findings],
        "conforms": counts[CLASS_CONFORMS],
        "expected_under_faults": counts[CLASS_EXPECTED_UNDER_FAULTS],
        "anomalies": counts[CLASS_ANOMALY],
    }


def merge_audit_cells(cells: Sequence[Dict[str, object]]
                      ) -> Dict[str, object]:
    """Fold per-cell audit reports into one matrix-level summary."""
    total = {"cells": list(cells), "txns": 0, "conforms": 0,
             "expected_under_faults": 0, "anomalies": 0}
    for cell in cells:
        total["txns"] += len(cell["findings"])
        total["conforms"] += cell["conforms"]
        total["expected_under_faults"] += cell["expected_under_faults"]
        total["anomalies"] += cell["anomalies"]
    return total


def run_audit_matrix(workers: Optional[int] = None,
                     protocols: Sequence[str] = AUDIT_PROTOCOLS,
                     variants: Sequence[str] = AUDIT_VARIANTS,
                     n: int = 3, m: int = 1, txns: int = 3,
                     seed: int = 7, zero_tolerance: bool = False
                     ) -> Dict[str, object]:
    """Audit every (protocol, variant) cell, optionally in parallel.

    The cells are independent simulations with explicit transaction
    ids, so the merged report is bit-identical whether the grid runs
    serially (workers=1) or sharded across processes.
    """
    from repro.parallel.pool import sweep

    grid = [{"protocol": protocol, "variant": variant, "n": n, "m": m,
             "txns": txns, "seed": seed, "zero_tolerance": zero_tolerance}
            for protocol in protocols for variant in variants]
    cells = sweep(run_audit_cell, grid, workers=workers,
                  label=lambda p: f"audit {p['protocol']}/{p['variant']}")
    return merge_audit_cells(cells)
