"""Observability layer: tracing, cost attribution, audit, reports.

Strictly a consumer of hooks exposed by the lower layers (``core``,
``log``, ``lrm``, ``net``, ``sim``) — nothing below imports this
package, and a cluster with no instrument attached does zero
observability work.

* :class:`SpanTracer` — per-transaction span trees from protocol
  state transitions, log forces and message deliveries; exportable as
  text, JSONL, or Chrome ``trace_event`` JSON (see
  ``docs/OBSERVABILITY.md``).
* :class:`CostLedger` — per-transaction attribution of every flow,
  log write, forced write and lock-hold interval to (txn, node,
  phase, type); yields each transaction's paper cost triple.
* :class:`ConformanceAuditor` — diffs each completed transaction's
  observed triple against the analytic formulas and classifies
  divergences (expected-under-faults vs anomaly).
* :class:`SimTimeSeries` — deterministic sim-time gauges (in-flight
  transactions, lock depth, pending forces, wire occupancy) with an
  ASCII sparkline dashboard.
* :class:`RunReport` — latency/lock/log-force percentile summaries.
* :class:`KernelProfiler` — opt-in wall-clock profile of simulator
  event handlers, grouped by event type.
"""

from repro.obs.audit import (AuditFinding, ConformanceAuditor,
                             expected_costs, merge_audit_cells,
                             run_audit_cell, run_audit_matrix,
                             run_faulty_audit_cell)
from repro.metrics.columns import (ColumnarTraceLog, CostTape,
                                   FloatColumn, IntColumn, PairColumn,
                                   StringInterner)
from repro.obs.ledger import CostLedger, LockHold, TxnLedger
from repro.obs.profiler import KernelProfiler
from repro.obs.report import RunReport
from repro.obs.span import (KIND_LOG, KIND_MESSAGE, KIND_PHASE, KIND_TXN,
                            Span, build_tree, render_span_tree,
                            spans_from_jsonl, spans_to_chrome,
                            spans_to_jsonl)
from repro.obs.timeseries import SimTimeSeries, sparkline
from repro.obs.tracer import PHASE_OF_STATE, SpanTracer

__all__ = [
    "AuditFinding",
    "ColumnarTraceLog",
    "ConformanceAuditor",
    "CostLedger",
    "CostTape",
    "FloatColumn",
    "IntColumn",
    "PairColumn",
    "StringInterner",
    "KernelProfiler",
    "KIND_LOG",
    "KIND_MESSAGE",
    "KIND_PHASE",
    "KIND_TXN",
    "LockHold",
    "PHASE_OF_STATE",
    "RunReport",
    "SimTimeSeries",
    "Span",
    "SpanTracer",
    "TxnLedger",
    "build_tree",
    "expected_costs",
    "merge_audit_cells",
    "render_span_tree",
    "run_audit_cell",
    "run_audit_matrix",
    "run_faulty_audit_cell",
    "sparkline",
    "spans_from_jsonl",
    "spans_to_chrome",
    "spans_to_jsonl",
]
