"""Observability layer: tracing, cost attribution, audit, reports.

Strictly a consumer of hooks exposed by the lower layers (``core``,
``log``, ``lrm``, ``net``, ``sim``) — nothing below imports this
package, and a cluster with no instrument attached does zero
observability work.

* :class:`SpanTracer` — per-transaction span trees from protocol
  state transitions, log forces and message deliveries; exportable as
  text, JSONL, or Chrome ``trace_event`` JSON (see
  ``docs/OBSERVABILITY.md``).
* :class:`CostLedger` — per-transaction attribution of every flow,
  log write, forced write and lock-hold interval to (txn, node,
  phase, type); yields each transaction's paper cost triple.
* :class:`ConformanceAuditor` — diffs each completed transaction's
  observed triple against the analytic formulas and classifies
  divergences (expected-under-faults vs anomaly).
* :class:`SimTimeSeries` — deterministic sim-time gauges (in-flight
  transactions, lock depth, pending forces, wire occupancy) with an
  ASCII sparkline dashboard.
* :class:`RunReport` — latency/lock/log-force percentile summaries.
* :class:`KernelProfiler` — opt-in wall-clock profile of simulator
  event handlers, grouped by event type.
* :class:`JournalRecorder` — schema-versioned flight recorder: an
  append-only, causally-linked journal of every flow, log write,
  force, and lock event; :class:`CausalGraph` rebuilds the
  happens-before DAG, :func:`diff_journals` localizes the first
  causally-divergent event between two journals, and
  :class:`Watchdog` runs in-doubt/lock-wait/orphan/unacked-force
  detectors over a journal or live hooks.
"""

from repro.obs.audit import (AuditFinding, ConformanceAuditor,
                             expected_costs, merge_audit_cells,
                             run_audit_cell, run_audit_matrix,
                             run_faulty_audit_cell)
from repro.metrics.columns import (ColumnarTraceLog, CostTape,
                                   FloatColumn, IntColumn, PairColumn,
                                   StringInterner)
from repro.obs.causal import CausalGraph, build_causal_graph
from repro.obs.diff import (Divergence, diff_journals,
                            record_workload_journal,
                            run_journal_self_check)
from repro.obs.journal import (JournalEntry, JournalRecorder,
                               JournalTape, journal_from_jsonl,
                               journal_to_jsonl, normalize_txn_ids)
from repro.obs.ledger import CostLedger, LockHold, TxnLedger
from repro.obs.profiler import KernelProfiler
from repro.obs.registry import (MetricFamily, MetricsRegistry,
                                escape_label_value)
from repro.obs.top import TopSnapshot, render_top
from repro.obs.watchdog import (Watchdog, WatchdogFinding,
                                prometheus_text)
from repro.obs.report import RunReport
from repro.obs.span import (KIND_LOG, KIND_MESSAGE, KIND_PHASE, KIND_TXN,
                            Span, build_tree, render_span_tree,
                            spans_from_jsonl, spans_to_chrome,
                            spans_to_jsonl)
from repro.obs.timeseries import SimTimeSeries, sparkline
from repro.obs.tracer import PHASE_OF_STATE, SpanTracer

__all__ = [
    "AuditFinding",
    "CausalGraph",
    "ColumnarTraceLog",
    "ConformanceAuditor",
    "CostLedger",
    "CostTape",
    "Divergence",
    "FloatColumn",
    "IntColumn",
    "JournalEntry",
    "JournalRecorder",
    "JournalTape",
    "PairColumn",
    "StringInterner",
    "KernelProfiler",
    "KIND_LOG",
    "KIND_MESSAGE",
    "KIND_PHASE",
    "KIND_TXN",
    "LockHold",
    "MetricFamily",
    "MetricsRegistry",
    "PHASE_OF_STATE",
    "RunReport",
    "TopSnapshot",
    "SimTimeSeries",
    "Span",
    "SpanTracer",
    "TxnLedger",
    "Watchdog",
    "WatchdogFinding",
    "build_causal_graph",
    "build_tree",
    "diff_journals",
    "escape_label_value",
    "expected_costs",
    "journal_from_jsonl",
    "journal_to_jsonl",
    "merge_audit_cells",
    "normalize_txn_ids",
    "prometheus_text",
    "record_workload_journal",
    "render_span_tree",
    "render_top",
    "run_audit_cell",
    "run_audit_matrix",
    "run_faulty_audit_cell",
    "run_journal_self_check",
    "sparkline",
    "spans_from_jsonl",
    "spans_to_chrome",
    "spans_to_jsonl",
]
