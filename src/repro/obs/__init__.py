"""Observability layer: span tracing, run reports, kernel profiling.

Strictly a consumer of hooks exposed by the lower layers (``core``,
``log``, ``net``, ``sim``) — nothing below imports this package, and a
cluster with no tracer attached does zero observability work.

* :class:`SpanTracer` — per-transaction span trees from protocol
  state transitions, log forces and message deliveries; exportable as
  text, JSONL, or Chrome ``trace_event`` JSON (see
  ``docs/OBSERVABILITY.md``).
* :class:`RunReport` — latency/lock/log-force percentile summaries.
* :class:`KernelProfiler` — opt-in wall-clock profile of simulator
  event handlers, grouped by event type.
"""

from repro.obs.profiler import KernelProfiler
from repro.obs.report import RunReport
from repro.obs.span import (KIND_LOG, KIND_MESSAGE, KIND_PHASE, KIND_TXN,
                            Span, build_tree, render_span_tree,
                            spans_from_jsonl, spans_to_chrome,
                            spans_to_jsonl)
from repro.obs.tracer import PHASE_OF_STATE, SpanTracer

__all__ = [
    "KernelProfiler",
    "KIND_LOG",
    "KIND_MESSAGE",
    "KIND_PHASE",
    "KIND_TXN",
    "PHASE_OF_STATE",
    "RunReport",
    "Span",
    "SpanTracer",
    "build_tree",
    "render_span_tree",
    "spans_from_jsonl",
    "spans_to_chrome",
    "spans_to_jsonl",
]
