"""CostLedger: per-transaction cost attribution from substrate hooks.

The paper's evaluation is cost accounting — Tables 2-4 count message
flows, log writes and forced writes per protocol/optimization, and
"resource lock time" is its fourth axis.  The aggregate counters in
:mod:`repro.metrics.collector` already total those quantities; the
ledger attributes each individual cost event to **(transaction, node,
phase, record/message type)** as it happens, so one transaction's
triple can be read out (and audited against the analytic formulas)
the moment it completes.

Hook diet (all list-append installs — an unattached cluster pays one
falsy check per event, the established skip-when-empty pattern):

====================  ==============================================
hook                  ledger activity
====================  ==============================================
node.on_transition    track each (txn, node) protocol phase
network.on_send       attribute one flow (sender pays, as the tables
                      count)
network.on_deliver    close the in-flight window (delivery count)
log.on_write          attribute one log write / forced write
log.on_flush          count hardened records per transaction
locks.on_grant        open a lock-hold interval
locks.on_release      close it and accumulate lock time
====================  ==============================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.metrics.collector import CostSummary
from repro.metrics.columns import CostTape

#: Data (WAL) records are pre-commit work; the tables count protocol
#: records only (same convention as MetricsCollector.DATA_RECORD_TYPES).
_DATA_RECORD_TYPES = frozenset({"lrm-update"})

#: Phase label for cost events hitting a (txn, node) pair before any
#: commit-context exists there (e.g. the enrollment data flows).
IDLE_PHASE = "idle"


@dataclass
class LockHold:
    """One lock's hold interval at one node, attributed to a txn."""

    node: str
    key: str
    mode: str
    granted_at: float
    released_at: Optional[float] = None

    @property
    def duration(self) -> Optional[float]:
        if self.released_at is None:
            return None
        return self.released_at - self.granted_at


@dataclass
class TxnLedger:
    """Everything one transaction cost, attributed as it happened.

    ``flows``/``writes`` are attribution maps — counts keyed by
    (node, phase, message type) and (node, phase, record type, forced)
    respectively, where *phase* is the protocol state the node was in
    when it paid the cost.
    """

    txn_id: str
    flows: Dict[Tuple[str, str, str], int] = field(default_factory=dict)
    writes: Dict[Tuple[str, str, str, bool], int] = field(
        default_factory=dict)
    commit_flows: int = 0
    log_writes: int = 0
    forced_writes: int = 0
    data_flows: int = 0
    recovery_flows: int = 0
    delivered: int = 0
    hardened: int = 0
    lock_holds: List[LockHold] = field(default_factory=list)
    first_event_at: Optional[float] = None
    last_event_at: Optional[float] = None

    def cost_summary(self) -> CostSummary:
        """The paper's (flows, writes, forced) triple for this txn."""
        return CostSummary(flows=self.commit_flows,
                           log_writes=self.log_writes,
                           forced_writes=self.forced_writes)

    @property
    def lock_time(self) -> float:
        """Total closed lock-hold time across nodes and keys."""
        return sum(hold.duration for hold in self.lock_holds
                   if hold.released_at is not None)

    @property
    def open_locks(self) -> int:
        return sum(1 for hold in self.lock_holds
                   if hold.released_at is None)

    def to_dict(self) -> Dict[str, object]:
        return {
            "txn_id": self.txn_id,
            "flows": self.commit_flows,
            "log_writes": self.log_writes,
            "forced_writes": self.forced_writes,
            "data_flows": self.data_flows,
            "recovery_flows": self.recovery_flows,
            "lock_time": round(self.lock_time, 9),
            "open_locks": self.open_locks,
        }


class CostLedger:
    """Attributes every cost event of a cluster run to its transaction.

    Attach/detach follow the Tracer contract: attaching twice to the
    same cluster is a no-op, attaching elsewhere while attached raises,
    ``detach()`` removes every installed hook and is idempotent.
    """

    def __init__(self, tape: bool = False) -> None:
        self.cluster = None
        self.entries: Dict[str, TxnLedger] = {}
        self._states: Dict[Tuple[str, str], str] = {}
        self._open_holds: Dict[Tuple[str, str, str], LockHold] = {}
        self._installed: List[Tuple[object, object]] = []
        #: Optional columnar (time, txn, node, kind) event tape —
        #: per-event cost *timing* without per-event objects; see
        #: :class:`repro.metrics.columns.CostTape`.
        self.tape: Optional[CostTape] = CostTape() if tape else None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "CostLedger":
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("CostLedger is already attached to a "
                               "different cluster; detach() first")
        self.cluster = cluster

        def install(hook_list: list, hook) -> None:
            hook_list.append(hook)
            self._installed.append((hook_list, hook))

        install(cluster.network.on_send, self._on_send)
        install(cluster.network.on_deliver, self._on_deliver)
        for node in cluster.nodes.values():
            install(node.on_transition, self._on_transition)
            seen_logs = set()
            for rm in [node] + node.all_rms():
                log = getattr(rm, "log", None)
                if log is None or id(log) in seen_logs:
                    continue
                seen_logs.add(id(log))
                install(log.on_write, self._on_write)
                install(log.on_flush, self._on_flush)
            for rm in node.all_rms():
                locks = rm.locks
                node_name = node.name

                def on_grant(txn_id, key, mode, _node=node_name):
                    self._on_grant(_node, txn_id, key, mode)

                def on_release(txn_id, key, _node=node_name):
                    self._on_release(_node, txn_id, key)

                install(locks.on_grant, on_grant)
                install(locks.on_release, on_release)
        return self

    def detach(self) -> None:
        """Remove every installed hook (idempotent)."""
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass
        self._installed = []
        self.cluster = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    @property
    def _now(self) -> float:
        return self.cluster.simulator.now if self.cluster else 0.0

    def entry(self, txn_id: str) -> TxnLedger:
        ledger = self.entries.get(txn_id)
        if ledger is None:
            ledger = TxnLedger(txn_id)
            self.entries[txn_id] = ledger
        return ledger

    def _touch(self, ledger: TxnLedger) -> None:
        now = self._now
        if ledger.first_event_at is None:
            ledger.first_event_at = now
        ledger.last_event_at = now

    def _phase(self, txn_id: str, node: str) -> str:
        return self._states.get((txn_id, node), IDLE_PHASE)

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_transition(self, node: str, txn_id: str, old, new) -> None:
        self._states[(txn_id, node)] = new.value

    def _on_send(self, message) -> None:
        ledger = self.entry(message.txn_id)
        self._touch(ledger)
        if self.tape is not None:
            self.tape.record(self._now, message.txn_id, message.src,
                             "send")
        phase = self._phase(message.txn_id, message.src)
        key = (message.src, phase, message.msg_type.value)
        ledger.flows[key] = ledger.flows.get(key, 0) + 1
        bucket = message.phase.value
        if bucket == "commit":
            ledger.commit_flows += 1
        elif bucket == "data":
            ledger.data_flows += 1
        else:
            ledger.recovery_flows += 1

    def _on_deliver(self, message) -> None:
        ledger = self.entry(message.txn_id)
        self._touch(ledger)
        if self.tape is not None:
            self.tape.record(self._now, message.txn_id, message.dst,
                             "deliver")
        ledger.delivered += 1

    def _on_write(self, record) -> None:
        ledger = self.entry(record.txn_id)
        self._touch(ledger)
        if self.tape is not None:
            self.tape.record(self._now, record.txn_id, record.node,
                             "force" if record.forced else "write")
        rtype = record.record_type.value
        phase = self._phase(record.txn_id, record.node)
        key = (record.node, phase, rtype, record.forced)
        ledger.writes[key] = ledger.writes.get(key, 0) + 1
        if rtype not in _DATA_RECORD_TYPES:
            ledger.log_writes += 1
            if record.forced:
                ledger.forced_writes += 1

    def _on_flush(self, durable) -> None:
        for record in durable:
            ledger = self.entries.get(record.txn_id)
            if ledger is not None:
                ledger.hardened += 1

    def _on_grant(self, node: str, txn_id: str, key: str, mode) -> None:
        ledger = self.entry(txn_id)
        self._touch(ledger)
        hold = LockHold(node=node, key=key,
                        mode=getattr(mode, "value", str(mode)),
                        granted_at=self._now)
        ledger.lock_holds.append(hold)
        self._open_holds[(node, txn_id, key)] = hold

    def _on_release(self, node: str, txn_id: str, key: str) -> None:
        hold = self._open_holds.pop((node, txn_id, key), None)
        if hold is not None:
            hold.released_at = self._now
            ledger = self.entries.get(txn_id)
            if ledger is not None:
                self._touch(ledger)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def txn_ids(self) -> List[str]:
        return list(self.entries)

    def protocol_txn_ids(self) -> List[str]:
        """Transactions that opened a commit context somewhere.

        Filters out carrier pseudo-transactions (the ``app-data``
        conversations that ferry deferred acks) which pay data flows
        but never enter the protocol.
        """
        with_context = {txn for (txn, __) in self._states}
        return [txn for txn in self.entries if txn in with_context]

    def cost_summary(self, txn_id: str) -> CostSummary:
        """(flows, writes, forced) for one transaction; zeros if unseen."""
        ledger = self.entries.get(txn_id)
        if ledger is None:
            return CostSummary(flows=0, log_writes=0, forced_writes=0)
        return ledger.cost_summary()

    def lock_time(self, txn_id: str) -> float:
        ledger = self.entries.get(txn_id)
        return ledger.lock_time if ledger is not None else 0.0

    def node_costs(self, txn_id: str, node: str) -> CostSummary:
        """Per-role triple (Table 2 splits coordinator vs subordinate)."""
        ledger = self.entries.get(txn_id)
        if ledger is None:
            return CostSummary(flows=0, log_writes=0, forced_writes=0)
        flows = sum(count for (src, __, mtype), count
                    in ledger.flows.items()
                    if src == node and mtype not in ("data", "inquire",
                                                     "outcome",
                                                     "recovery-ack"))
        writes = forced = 0
        for (wnode, __, rtype, was_forced), count in ledger.writes.items():
            if wnode != node or rtype in _DATA_RECORD_TYPES:
                continue
            writes += count
            if was_forced:
                forced += count
        return CostSummary(flows=flows, log_writes=writes,
                           forced_writes=forced)

    def to_dict(self) -> Dict[str, object]:
        return {txn: ledger.to_dict()
                for txn, ledger in sorted(self.entries.items())}
