"""Sim-time gauges: periodic samples of cluster state during a run.

The cost ledger answers "what did each transaction pay"; the time
series answers "what did the system look like while paying it" — how
many transactions were in flight, how deep the lock tables were, how
many force requests sat waiting for a group-commit batch, how many
messages were on the wire.  Samples ride the simulator's event hook
(sampling on virtual time, so a run's series is deterministic and
bit-identical across repeats) into fixed-capacity ring buffers, and
render either as JSON or as an ASCII sparkline dashboard.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

SPARK_GLYPHS = "▁▂▃▄▅▆▇█"

#: Gauge names in dashboard order.
GAUGE_NAMES = (
    "in_flight_txns",
    "locks_granted",
    "lock_waiters",
    "pending_forces",
    "in_flight_messages",
    "heuristic_events",
)


class SimTimeSeries:
    """Deterministic sim-time sampling of cluster gauges.

    Samples every ``interval`` units of *virtual* time (checked from
    the kernel's event hook, so a quiescent simulator takes no
    samples and a busy one samples exactly when the clock first
    crosses each boundary) into ring buffers of ``capacity`` points.
    Attach/detach follow the Tracer contract.
    """

    def __init__(self, interval: float = 1.0,
                 capacity: int = 1024) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.interval = interval
        self.capacity = capacity
        self.cluster = None
        self.series: Dict[str, Deque[Tuple[float, float]]] = {
            name: deque(maxlen=capacity) for name in GAUGE_NAMES}
        self._next_sample = 0.0
        self._hook: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "SimTimeSeries":
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("SimTimeSeries is already attached to a "
                               "different cluster; detach() first")
        self.cluster = cluster
        self._next_sample = cluster.simulator.now

        def on_event(event) -> None:
            if cluster.simulator.now >= self._next_sample:
                self.sample()

        self._hook = on_event
        cluster.simulator.add_event_hook(on_event)
        return self

    def detach(self) -> None:
        if self.cluster is not None and self._hook is not None:
            self.cluster.simulator.remove_event_hook(self._hook)
        self._hook = None
        self.cluster = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def _gauges(self) -> Dict[str, float]:
        cluster = self.cluster
        metrics = cluster.metrics
        in_flight = set()
        granted = waiters = 0
        pending_forces = 0
        seen_logs = set()
        for node in cluster.nodes.values():
            for txn_id, context in node.contexts.items():
                if not context.state.terminal:
                    in_flight.add(txn_id)
            for rm in node.all_rms():
                granted += rm.locks.granted_count()
                waiters += rm.locks.total_waiting()
                log = getattr(rm, "log", None)
                if log is not None and id(log) not in seen_logs:
                    seen_logs.add(id(log))
                    pending_forces += log.pending_force_count
            log = node.log
            if id(log) not in seen_logs:
                seen_logs.add(id(log))
                pending_forces += log.pending_force_count
        network = cluster.network
        lost = (metrics.drops.total(reason="partition")
                + metrics.drops.total(reason="crashed"))
        return {
            "in_flight_txns": len(in_flight),
            "locks_granted": granted,
            "lock_waiters": waiters,
            "pending_forces": pending_forces,
            "in_flight_messages": max(
                0, network.sent - network.delivered - lost),
            "heuristic_events": len(metrics.heuristics),
        }

    def sample(self) -> Dict[str, float]:
        """Take one sample now and advance the sampling boundary."""
        now = self.cluster.simulator.now
        values = self._gauges()
        for name, value in values.items():
            self.series[name].append((now, value))
        # Next boundary strictly after now, on the interval grid.
        steps = int(now / self.interval) + 1
        self._next_sample = steps * self.interval
        return values

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        return max((len(points) for points in self.series.values()),
                   default=0)

    def to_dict(self) -> Dict[str, object]:
        return {
            "interval": self.interval,
            "capacity": self.capacity,
            "series": {name: [[t, v] for t, v in points]
                       for name, points in self.series.items()},
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Dashboard
    # ------------------------------------------------------------------
    def render_dashboard(self, width: int = 60) -> str:
        """ASCII sparkline dashboard of every gauge's ring buffer."""
        lines = ["sim-time dashboard "
                 f"(interval={self.interval}, samples={self.n_samples})"]
        label_width = max(len(name) for name in GAUGE_NAMES)
        for name in GAUGE_NAMES:
            points = list(self.series[name])[-width:]
            values = [v for __, v in points]
            spark = sparkline(values)
            if values:
                stats = (f"min={min(values):g} max={max(values):g} "
                         f"last={values[-1]:g}")
            else:
                stats = "no samples"
            lines.append(f"{name:<{label_width}}  {spark:<{width}}  "
                         f"{stats}")
        return "\n".join(lines)


def sparkline(values: List[float]) -> str:
    """Map a series onto ▁▂▃▄▅▆▇█ (empty string for no samples)."""
    if not values:
        return ""
    low, high = min(values), max(values)
    span = high - low
    if span == 0:
        return SPARK_GLYPHS[0] * len(values)
    top = len(SPARK_GLYPHS) - 1
    return "".join(
        SPARK_GLYPHS[int((value - low) / span * top)] for value in values)
