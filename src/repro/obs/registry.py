"""Streaming metrics registry: labeled counters/gauges/histograms fed
incrementally from the cluster's existing hooks.

Everything earlier observability did post-hoc (journal replay, ledger
finish, report rendering) this registry does *as the run happens*:
each hook firing is one O(1) update of a pre-resolved time series, so
the registry is cheap enough to leave attached to a production server
(``repro-2pc serve`` attaches one unconditionally; the overhead ratio
is gated in ``BENCH_obs.json`` as ``registry_on``).

One registry serves both worlds — the deterministic simulator and the
live TCP transport — because it consumes only the shared hook surface
(``node.on_transition``, ``network.on_send``/``on_deliver``,
``log.on_write``/``on_flush``, lock ``on_wait``/``on_grant``/
``on_release``, and the :class:`~repro.metrics.collector.
MetricsCollector`'s completion/heuristic hooks).  The twin gate runs
one on each side and requires every counter series to match.

:meth:`MetricsRegistry.prometheus_text` renders the standard text
exposition (HELP/TYPE pairs, escaped labels, cumulative histogram
buckets) — the live ``/metrics`` endpoint body, superseding the
journal-replay-only snapshot in :func:`repro.obs.watchdog.
prometheus_text` for anything that is still running.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from repro.metrics.histogram import Histogram, geometric_bounds

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Transaction states that settle a commit context (mirrors
#: repro.obs.journal.SETTLED_STATES; duplicated to keep this module's
#: hot path free of cross-imports).
_SETTLED = frozenset({
    "committed", "aborted", "forgotten", "read-only-done",
    "heuristic-committed", "heuristic-aborted",
})

_IN_DOUBT = "prepared"

#: Histogram ladder for registry time series.  Virtual-time units in
#: the simulator, seconds live; the geometric ladder covers both.
_TIME_BOUNDS = geometric_bounds(lo=0.0001, hi=100_000.0, per_decade=3)


def escape_label_value(value: str) -> str:
    """Prometheus label-value escaping: backslash, quote, newline."""
    return (value.replace("\\", "\\\\").replace("\n", "\\n")
            .replace('"', '\\"'))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


class _Series:
    """One (family, label-values) time series holding a float."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class CounterSeries(_Series):
    """Monotone series: ``inc`` only."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {amount}")
        self.value += amount


class GaugeSeries(_Series):
    """Up/down series with ``set``/``inc``/``dec``."""

    __slots__ = ()

    def set(self, value: float) -> None:
        self.value = value

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class HistogramSeries:
    """One histogram series (wraps :class:`repro.metrics.Histogram`)."""

    __slots__ = ("hist",)

    def __init__(self, bounds: Sequence[float]) -> None:
        self.hist = Histogram(bounds)

    def observe(self, value: float) -> None:
        self.hist.record(value)

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def sum(self) -> float:
        return self.hist.total


class MetricFamily:
    """A named metric with a fixed label schema and many series.

    ``labels(*values)`` resolves (creating on first use) the child
    series for one label-value tuple — a single dict lookup, so hook
    bodies can call it per event, or pre-resolve hot children once.
    """

    __slots__ = ("name", "help", "kind", "label_names", "_series",
                 "_bounds")

    def __init__(self, name: str, help_text: str, kind: str,
                 label_names: Sequence[str] = (),
                 bounds: Sequence[float] = _TIME_BOUNDS) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self._series: Dict[Tuple[str, ...], object] = {}
        self._bounds = tuple(bounds)

    def labels(self, *values: str):
        key = values
        series = self._series.get(key)
        if series is None:
            if len(values) != len(self.label_names):
                raise ValueError(
                    f"{self.name}: expected {len(self.label_names)} "
                    f"label value(s) {self.label_names}, got {values!r}")
            if self.kind == "counter":
                series = CounterSeries()
            elif self.kind == "gauge":
                series = GaugeSeries()
            else:
                series = HistogramSeries(self._bounds)
            self._series[key] = series
        return series

    def series(self) -> Dict[Tuple[str, ...], object]:
        return dict(self._series)

    # ------------------------------------------------------------------
    def _label_str(self, values: Tuple[str, ...],
                   extra: str = "") -> str:
        parts = [f'{name}="{escape_label_value(str(value))}"'
                 for name, value in zip(self.label_names, values)]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    def exposition_lines(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        for values in sorted(self._series, key=lambda v: tuple(map(str, v))):
            series = self._series[values]
            if self.kind in ("counter", "gauge"):
                lines.append(f"{self.name}{self._label_str(values)} "
                             f"{series.value:g}")
            else:
                hist: Histogram = series.hist
                cumulative = 0
                for bound, count in zip(hist.bounds, hist.counts):
                    cumulative += count
                    le = 'le="%g"' % bound
                    lines.append(
                        f"{self.name}_bucket"
                        f"{self._label_str(values, le)} {cumulative}")
                cumulative += hist.counts[len(hist.bounds)]
                inf = 'le="+Inf"'
                lines.append(
                    f"{self.name}_bucket"
                    f"{self._label_str(values, inf)} {cumulative}")
                lines.append(f"{self.name}_sum"
                             f"{self._label_str(values)} {hist.total:g}")
                lines.append(f"{self.name}_count"
                             f"{self._label_str(values)} {hist.count}")
        return lines


class MetricsRegistry:
    """Labeled counters/gauges/histograms with Prometheus exposition.

    Use it standalone (``registry.counter(...)`` etc.), or call
    :meth:`attach` to subscribe the built-in cluster instrumentation to
    a (simulated or live) cluster's hooks.  Attach/detach follow the
    Tracer contract: attaching twice to the same cluster is a no-op,
    attaching elsewhere while attached raises, and ``detach()``
    restores every hook chain exactly (idempotent).
    """

    def __init__(self, prefix: str = "repro") -> None:
        if not _NAME_RE.match(prefix):
            raise ValueError(f"invalid metric prefix {prefix!r}")
        self.prefix = prefix
        self._families: Dict[str, MetricFamily] = {}
        # Attachment state.
        self.cluster = None
        self._installed: List[Tuple[list, object]] = []
        # Cluster-feed bookkeeping (all O(1) per event).
        self._open: Dict[Tuple[str, str], bool] = {}
        self._in_doubt_since: Dict[Tuple[str, str], float] = {}
        self._force_pending: Dict[Tuple[str, int], float] = {}
        self._wait_since: Dict[Tuple[str, str, str], float] = {}
        self._grant_since: Dict[Tuple[str, str, str], float] = {}

    # ------------------------------------------------------------------
    # Declaring metrics
    # ------------------------------------------------------------------
    def _family(self, name: str, help_text: str, kind: str,
                label_names: Sequence[str],
                bounds: Sequence[float] = _TIME_BOUNDS) -> MetricFamily:
        full = f"{self.prefix}_{name}"
        family = self._families.get(full)
        if family is not None:
            if family.kind != kind or \
                    family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {full!r} already registered as "
                    f"{family.kind}{family.label_names}")
            return family
        family = MetricFamily(full, help_text, kind, label_names, bounds)
        self._families[full] = family
        return family

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", label_names)

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", label_names)

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  bounds: Sequence[float] = _TIME_BOUNDS) -> MetricFamily:
        return self._family(name, help_text, "histogram", label_names,
                            bounds)

    def families(self) -> Dict[str, MetricFamily]:
        return dict(self._families)

    # ------------------------------------------------------------------
    # Exposition
    # ------------------------------------------------------------------
    def prometheus_text(self) -> str:
        """The full registry in Prometheus text exposition format."""
        lines: List[str] = []
        for name in sorted(self._families):
            lines.extend(self._families[name].exposition_lines())
        return "\n".join(lines) + "\n"

    def counter_samples(self) -> Dict[str, float]:
        """Every counter series as ``name{label="v",...} -> value``.

        Counters only: they count protocol events and must be identical
        between a live run and its sim replay (the twin gate asserts
        this); gauges and histograms carry wall-clock durations and
        may legitimately differ.
        """
        out: Dict[str, float] = {}
        for name in sorted(self._families):
            family = self._families[name]
            if family.kind != "counter":
                continue
            for values, series in family.series().items():
                out[f"{name}{family._label_str(values)}"] = series.value
        return out

    # ------------------------------------------------------------------
    # Cluster feed
    # ------------------------------------------------------------------
    def attach(self, cluster) -> "MetricsRegistry":
        """Subscribe the built-in instrumentation to ``cluster``.

        Works identically for :class:`repro.core.cluster.Cluster` and
        :class:`repro.transport.live.LiveCluster` — both expose the
        same hook surface.
        """
        if self.cluster is cluster:
            return self
        if self.cluster is not None:
            raise RuntimeError("MetricsRegistry is already attached to a "
                               "different cluster; detach() first")
        self.cluster = cluster

        # Pre-declare every family so /metrics is complete (and the
        # exposition shape stable) before the first event arrives.
        sends = self.counter(
            "messages_total", "Messages put on the wire, by type and "
            "sender.", ("type", "src"))
        delivers = self.counter(
            "deliveries_total", "Messages handed to their destination, "
            "by type and receiver.", ("type", "dst"))
        transitions = self.counter(
            "transitions_total", "Commit-context state transitions, by "
            "new state and node.", ("state", "node"))
        txns_open = self.gauge(
            "txns_open", "Commit contexts created but not yet settled, "
            "by node.", ("node",))
        in_doubt = self.gauge(
            "txns_in_doubt", "Commit contexts currently in the "
            "PREPARED (in-doubt) window, by node.", ("node",))
        residency = self.histogram(
            "in_doubt_residency", "Time spent in the in-doubt window "
            "before resolution.")
        writes = self.counter(
            "log_writes_total", "Log records written, by node, record "
            "type and forced flag.", ("node", "type", "forced"))
        hardens = self.counter(
            "log_hardens_total", "Log records reaching stable storage, "
            "by node.", ("node",))
        forces_pending = self.gauge(
            "forces_pending", "Forced log writes not yet hardened, by "
            "node.", ("node",))
        force_latency = self.histogram(
            "force_latency", "Time from force request to stable-storage "
            "acknowledgement.")
        lock_waits = self.counter(
            "lock_waits_total", "Lock requests that had to park in the "
            "wait queue, by node.", ("node",))
        lock_waiters = self.gauge(
            "lock_waiters", "Lock requests currently parked, by node.",
            ("node",))
        lock_wait_time = self.histogram(
            "lock_wait_time", "Time between parking and grant.")
        locks_held = self.gauge(
            "locks_held", "Currently granted locks, by node.", ("node",))
        lock_hold_time = self.histogram(
            "lock_hold_time", "Time between grant and release.")
        txns = self.counter(
            "transactions_total", "Completed transactions, by outcome.",
            ("outcome",))
        txn_latency = self.histogram(
            "txn_latency", "Transaction begin-to-outcome latency.")
        heuristics = self.counter(
            "heuristics_total", "Unilateral heuristic decisions, by "
            "decision.", ("decision",))
        # A histogram, deliberately: durations are wall-clock and thus
        # excluded from the twin's counter comparison.
        recovery_seconds = self.histogram(
            "recovery_seconds", "Restart-recovery duration (WAL scan "
            "through in-doubt resumption), by node.", ("node",))

        simulator = cluster.simulator

        def install(hook_list: list, hook) -> None:
            hook_list.append(hook)
            self._installed.append((hook_list, hook))

        def on_send(message) -> None:
            sends.labels(message.msg_type.value, message.src).inc()

        def on_deliver(message) -> None:
            delivers.labels(message.msg_type.value, message.dst).inc()

        def on_transition(node, txn_id, old, new) -> None:
            state = new.value
            transitions.labels(state, node).inc()
            key = (txn_id, node)
            if old is None:
                self._open[key] = True
                txns_open.labels(node).inc()
            if state == _IN_DOUBT:
                self._in_doubt_since[key] = simulator.now
                in_doubt.labels(node).inc()
            elif old is not None and old.value == _IN_DOUBT:
                since = self._in_doubt_since.pop(key, None)
                in_doubt.labels(node).dec()
                if since is not None:
                    residency.labels().observe(simulator.now - since)
            if state in _SETTLED and self._open.pop(key, False):
                txns_open.labels(node).dec()

        def on_write(record) -> None:
            writes.labels(record.node, record.record_type.value,
                          "true" if record.forced else "false").inc()
            if record.forced:
                self._force_pending[(record.node, record.lsn)] = \
                    simulator.now
                forces_pending.labels(record.node).inc()

        def on_flush(durable) -> None:
            for record in durable:
                hardens.labels(record.node).inc()
                since = self._force_pending.pop(
                    (record.node, record.lsn), None)
                if since is not None:
                    forces_pending.labels(record.node).dec()
                    force_latency.labels().observe(simulator.now - since)

        def on_transaction(record) -> None:
            txns.labels(record.outcome).inc()
            txn_latency.labels().observe(record.latency)

        def on_heuristic(event) -> None:
            heuristics.labels(event.decision).inc()

        def on_recovery(record) -> None:
            recovery_seconds.labels(record.node).observe(record.seconds)

        install(cluster.network.on_send, on_send)
        install(cluster.network.on_deliver, on_deliver)
        install(cluster.metrics.on_transaction, on_transaction)
        install(cluster.metrics.on_heuristic, on_heuristic)
        install(cluster.metrics.on_recovery, on_recovery)
        for node in cluster.nodes.values():
            install(node.on_transition, on_transition)
            seen_logs = set()
            for rm in [node] + node.all_rms():
                log = getattr(rm, "log", None)
                if log is None or id(log) in seen_logs:
                    continue
                seen_logs.add(id(log))
                install(log.on_write, on_write)
                install(log.on_flush, on_flush)
            for rm in node.all_rms():
                locks = rm.locks
                node_name = node.name

                def on_wait(txn_id, key, mode, _node=node_name):
                    lock_waits.labels(_node).inc()
                    lock_waiters.labels(_node).inc()
                    self._wait_since[(_node, txn_id, key)] = simulator.now

                def on_grant(txn_id, key, mode, _node=node_name):
                    locks_held.labels(_node).inc()
                    self._grant_since[(_node, txn_id, key)] = simulator.now
                    since = self._wait_since.pop((_node, txn_id, key),
                                                 None)
                    if since is not None:
                        lock_waiters.labels(_node).dec()
                        lock_wait_time.labels().observe(
                            simulator.now - since)

                def on_release(txn_id, key, _node=node_name):
                    locks_held.labels(_node).dec()
                    since = self._grant_since.pop((_node, txn_id, key),
                                                  None)
                    if since is not None:
                        lock_hold_time.labels().observe(
                            simulator.now - since)

                install(locks.on_wait, on_wait)
                install(locks.on_grant, on_grant)
                install(locks.on_release, on_release)
        return self

    def detach(self) -> None:
        """Remove every installed hook (idempotent).

        The accumulated series survive detach — the registry is a
        record of what it saw, not a live view.
        """
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass
        self._installed = []
        self.cluster = None

    @property
    def attached(self) -> bool:
        return self.cluster is not None
