"""RunReport: the percentile view of one simulation run.

The paper's tables report per-transaction *counts* (flows, log writes,
forced writes); a commercial operator also wants *distributions* —
what did commit latency, lock hold time and log-force latency look
like at the tail?  :class:`RunReport` pulls both out of a cluster's
:class:`~repro.metrics.collector.MetricsCollector` (plus, optionally,
phase durations from an attached
:class:`~repro.obs.tracer.SpanTracer`) into histograms, renders a
summary table, and serialises to JSON for sweep persistence.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.metrics.histogram import Histogram


class RunReport:
    """Distribution summary of one run."""

    def __init__(self) -> None:
        #: name -> Histogram; insertion order is render order.
        self.distributions: Dict[str, Histogram] = {}
        #: scalar counters shown under the table.
        self.counters: Dict[str, float] = {}
        #: free-form annotations (deadlock victims, audit anomalies);
        #: merged by concatenation.
        self.notes: List[str] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_run(cls, cluster, tracer=None, ledger=None,
                 auditor=None, watchdog=None) -> "RunReport":
        """Build from a finished cluster.

        ``tracer``, ``ledger``, ``auditor`` and ``watchdog`` (a
        :class:`~repro.obs.tracer.SpanTracer`,
        :class:`~repro.obs.ledger.CostLedger`,
        :class:`~repro.obs.audit.ConformanceAuditor` and
        :class:`~repro.obs.watchdog.Watchdog`) each contribute
        their sections when supplied.
        """
        report = cls()
        metrics = cluster.metrics

        latency = Histogram()
        for record in metrics.transactions:
            latency.record(record.latency)
        report.distributions["txn latency"] = latency

        locks = Histogram()
        locks.record_many(metrics.lock_holds)
        report.distributions["lock hold"] = locks

        forces = Histogram()
        forces.record_many(d for __, d in metrics.force_latencies)
        report.distributions["log-force latency"] = forces

        if metrics.recoveries:
            recovery = Histogram()
            recovery.record_many(r.seconds for r in metrics.recoveries)
            report.distributions["recovery time"] = recovery

        if tracer is not None:
            for phase, durations in sorted(
                    tracer.phase_durations().items()):
                histogram = Histogram()
                histogram.record_many(durations)
                report.distributions[f"phase: {phase}"] = histogram

        if ledger is not None:
            flows = Histogram()
            writes = Histogram()
            forced = Histogram()
            lock_time = Histogram()
            for txn_id in sorted(ledger.protocol_txn_ids()):
                costs = ledger.cost_summary(txn_id)
                flows.record(costs.flows)
                writes.record(costs.log_writes)
                forced.record(costs.forced_writes)
                lock_time.record(ledger.lock_time(txn_id))
            report.distributions["txn flows"] = flows
            report.distributions["txn log writes"] = writes
            report.distributions["txn forced writes"] = forced
            report.distributions["txn lock time"] = lock_time

        outcomes: Dict[str, int] = {}
        for record in metrics.transactions:
            outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        report.counters = {
            "transactions": len(metrics.transactions),
            "commits": outcomes.get("commit", 0),
            "aborts": outcomes.get("abort", 0),
            "heuristic decisions": len(metrics.heuristics),
            "recovery anomalies": metrics.recovery_anomaly_count(),
            "restart recoveries": len(metrics.recoveries),
            "recovery records replayed": sum(
                r.records_replayed for r in metrics.recoveries),
            "deadlocks detected": metrics.deadlock_count(),
            "commit flows": metrics.commit_flows(),
            "log writes": metrics.total_log_writes(),
            "forced writes": metrics.forced_log_writes(),
            "physical log I/Os": metrics.physical_ios(),
        }
        for victim in metrics.deadlock_victims():
            report.notes.append(f"deadlock victim: {victim}")

        if auditor is not None:
            counts = auditor.counts()
            report.counters["audit conforms"] = counts["conforms"]
            report.counters["audit expected-under-faults"] = \
                counts["expected-under-faults"]
            report.counters["audit anomalies"] = counts["anomaly"]
            for finding in auditor.anomalies():
                report.notes.append(
                    f"audit anomaly: {finding.txn_id} observed "
                    f"{finding.observed} expected {finding.expected}")

        if watchdog is not None:
            findings = watchdog.findings()
            report.counters["watchdog findings"] = len(findings)
            for finding in findings:
                report.notes.append(f"watchdog {finding.describe()}")
        return report

    def add_distribution(self, name: str, histogram: Histogram) -> None:
        self.distributions[name] = histogram

    # ------------------------------------------------------------------
    # Rendering / serialisation
    # ------------------------------------------------------------------
    def rows(self) -> List[List[str]]:
        rows = []
        for name, histogram in self.distributions.items():
            if not histogram.count:
                rows.append([name, "0", "-", "-", "-", "-", "-"])
                continue
            rows.append([
                name,
                str(histogram.count),
                f"{histogram.mean:.3f}",
                f"{histogram.p50:.3f}",
                f"{histogram.p90:.3f}",
                f"{histogram.p99:.3f}",
                f"{histogram.max:.3f}",
            ])
        return rows

    def render(self, title: str = "Run report") -> str:
        from repro.analysis.render import render_table
        table = render_table(
            ["distribution", "n", "mean", "p50", "p90", "p99", "max"],
            self.rows(), title=title)
        counter_lines = "\n".join(
            f"  {name}: {value}" for name, value in self.counters.items())
        note_lines = "\n".join(f"  note: {note}" for note in self.notes)
        parts = [table]
        if counter_lines:
            parts.append(counter_lines)
        if note_lines:
            parts.append(note_lines)
        return "\n".join(parts)

    def to_dict(self) -> Dict[str, object]:
        return {
            "distributions": {name: histogram.summary()
                              for name, histogram in
                              self.distributions.items()},
            "counters": dict(self.counters),
            "notes": list(self.notes),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def merge(self, other: "RunReport") -> "RunReport":
        """Fold another report in (sweep workers merge per-cell reports)."""
        for name, histogram in other.distributions.items():
            mine = self.distributions.get(name)
            if mine is None:
                fresh = Histogram(bounds=histogram.bounds)
                self.distributions[name] = fresh.merge(histogram)
            else:
                mine.merge(histogram)
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.notes.extend(other.notes)
        return self
