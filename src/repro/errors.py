"""Exception hierarchy shared across the library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every library-specific error."""


class ProtocolError(ReproError):
    """A commit-protocol rule was violated (e.g. two independent
    coordinators initiated commit for the same transaction)."""


class ConfigurationError(ReproError):
    """An invalid protocol or cluster configuration was supplied."""


class DeadlockError(ReproError):
    """The lock manager detected a waits-for cycle; the requester is
    chosen as the victim and must abort."""

    def __init__(self, txn_id: str, cycle: list) -> None:
        super().__init__(f"deadlock: txn {txn_id} in cycle {' -> '.join(cycle)}")
        self.txn_id = txn_id
        self.cycle = cycle


class TransactionAborted(ReproError):
    """Raised to application code when its transaction was aborted."""

    def __init__(self, txn_id: str, reason: str) -> None:
        super().__init__(f"transaction {txn_id} aborted: {reason}")
        self.txn_id = txn_id
        self.reason = reason


class LockError(ReproError):
    """Lock-manager misuse (releasing a lock that is not held, etc.)."""
