"""The operator console.

The paper treats heuristic decisions as something a human operator (or
an operator-configured policy) takes when in-doubt transactions hold
"valuable locks" too long, and damage as something "reported to the
subordinate system's operator".  This module is that surface: list
in-doubt transactions, inspect the damage log, force a heuristic
commit/abort (the CICS ``CEMT``-style verb), and kick recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.states import TxnState
from repro.errors import ConfigurationError, ProtocolError
from repro.metrics.collector import HeuristicEvent


@dataclass
class InDoubtEntry:
    """One in-doubt transaction as the operator sees it."""

    node: str
    txn_id: str
    coordinator: Optional[str]
    in_doubt_for: float          # virtual time spent in the window
    held_keys: List[str]
    phase: str = "prepared"      # protocol state holding the window open

    def __str__(self) -> str:
        keys = ", ".join(self.held_keys) or "-"
        return (f"{self.txn_id}@{self.node} (coordinator "
                f"{self.coordinator or '?'}): in doubt for "
                f"{self.in_doubt_for:.1f}, holding [{keys}]")

    def to_dict(self) -> Dict[str, object]:
        return {"node": self.node, "txn": self.txn_id,
                "coordinator": self.coordinator,
                "in_doubt_for": round(self.in_doubt_for, 6),
                "held_keys": list(self.held_keys), "phase": self.phase}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "InDoubtEntry":
        return cls(node=data["node"], txn_id=data["txn"],
                   coordinator=data.get("coordinator"),
                   in_doubt_for=float(data.get("in_doubt_for", 0.0)),
                   held_keys=list(data.get("held_keys") or []),
                   phase=data.get("phase", "prepared"))


class OperatorConsole:
    """Inspect and intervene in one cluster's transaction state.

    ``cluster`` is anything exposing the shared cluster surface
    (``simulator`` / ``nodes`` / ``metrics``) — the simulated
    :class:`~repro.core.cluster.Cluster` or the live
    :class:`~repro.transport.live.LiveCluster`; the admin plane
    serves this console's verbs over HTTP for the latter.
    """

    def __init__(self, cluster) -> None:
        self.cluster = cluster

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def in_doubt_transactions(self,
                              node: Optional[str] = None
                              ) -> List[InDoubtEntry]:
        """Every transaction currently stuck in the in-doubt window."""
        entries = []
        now = self.cluster.simulator.now
        names = [node] if node else sorted(self.cluster.nodes)
        for name in names:
            tm = self.cluster.nodes[name]
            for context in tm.contexts.values():
                if context.state is not TxnState.PREPARED:
                    continue
                if context.is_decision_maker and \
                        context.last_agent_child is None:
                    continue
                held: List[str] = []
                for rm in tm.all_rms():
                    held.extend(sorted(rm.locks.held_keys(context.txn_id)))
                prepared = next(
                    (r for r in tm.log.records_for(context.txn_id)
                     if r.record_type.value == "prepared"), None)
                since = prepared.written_at if prepared else now
                entries.append(InDoubtEntry(
                    node=name, txn_id=context.txn_id,
                    coordinator=context.parent,
                    in_doubt_for=now - since, held_keys=held,
                    phase=context.state.value))
        return entries

    def damage_report(self) -> List[HeuristicEvent]:
        """All heuristic decisions whose damage status is known bad."""
        return self.cluster.metrics.damaged_heuristics()

    def heuristic_log(self) -> List[HeuristicEvent]:
        """Every heuristic decision taken in this cluster."""
        return list(self.cluster.metrics.heuristics)

    # ------------------------------------------------------------------
    # Intervention
    # ------------------------------------------------------------------
    def force_outcome(self, node: str, txn_id: str,
                      decision: str) -> None:
        """Manually take a heuristic decision for an in-doubt txn.

        The operator's judgement replaces the timer: the decision is
        force-logged, applied locally, and any later conflict with the
        tree's outcome is detected and reported as damage.
        """
        tm = self._node(node)
        context = tm.ctx(txn_id)
        if context is None:
            raise ProtocolError(f"{node} knows nothing about {txn_id}")
        if not tm.heuristic_decide(context, decision):
            raise ProtocolError(
                f"{txn_id}@{node} is not in doubt "
                f"(state {context.state.value})")

    def force_commit(self, node: str, txn_id: str) -> None:
        self.force_outcome(node, txn_id, "commit")

    def force_abort(self, node: str, txn_id: str) -> None:
        self.force_outcome(node, txn_id, "abort")

    def resync(self, node: str, txn_id: str) -> None:
        """Kick recovery for an in-doubt transaction right now (send
        the inquiry without waiting for any timer)."""
        tm = self._node(node)
        context = tm.ctx(txn_id)
        if context is None or context.state is not TxnState.PREPARED:
            raise ProtocolError(f"{txn_id}@{node} is not in doubt")
        if tm.config.coordinator_driven_recovery:
            raise ProtocolError(
                "Presumed Nothing recovery is coordinator-driven; the "
                "subordinate operator cannot inquire")
        tm._start_inquiry(context)

    def _node(self, name: str):
        if name not in self.cluster.nodes:
            raise ConfigurationError(f"unknown node {name!r}")
        return self.cluster.nodes[name]
