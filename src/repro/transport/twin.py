"""The deployment twin: live TCP run vs deterministic sim replay.

Workflow (the ``repro-2pc live`` command and the ``--twin`` gate):

1. Run a seeded workload on a :class:`LiveCluster` over localhost TCP
   with real fsyncs, recording the journal with PR 7's
   ``JournalRecorder`` and checking it with the ``ProtocolChecker``.
2. Extract the live run's *delivery schedule*: the global order in
   which messages were handed to their destinations.  Real sockets
   make that order nondeterministic (vote and ack races); it is the
   only free variable between the two worlds.
3. Replay the same workload in the deterministic simulator with a
   :class:`ScheduledNetwork` that delivers messages in exactly the
   recorded order.
4. Require ``diff_journals(live, sim, ignore_time=True)`` to come back
   empty, checker verdicts to match, per-transaction cost triples
   (flows / log writes / forced writes) to be identical, and — on the
   live side — every counted physical log I/O to be one real fsync.

An empty diff means the live system performed a causally equivalent
execution of the same protocol: the simulation's cost tables are
measurements of the deployable system, not of a model of it.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.cluster import Cluster
from repro.core.config import (BASIC_2PC, PRESUMED_ABORT, PRESUMED_COMMIT,
                               PRESUMED_NOTHING, ProtocolConfig)
from repro.core.spec import TransactionSpec
from repro.net.message import Message
from repro.net.network import Network
from repro.obs.diff import Divergence, diff_journals
from repro.obs.journal import JournalEntry, JournalRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.watchdog import Watchdog
from repro.sim.randomness import RandomStream
from repro.transport.live import LiveCluster
from repro.verify.checker import ProtocolChecker
from repro.workload.generator import WorkloadGenerator, WorkloadParams

TWIN_PROTOCOLS: Dict[str, ProtocolConfig] = {
    "basic": BASIC_2PC,
    "presumed_abort": PRESUMED_ABORT,
    "presumed_nothing": PRESUMED_NOTHING,
    "presumed_commit": PRESUMED_COMMIT,
}

DEFAULT_NODES = ("n0", "n1", "n2")

#: A delivery is identified by (src, dst, message type, txn); repeats
#: of the same key are matched by occurrence order.
DeliveryKey = Tuple[str, str, str, str]


def twin_specs(seed: int, txns: int,
               nodes: Sequence[str]) -> List[TransactionSpec]:
    """The seeded workload, with explicit txn ids shared by both worlds."""
    generator = WorkloadGenerator(
        list(nodes), WorkloadParams(read_only_fraction=0.3, key_space=4),
        RandomStream(seed))
    specs = list(generator.stream(txns))
    for index, spec in enumerate(specs):
        spec.txn_id = f"t{index}"
    return specs


def delivery_schedule(entries: Sequence[JournalEntry]) -> List[DeliveryKey]:
    """The global delivery order observed in a journal."""
    return [(e.peer, e.node, e.ref, e.txn)
            for e in entries if e.kind == "deliver"]


def _cost_triple(metrics, txn: str) -> Tuple[int, int, int]:
    summary = metrics.cost_summary(txn)
    return (summary.flows, summary.log_writes, summary.forced_writes)


class ScheduledNetwork(Network):
    """Network that replays a recorded global delivery order.

    Each accepted message looks up its next recorded occurrence and is
    delivered at ``(index + 1) * STEP`` virtual time — a strictly
    increasing timeline that reproduces the live run's interleaving
    inside the deterministic simulator.  Unmatched sends (a protocol
    divergence) are delivered after the schedule and reported.
    """

    STEP = 1.0

    def __init__(self, simulator, metrics, latency=None) -> None:
        super().__init__(simulator, metrics, latency)
        self._queues: Dict[DeliveryKey, Deque[int]] = {}
        self._total = 0
        self._overflow = 0
        self.unmatched: List[DeliveryKey] = []

    def load_schedule(self, order: Sequence[DeliveryKey]) -> None:
        for index, key in enumerate(order):
            self._queues.setdefault(key, deque()).append(index)
        self._total = len(order)

    def _transmit(self, message: Message, delay: float) -> None:
        key = (message.src, message.dst, message.msg_type.value,
               message.txn_id)
        queue = self._queues.get(key)
        if queue:
            index = queue.popleft()
        else:
            self.unmatched.append(key)
            index = self._total + self._overflow
            self._overflow += 1
        arrival = (index + 1) * self.STEP
        if arrival < self.simulator.now:
            # A replay running ahead of the recorded timeline is itself
            # a divergence; deliver now and let the diff localize it.
            arrival = self.simulator.now
        self.simulator.at(arrival, lambda: self._deliver(message),
                          name=f"deliver:{message.describe()}")


@dataclass
class RunCapture:
    """Everything one side of the twin produces for comparison."""

    entries: List[JournalEntry]
    outcomes: Dict[str, Optional[str]]
    violations: List[str]
    costs: Dict[str, Tuple[int, int, int]]
    physical_ios: Dict[str, int]
    fsyncs: Dict[str, int] = field(default_factory=dict)
    forced_writes: Dict[str, int] = field(default_factory=dict)
    unmatched: List[DeliveryKey] = field(default_factory=list)
    #: Streaming-registry counter series (gauges/histograms carry
    #: clock-dependent durations and are excluded from the twin).
    registry_counters: Dict[str, float] = field(default_factory=dict)


@dataclass
class TwinReport:
    """Result of one live-vs-sim twin check."""

    protocol: str
    txns: int
    seed: int
    divergence: Optional[Divergence]
    outcome_mismatches: List[str]
    verdict_mismatches: List[str]
    cost_mismatches: List[str]
    fsync_mismatches: List[str]
    unmatched_sends: List[DeliveryKey]
    live_entries: int
    sim_entries: int
    registry_mismatches: List[str] = field(default_factory=list)
    #: Classified transport/socket failures (e.g. loopback unavailable)
    #: that prevented or degraded the live run — surfaced, not
    #: swallowed.
    transport_errors: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return (self.divergence is None and not self.outcome_mismatches
                and not self.verdict_mismatches and not self.cost_mismatches
                and not self.fsync_mismatches and not self.unmatched_sends
                and not self.registry_mismatches
                and not self.transport_errors)

    def describe(self) -> str:
        if self.transport_errors:
            return "\n".join([f"{self.protocol}: TWIN COULD NOT RUN"]
                             + self.transport_errors)
        if self.clean:
            return (f"{self.protocol}: twin clean — {self.txns} txns, "
                    f"{self.live_entries} journal entries causally "
                    f"equivalent, costs, verdicts and registry counters "
                    f"identical, every physical log I/O one real fsync")
        lines = [f"{self.protocol}: TWIN DIVERGED"]
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        lines.extend(self.outcome_mismatches)
        lines.extend(self.verdict_mismatches)
        lines.extend(self.cost_mismatches)
        lines.extend(self.fsync_mismatches)
        lines.extend(self.registry_mismatches)
        if self.unmatched_sends:
            lines.append(f"unmatched replay sends: {self.unmatched_sends}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "txns": self.txns,
            "seed": self.seed,
            "clean": self.clean,
            "divergence": (None if self.divergence is None
                           else self.divergence.describe()),
            "outcome_mismatches": self.outcome_mismatches,
            "verdict_mismatches": self.verdict_mismatches,
            "cost_mismatches": self.cost_mismatches,
            "fsync_mismatches": self.fsync_mismatches,
            "registry_mismatches": self.registry_mismatches,
            "unmatched_sends": [list(k) for k in self.unmatched_sends],
            "live_entries": self.live_entries,
            "sim_entries": self.sim_entries,
            "transport_errors": self.transport_errors,
        }


# ----------------------------------------------------------------------
# The two runs
# ----------------------------------------------------------------------
async def _run_live(config: ProtocolConfig, seed: int, txns: int,
                    nodes: Sequence[str],
                    log_dir: Optional[str]) -> RunCapture:
    # Live log I/O completes on the next loop turn; the real cost is the
    # fsync itself, not a simulated seek.
    from repro.ops import OperatorConsole
    from repro.transport.admin import AdminServer

    cluster = LiveCluster(config.with_options(io_latency=0.0),
                          nodes=list(nodes), seed=seed, log_dir=log_dir)
    recorder = JournalRecorder().attach(cluster)
    registry = MetricsRegistry().attach(cluster)
    checker = ProtocolChecker().attach(cluster)
    # The full admin plane rides along: the twin proves that serving
    # /metrics and rescanning watchdogs does not perturb the run.
    admin = AdminServer(cluster, registry=registry, recorder=recorder,
                        watchdog=Watchdog(),
                        console=OperatorConsole(cluster))
    await cluster.start()
    await admin.start()
    outcomes: Dict[str, Optional[str]] = {}
    try:
        for spec in twin_specs(seed, txns, nodes):
            handle = await cluster.run_transaction(spec)
            outcomes[spec.txn_id] = handle.outcome
            checker.check_atomicity(spec.txn_id)
    finally:
        await admin.stop()
        await cluster.stop()
    recorder.detach()
    registry.detach()
    checker.detach()
    txn_ids = list(outcomes)
    return RunCapture(
        entries=recorder.entries(),
        outcomes=outcomes,
        violations=[str(v) for v in checker.violations],
        costs={t: _cost_triple(cluster.metrics, t) for t in txn_ids},
        physical_ios={n: cluster.metrics.physical_ios(n)
                      for n in cluster.nodes},
        fsyncs=cluster.fsync_counts(),
        forced_writes={n: cluster.metrics.forced_log_writes(node=n)
                       for n in cluster.nodes},
        registry_counters=registry.counter_samples(),
    )


def _run_replay(config: ProtocolConfig, seed: int, txns: int,
                nodes: Sequence[str],
                schedule: Sequence[DeliveryKey]) -> RunCapture:
    # Tiny io_latency keeps forced-write chains well inside one STEP of
    # the replayed delivery timeline.
    cluster = Cluster(config.with_options(io_latency=1e-6),
                      nodes=list(nodes), seed=seed,
                      network_class=ScheduledNetwork)
    cluster.network.load_schedule(schedule)
    recorder = JournalRecorder().attach(cluster)
    registry = MetricsRegistry().attach(cluster)
    checker = ProtocolChecker().attach(cluster)
    outcomes: Dict[str, Optional[str]] = {}
    for spec in twin_specs(seed, txns, nodes):
        handle = cluster.run_transaction(spec)
        outcomes[spec.txn_id] = handle.outcome
        checker.check_atomicity(spec.txn_id)
    recorder.detach()
    registry.detach()
    checker.detach()
    txn_ids = list(outcomes)
    return RunCapture(
        entries=recorder.entries(),
        outcomes=outcomes,
        violations=[str(v) for v in checker.violations],
        costs={t: _cost_triple(cluster.metrics, t) for t in txn_ids},
        physical_ios={n: cluster.metrics.physical_ios(n)
                      for n in cluster.nodes},
        unmatched=list(cluster.network.unmatched),
        registry_counters=registry.counter_samples(),
    )


# ----------------------------------------------------------------------
# The check
# ----------------------------------------------------------------------
def run_twin_check(protocol: str, seed: int = 11, txns: int = 6,
                   nodes: Sequence[str] = DEFAULT_NODES,
                   log_dir: Optional[str] = None) -> TwinReport:
    """Live run → recorded schedule → sim replay → full comparison."""
    config = TWIN_PROTOCOLS[protocol]
    try:
        if log_dir is None:
            # Real fsync semantics are part of the check; default to a
            # throwaway WAL directory rather than silently skipping them.
            import tempfile
            with tempfile.TemporaryDirectory(prefix="repro-twin-") as tmp:
                live = asyncio.run(_run_live(config, seed, txns, nodes, tmp))
        else:
            live = asyncio.run(_run_live(config, seed, txns, nodes, log_dir))
    except OSError as error:
        # A sandbox without loopback (or an exhausted fd/port table)
        # fails here; classify and surface it instead of crashing out
        # with a bare traceback — the gates print the reason and skip.
        return TwinReport(
            protocol=protocol, txns=txns, seed=seed, divergence=None,
            outcome_mismatches=[], verdict_mismatches=[],
            cost_mismatches=[], fsync_mismatches=[], unmatched_sends=[],
            live_entries=0, sim_entries=0,
            transport_errors=[classify_socket_error(error)])
    schedule = delivery_schedule(live.entries)
    sim = _run_replay(config, seed, txns, nodes, schedule)

    if log_dir is not None:
        # Persist both journals next to the WALs so the recorded run
        # can be re-diffed by hand: ``repro-2pc diff live.jsonl
        # sim.jsonl --ignore-time``.
        import os
        from repro.obs.journal import journal_to_jsonl
        for label, capture, transport_name in (
                ("live", live, "tcp-live"), ("sim", sim, "sim-replay")):
            path = os.path.join(log_dir, f"{protocol}-{label}.jsonl")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(journal_to_jsonl(capture.entries, meta={
                    "workload": protocol, "seed": seed, "txns": txns,
                    "transport": transport_name}))

    divergence = diff_journals(live.entries, sim.entries, ignore_time=True)

    outcome_mismatches = [
        f"outcome[{t}]: live={live.outcomes.get(t)} sim={sim.outcomes.get(t)}"
        for t in sorted(set(live.outcomes) | set(sim.outcomes))
        if live.outcomes.get(t) != sim.outcomes.get(t)]
    verdict_mismatches = []
    if sorted(live.violations) != sorted(sim.violations):
        verdict_mismatches.append(
            f"checker verdicts differ: live={live.violations} "
            f"sim={sim.violations}")
    cost_mismatches = [
        f"cost[{t}]: live={live.costs.get(t)} sim={sim.costs.get(t)}"
        for t in sorted(set(live.costs) | set(sim.costs))
        if live.costs.get(t) != sim.costs.get(t)]
    registry_mismatches = [
        f"registry[{series}]: live={live.registry_counters.get(series)} "
        f"sim={sim.registry_counters.get(series)}"
        for series in sorted(set(live.registry_counters)
                             | set(sim.registry_counters))
        if live.registry_counters.get(series, 0.0)
        != sim.registry_counters.get(series, 0.0)]

    fsync_mismatches = []
    for node, fsyncs in sorted(live.fsyncs.items()):
        ios = live.physical_ios.get(node, 0)
        if fsyncs != ios:
            fsync_mismatches.append(
                f"fsync[{node}]: {fsyncs} real fsyncs for {ios} counted "
                f"physical I/Os")
        forced = live.forced_writes.get(node, 0)
        if fsyncs != forced:
            fsync_mismatches.append(
                f"fsync[{node}]: {fsyncs} real fsyncs for {forced} forced "
                f"writes")

    return TwinReport(
        protocol=protocol,
        txns=txns,
        seed=seed,
        divergence=divergence,
        outcome_mismatches=outcome_mismatches,
        verdict_mismatches=verdict_mismatches,
        cost_mismatches=cost_mismatches,
        fsync_mismatches=fsync_mismatches,
        unmatched_sends=sim.unmatched,
        live_entries=len(live.entries),
        sim_entries=len(sim.entries),
        registry_mismatches=registry_mismatches,
    )


def run_twin_matrix(seed: int = 11, txns: int = 6,
                    nodes: Sequence[str] = DEFAULT_NODES,
                    log_dir: Optional[str] = None
                    ) -> Dict[str, TwinReport]:
    """Twin-check every protocol family (the ``--twin`` gate body)."""
    return {name: run_twin_check(name, seed=seed, txns=txns, nodes=nodes,
                                 log_dir=log_dir)
            for name in TWIN_PROTOCOLS}


def classify_socket_error(error: OSError) -> str:
    """One-line, operator-readable classification of a socket failure."""
    import errno
    name = errno.errorcode.get(error.errno, "OSError") \
        if error.errno is not None else type(error).__name__
    reasons = {
        "EPERM": "socket operations forbidden (sandbox/seccomp policy)",
        "EACCES": "socket access denied (permissions)",
        "EAFNOSUPPORT": "IPv4 not supported on this host",
        "EADDRNOTAVAIL": "127.0.0.1 not configured (no loopback interface)",
        "EADDRINUSE": "address already in use",
        "ECONNREFUSED": "connection refused (peer not listening)",
        "EMFILE": "file-descriptor limit exhausted",
        "ENFILE": "system file table exhausted",
    }
    detail = reasons.get(name, str(error) or "unclassified socket error")
    return f"{name}: {detail}"


def loopback_status() -> Tuple[bool, str]:
    """Probe localhost TCP; returns (available, reason).

    The reason is "ok" when available and a classified error
    otherwise — callers must surface it (a silently skipped live gate
    hid a sandbox misconfiguration once; never again).
    """
    import socket
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            probe.bind(("127.0.0.1", 0))
            probe.listen(1)
        finally:
            probe.close()
        return True, "ok"
    except OSError as error:
        return False, classify_socket_error(error)


def loopback_available() -> bool:
    """Can we bind a localhost TCP socket in this sandbox?"""
    return loopback_status()[0]
