"""Wire codecs for the live transport: JSON frames over TCP.

Frames are 4-byte big-endian length prefixes followed by a compact
UTF-8 JSON object — the simplest encoding that preserves per-link
session ordering over a TCP stream (the LU 6.2 FIFO contract the
simulated :class:`repro.net.network.Network` also honours).

Protocol payloads are JSON-safe except for three keys that carry
actual objects inside the process: ``spec`` / ``participant`` (commit
trees on enrollment DATA flows) and ``piggyback`` (nested messages on
long-locks conversations); those get explicit codecs.  ``msg_id`` is
carried verbatim so the journal recorder pairs a send observed at the
source with its delivery at the destination.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, Optional

from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.log.records import LogRecord, LogRecordType
from repro.lrm.operations import OpKind, Operation
from repro.net.message import Message, MessageType, Phase

_LEN = struct.Struct(">I")

#: Ceiling on a single frame; a length prefix beyond this is treated as
#: a corrupt stream rather than an allocation request.
MAX_FRAME = 16 * 1024 * 1024


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_frame(obj: Dict[str, Any]) -> bytes:
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ValueError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return _LEN.pack(len(body)) + body


async def read_frame(reader: "asyncio.StreamReader"
                     ) -> Optional[Dict[str, Any]]:
    """Read one frame; returns None on a clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME:
        raise ValueError(f"frame length {length} exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# Operations / specs
# ----------------------------------------------------------------------
def operation_to_wire(op: Operation) -> Dict[str, Any]:
    return {"kind": op.kind.value, "key": op.key, "value": op.value}


def operation_from_wire(data: Dict[str, Any]) -> Operation:
    return Operation(kind=OpKind(data["kind"]), key=data["key"],
                     value=data.get("value"))


def participant_to_wire(part: ParticipantSpec) -> Dict[str, Any]:
    return {
        "node": part.node,
        "parent": part.parent,
        "ops": [operation_to_wire(op) for op in part.ops],
        "rm_ops": {rm: [operation_to_wire(op) for op in ops]
                   for rm, ops in part.rm_ops.items()},
        "last_agent": part.last_agent,
        "unsolicited_vote": part.unsolicited_vote,
        "ok_to_leave_out": part.ok_to_leave_out,
        "long_locks": part.long_locks,
        "veto": part.veto,
    }


def participant_from_wire(data: Dict[str, Any]) -> ParticipantSpec:
    return ParticipantSpec(
        node=data["node"],
        parent=data.get("parent"),
        ops=[operation_from_wire(op) for op in data.get("ops", [])],
        rm_ops={rm: [operation_from_wire(op) for op in ops]
                for rm, ops in data.get("rm_ops", {}).items()},
        last_agent=data.get("last_agent", False),
        unsolicited_vote=data.get("unsolicited_vote", False),
        ok_to_leave_out=data.get("ok_to_leave_out", False),
        long_locks=data.get("long_locks", False),
        veto=data.get("veto", False),
    )


def spec_to_wire(spec: TransactionSpec) -> Dict[str, Any]:
    return {
        "txn_id": spec.txn_id,
        "await_work_done": spec.await_work_done,
        "long_locks": spec.long_locks,
        "participants": [participant_to_wire(p) for p in spec.participants],
    }


def spec_from_wire(data: Dict[str, Any]) -> TransactionSpec:
    return TransactionSpec(
        participants=[participant_from_wire(p)
                      for p in data["participants"]],
        txn_id=data["txn_id"],
        await_work_done=data.get("await_work_done", True),
        long_locks=data.get("long_locks", False),
    )


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------
def _payload_to_wire(payload: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if key == "spec":
            out[key] = spec_to_wire(value)
        elif key == "participant":
            out[key] = participant_to_wire(value)
        elif key == "piggyback":
            out[key] = [message_to_wire(m) for m in value]
        else:
            out[key] = value
    return out


def _payload_from_wire(payload: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in payload.items():
        if key == "spec":
            out[key] = spec_from_wire(value)
        elif key == "participant":
            out[key] = participant_from_wire(value)
        elif key == "piggyback":
            out[key] = [message_from_wire(m) for m in value]
        else:
            out[key] = value
    return out


def message_to_wire(message: Message) -> Dict[str, Any]:
    return {
        "msg_type": message.msg_type.value,
        "txn_id": message.txn_id,
        "src": message.src,
        "dst": message.dst,
        "phase": message.phase.value,
        "flags": dict(message.flags),
        "payload": _payload_to_wire(message.payload),
        "msg_id": message.msg_id,
    }


def message_from_wire(data: Dict[str, Any]) -> Message:
    return Message(
        msg_type=MessageType(data["msg_type"]),
        txn_id=data["txn_id"],
        src=data["src"],
        dst=data["dst"],
        phase=Phase(data["phase"]),
        flags=dict(data.get("flags", {})),
        payload=_payload_from_wire(data.get("payload", {})),
        msg_id=data["msg_id"],
    )


# ----------------------------------------------------------------------
# Log records (the on-disk WAL line format)
# ----------------------------------------------------------------------
def record_to_wire(record: LogRecord) -> Dict[str, Any]:
    return {
        "lsn": record.lsn,
        "txn_id": record.txn_id,
        "record_type": record.record_type.value,
        "node": record.node,
        "forced": record.forced,
        "written_at": record.written_at,
        "payload": record.payload,
    }


def record_from_wire(data: Dict[str, Any]) -> LogRecord:
    return LogRecord(
        lsn=data["lsn"],
        txn_id=data["txn_id"],
        record_type=LogRecordType(data["record_type"]),
        node=data["node"],
        forced=data["forced"],
        written_at=data["written_at"],
        payload=dict(data.get("payload", {})),
    )
