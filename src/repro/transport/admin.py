"""The admin plane: an HTTP window into a running live cluster.

``repro-2pc serve`` (PR 8) kept a cluster up for external clients but
was a black box while running — every observability surface in the
repo worked post-hoc over a finished journal.  :class:`AdminServer`
puts the operator *inside* the run: a tiny asyncio HTTP/1.1 endpoint
(stdlib only, ``Connection: close`` per request) serving

=============  ========================================================
route          body
=============  ========================================================
``/metrics``   the streaming :class:`~repro.obs.registry.
               MetricsRegistry` in Prometheus text exposition
``/status``    JSON: uptime, node addresses, outcome counts, open /
               in-doubt transactions, heuristics and damage, watchdog
               finding counts, transport frame counters, accepting flag
``/indoubt``   JSON: every in-doubt transaction with its phase, held
               lock keys and in-doubt residency (the paper's "valuable
               locks" an operator must see in real time)
``/resolve``   force a heuristic outcome through the wire —
               ``?node=&txn=&decision=commit|abort`` wired to
               :meth:`repro.ops.OperatorConsole.force_outcome`
=============  ========================================================

The PR 7 watchdog detectors run *continuously* here: a recurring
:meth:`LiveClock.timer` (deliberately untracked, so it never blocks
quiescence) rescans the journal every ``watchdog_interval`` seconds
and publishes per-detector finding counts as registry gauges.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError, ProtocolError

_MAX_REQUEST_BYTES = 65536

#: Decisions /resolve accepts (the CEMT-style operator verbs).
RESOLVE_DECISIONS = ("commit", "abort")


class AdminServer:
    """HTTP admin endpoint + continuous watchdog for one live cluster.

    ``cluster`` must expose the LiveCluster surface (``simulator`` /
    ``nodes`` / ``metrics`` / ``transport``).  The registry, recorder,
    watchdog and console are optional — routes needing an absent
    collaborator answer 503 instead of failing to start.
    """

    def __init__(self, cluster, registry=None, recorder=None,
                 watchdog=None, console=None,
                 watchdog_interval: float = 2.0) -> None:
        self.cluster = cluster
        self.registry = registry
        self.recorder = recorder
        self.watchdog = watchdog
        self.console = console
        self.watchdog_interval = watchdog_interval
        self.findings: List = []
        self.address: Optional[Tuple[str, int]] = None
        self._server: Optional["asyncio.base_events.Server"] = None
        self._timer = None
        self._started_at = 0.0
        self._findings_gauge = None
        if registry is not None:
            self._findings_gauge = registry.gauge(
                "watchdog_findings", "Current watchdog findings, by "
                "detector.", ("detector",))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = (bound[0], bound[1])
        self._started_at = self.cluster.simulator.now
        if self.watchdog is not None:
            self._tick()       # first scan immediately, then recurring
        return self.address

    async def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Continuous watchdog
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        """One watchdog sweep; re-arms itself while the server is up."""
        self._scan_now()
        if self._server is not None:
            self._timer = self.cluster.simulator.timer(
                self.watchdog_interval, self._tick, name="admin-watchdog")

    def _scan_now(self) -> List:
        if self.watchdog is None:
            return []
        if self.recorder is not None:
            entries = self.recorder.entries()
        else:
            entries = self.watchdog.entries()
        self.findings = self.watchdog.scan(
            entries, end_time=self.cluster.simulator.now)
        if self._findings_gauge is not None:
            from repro.obs.watchdog import DETECTORS
            counts = {name: 0 for name in DETECTORS}
            for finding in self.findings:
                counts[finding.detector] = \
                    counts.get(finding.detector, 0) + 1
            for name, count in counts.items():
                self._findings_gauge.labels(name).set(count)
        return self.findings

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: "asyncio.StreamReader",
                                 writer: "asyncio.StreamWriter") -> None:
        try:
            request = await reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            writer.close()
            return
        if len(request) > _MAX_REQUEST_BYTES:
            self._respond(writer, 400, "text/plain",
                          "request too large\n")
            writer.close()
            return
        try:
            request_line = request.split(b"\r\n", 1)[0].decode(
                "ascii", "replace")
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            self._respond(writer, 400, "text/plain", "bad request\n")
            writer.close()
            return
        status, ctype, body = self._route(method, target)
        self._respond(writer, status, ctype, body)
        try:
            await writer.drain()
        except ConnectionError:  # pragma: no cover - client went away
            pass
        writer.close()

    @staticmethod
    def _respond(writer: "asyncio.StreamWriter", status: int,
                 ctype: str, body: str) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 409: "Conflict",
                   503: "Service Unavailable"}
        payload = body.encode("utf-8")
        head = (f"HTTP/1.1 {status} {reasons.get(status, 'Error')}\r\n"
                f"Content-Type: {ctype}; charset=utf-8\r\n"
                f"Content-Length: {len(payload)}\r\n"
                f"Connection: close\r\n\r\n")
        writer.write(head.encode("ascii") + payload)

    def _route(self, method: str, target: str) -> Tuple[int, str, str]:
        parts = urlsplit(target)
        path = parts.path.rstrip("/") or "/"
        query = parse_qs(parts.query)
        if path == "/metrics" and method == "GET":
            return self._metrics()
        if path == "/status" and method == "GET":
            return self._status()
        if path == "/indoubt" and method == "GET":
            return self._indoubt(query)
        if path == "/resolve" and method in ("GET", "POST"):
            return self._resolve(query)
        if path in ("/metrics", "/status", "/indoubt", "/resolve"):
            return 405, "text/plain", f"method {method} not allowed\n"
        return 404, "text/plain", f"no route {path!r}\n"

    @staticmethod
    def _json(status: int, obj) -> Tuple[int, str, str]:
        return (status, "application/json",
                json.dumps(obj, sort_keys=True, indent=1) + "\n")

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def _metrics(self) -> Tuple[int, str, str]:
        if self.registry is None:
            return 503, "text/plain", "no metrics registry attached\n"
        return (200, "text/plain; version=0.0.4",
                self.registry.prometheus_text())

    def _status(self) -> Tuple[int, str, str]:
        cluster = self.cluster
        metrics = cluster.metrics
        outcomes: Dict[str, int] = {}
        for record in metrics.transactions:
            outcomes[record.outcome] = outcomes.get(record.outcome, 0) + 1
        in_doubt = (self.console.in_doubt_transactions()
                    if self.console is not None else [])
        from repro.obs.journal import SETTLED_STATES
        open_contexts = 0
        for node in cluster.nodes.values():
            for context in node.contexts.values():
                if context.state.value not in SETTLED_STATES:
                    open_contexts += 1
        findings = self._scan_now() if self.watchdog is not None else []
        by_detector: Dict[str, int] = {}
        for finding in findings:
            by_detector[finding.detector] = \
                by_detector.get(finding.detector, 0) + 1
        transport = getattr(cluster, "transport", None)
        status = {
            "uptime": round(cluster.simulator.now - self._started_at, 6),
            "accepting": bool(getattr(cluster, "accepting", True)),
            "nodes": {
                name: list(transport.address(name))
                for name in cluster.nodes
            } if transport is not None else sorted(cluster.nodes),
            "transactions": {
                "completed": len(metrics.transactions),
                "outcomes": outcomes,
                "open": open_contexts,
                "in_doubt": len(in_doubt),
            },
            "heuristics": {
                "total": len(metrics.heuristics),
                "damaged": len(metrics.damaged_heuristics()),
            },
            "watchdog": {
                "findings": by_detector,
                "details": [f.to_dict() for f in findings],
            },
            "frames": {
                "sent": transport.frames_sent,
                "received": transport.frames_received,
            } if transport is not None else {},
            "recovery": {
                "count": len(metrics.recoveries),
                "last": (metrics.recoveries[-1].to_dict()
                         if metrics.recoveries else None),
            },
        }
        return self._json(200, status)

    def _indoubt(self, query: Dict[str, List[str]]
                 ) -> Tuple[int, str, str]:
        if self.console is None:
            return 503, "text/plain", "no operator console attached\n"
        node = query.get("node", [None])[0]
        try:
            entries = self.console.in_doubt_transactions(node=node)
        except KeyError:
            return 404, "text/plain", f"unknown node {node!r}\n"
        return self._json(200, [entry.to_dict() for entry in entries])

    def _resolve(self, query: Dict[str, List[str]]
                 ) -> Tuple[int, str, str]:
        if self.console is None:
            return 503, "text/plain", "no operator console attached\n"
        node = query.get("node", [None])[0]
        txn = query.get("txn", [None])[0]
        decision = query.get("decision", [None])[0]
        if not node or not txn or decision not in RESOLVE_DECISIONS:
            return self._json(400, {
                "error": "need node=, txn=, decision=commit|abort",
                "got": {"node": node, "txn": txn, "decision": decision},
            })
        try:
            self.console.force_outcome(node, txn, decision)
        except ConfigurationError as error:
            return self._json(404, {"error": str(error)})
        except ProtocolError as error:
            return self._json(409, {"error": str(error)})
        return self._json(200, {
            "resolved": {"node": node, "txn": txn, "decision": decision},
            "heuristics": len(self.cluster.metrics.heuristics),
        })
