"""File-backed stable storage: one real ``fsync`` per physical log I/O.

:class:`FileStableStorage` keeps the in-memory contract of
:class:`repro.log.storage.StableStorage` (the rest of the system reads
through the same API) while also persisting every appended batch to an
append-only JSONL file and fsyncing it.  Because
``LogManager._flush_to`` calls ``stable.append`` exactly once per
physical I/O completion, ``fsync_count`` equals the metrics
collector's ``physical_ios`` for the node — group commit batches
physical fsyncs exactly as it batches simulated I/Os, and the twin
gate asserts that equality.
"""

from __future__ import annotations

import json
import os
from typing import List, Sequence

from repro.log.records import LogRecord
from repro.log.storage import StableStorage
from repro.transport.wire import record_from_wire, record_to_wire


class FileStableStorage(StableStorage):
    """Append-only JSONL write-ahead log with real fsync semantics."""

    def __init__(self, path: str, fsync: bool = True) -> None:
        super().__init__()
        self.path = str(path)
        self.fsync_enabled = fsync
        #: Physical fsync calls issued; the twin gate checks this is
        #: exactly the node's physical I/O count.
        self.fsync_count = 0
        self._fh = open(self.path, "ab")

    def append(self, records: Sequence[LogRecord]) -> None:
        records = list(records)
        # Validate + mirror in memory first: a batch the base class
        # rejects must not reach the disk either.
        super().append(records)
        if not records:
            return
        payload = b"".join(
            json.dumps(record_to_wire(r), separators=(",", ":")).encode("utf-8")
            + b"\n"
            for r in records)
        self._fh.write(payload)
        self._fh.flush()
        if self.fsync_enabled:
            os.fsync(self._fh.fileno())
            self.fsync_count += 1

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def load_records(path: str) -> List[LogRecord]:
    """Read a WAL file back into records (restart recovery scan)."""
    records: List[LogRecord] = []
    with open(path, "rb") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(record_from_wire(json.loads(line)))
    return records
