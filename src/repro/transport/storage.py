"""File-backed stable storage: one real ``fsync`` per physical log I/O.

:class:`FileStableStorage` keeps the in-memory contract of
:class:`repro.log.storage.StableStorage` (the rest of the system reads
through the same API) while also persisting every appended batch to an
append-only JSONL file and fsyncing it.  Because
``LogManager._flush_to`` calls ``stable.append`` exactly once per
physical I/O completion, ``fsync_count`` equals the metrics
collector's ``physical_ios`` for the node — group commit batches
physical fsyncs exactly as it batches simulated I/Os, and the twin
gate asserts that equality.

Two durability edge cases this module owns:

* **Torn tail.**  A crash mid-append can leave a truncated final JSONL
  line.  ``recover=True`` (the restart path) detects it, drops exactly
  that record, truncates the file back to the last complete line, and
  surfaces the loss via :attr:`FileStableStorage.torn_tail`.  A torn
  tail is *correct* WAL behaviour, not corruption: the force for that
  record never completed, so the protocol never acted on it — exactly
  the "record still volatile" crash-site semantics of the torture
  matrix.  A malformed line anywhere *before* the tail has no such
  excuse and raises :class:`WalCorruptionError`.

* **Compaction.**  After a forced CHECKPOINT record the log prefix
  before it is dead weight (the checkpoint payload carries everything
  restart needs).  :meth:`compact` rewrites the file to the checkpoint
  record + suffix via write-new-then-rename, fsyncing both the new
  file and the directory, so long-running ``serve`` nodes stop growing
  their WAL unboundedly.  Compaction fsyncs are maintenance, not log
  forces, and deliberately do not count in ``fsync_count``.
"""

from __future__ import annotations

import json
import os
from typing import List, Optional, Sequence, Tuple

from repro.log.records import LogRecord, LogRecordType
from repro.log.storage import StableStorage
from repro.transport.wire import record_from_wire, record_to_wire


class WalCorruptionError(RuntimeError):
    """A WAL line *before* the tail failed to parse — torn-tail rules
    cannot explain it, so recovery must not silently continue."""


def _encode(records: Sequence[LogRecord]) -> bytes:
    return b"".join(
        json.dumps(record_to_wire(r), separators=(",", ":")).encode("utf-8")
        + b"\n"
        for r in records)


def scan_wal(path: str) -> Tuple[List[LogRecord], Optional[str], int]:
    """Parse a WAL file tolerating a torn final line.

    Returns ``(records, torn_tail_note, valid_byte_length)`` where
    ``torn_tail_note`` is None for a clean file and a human-readable
    description of the dropped tail otherwise, and
    ``valid_byte_length`` is the offset the file must be truncated to
    so appends resume after the last complete record.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    records: List[LogRecord] = []
    offset = 0
    index = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        line = data[offset:] if newline < 0 else data[offset:newline]
        last = newline < 0 or newline == len(data) - 1
        try:
            parsed = json.loads(line)
            record = record_from_wire(parsed)
        except (ValueError, KeyError, TypeError) as error:
            if last:
                # Only the final line may legally be incomplete: the
                # crash tore it mid-append.  Drop exactly this record.
                note = (f"dropped torn final WAL line {index} "
                        f"({len(line)} bytes): {error}")
                return records, note, offset
            raise WalCorruptionError(
                f"{path}: line {index} is malformed mid-file: {error}")
        records.append(record)
        index += 1
        offset = len(data) if newline < 0 else newline + 1
    return records, None, len(data)


class FileStableStorage(StableStorage):
    """Append-only JSONL write-ahead log with real fsync semantics."""

    def __init__(self, path: str, fsync: bool = True,
                 recover: bool = False) -> None:
        super().__init__()
        self.path = str(path)
        self.fsync_enabled = fsync
        #: Physical fsync calls issued for appended batches; the twin
        #: gate checks this is exactly the node's physical I/O count.
        self.fsync_count = 0
        #: Maintenance fsyncs (compaction file + directory syncs),
        #: kept separate so append accounting stays exact.
        self.maintenance_fsyncs = 0
        #: Set by ``recover=True`` when a torn final line was dropped.
        self.torn_tail: Optional[str] = None
        #: Records loaded from disk by ``recover=True``.
        self.recovered_count = 0
        if recover and os.path.exists(self.path):
            records, torn, valid_len = scan_wal(self.path)
            if torn is not None:
                with open(self.path, "r+b") as fh:
                    fh.truncate(valid_len)
                self.torn_tail = torn
            elif valid_len > 0:
                # A crash can tear off just the final newline while the
                # record itself survived complete; repair the separator
                # so the next append starts a fresh line.
                with open(self.path, "r+b") as fh:
                    fh.seek(-1, os.SEEK_END)
                    if fh.read(1) != b"\n":
                        fh.write(b"\n")
            if records:
                super().append(records)
            self.recovered_count = len(records)
        self._fh = open(self.path, "ab")

    def append(self, records: Sequence[LogRecord]) -> None:
        records = list(records)
        # Validate + mirror in memory first: a batch the base class
        # rejects must not reach the disk either.
        super().append(records)
        if not records:
            return
        self._fh.write(_encode(records))
        self._fh.flush()
        if self.fsync_enabled:
            os.fsync(self._fh.fileno())
            self.fsync_count += 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self) -> bool:
        """Truncate the WAL past the most recent durable CHECKPOINT.

        Keeps the checkpoint record and everything after it (restart
        reads exactly that), dropping the prefix.  Write-new-then-
        rename: the old file stays intact until the replacement is
        durable, and the directory entry swap is fsynced too.  Returns
        False (and leaves the file alone) when no checkpoint is
        durable yet.
        """
        checkpoint_at = None
        for index, record in enumerate(self._records):
            if record.record_type is LogRecordType.CHECKPOINT:
                checkpoint_at = index
        if checkpoint_at is None or checkpoint_at == 0:
            return False
        kept = self._records[checkpoint_at:]
        tmp_path = self.path + ".compact"
        with open(tmp_path, "wb") as tmp:
            tmp.write(_encode(kept))
            tmp.flush()
            if self.fsync_enabled:
                os.fsync(tmp.fileno())
        self._fh.close()
        os.replace(tmp_path, self.path)
        if self.fsync_enabled:
            dir_fd = os.open(os.path.dirname(os.path.abspath(self.path))
                             or ".", os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
            self.maintenance_fsyncs += 2
        self._records = kept
        self._fh = open(self.path, "ab")
        return True

    def close(self) -> None:
        if not self._fh.closed:
            self._fh.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


def load_records(path: str,
                 allow_torn_tail: bool = False) -> List[LogRecord]:
    """Read a WAL file back into records (restart recovery scan).

    Strict by default: a torn final line raises unless
    ``allow_torn_tail`` (the crash-recovery path) is set.
    """
    records, torn, _valid_len = scan_wal(path)
    if torn is not None and not allow_torn_tail:
        raise WalCorruptionError(f"{path}: {torn}")
    return records
