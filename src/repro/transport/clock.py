"""A real-time clock that duck-types the simulator's scheduling surface.

The protocol stack (`TMNode`, `LogManager`, `Network`, lock managers)
touches exactly this subset of :class:`repro.sim.kernel.Simulator`:

``now`` · ``schedule(delay, action, name=...)`` · ``at(time, ...)`` ·
``call_soon(action)`` · ``timer(delay, action)`` → (``active`` /
``fired`` / ``cancel()``) · ``cancel(event)`` · ``stream(name)``

:class:`LiveClock` maps that surface onto a running asyncio event
loop, so the same protocol code drives real sockets and real fsyncs
without modification.  Time is seconds since the clock was created.

Quiescence: the sim detects it by running its event queue dry; live
runs can't.  Instead every *tracked* pending action (scheduled
callback, in-flight message) increments a shared
:class:`ActivityTracker`; a run is quiescent when the count returns to
zero.  Timers (``timer()``) are deliberately *not* tracked: they are
the protocol's long-dated timeouts (retry, heuristic, group-commit
deadlines), which protocol progress cancels and which must not keep a
finished run "busy".
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional

from repro.sim.kernel import EventInterrupt
from repro.sim.randomness import RandomStream, StreamFactory


class ActivityTracker:
    """Counts tracked pending work; wakes waiters when it hits zero."""

    def __init__(self) -> None:
        self._count = 0
        self._waiters: List["asyncio.Future"] = []

    @property
    def count(self) -> int:
        return self._count

    def inc(self) -> None:
        self._count += 1

    def dec(self) -> None:
        self._count -= 1
        if self._count == 0 and self._waiters:
            waiters, self._waiters = self._waiters, []
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_result(None)

    async def wait_idle(self) -> None:
        if self._count == 0:
            return
        waiter = asyncio.get_running_loop().create_future()
        self._waiters.append(waiter)
        await waiter


class ScheduledCall:
    """Handle for a scheduled action; duck-types both the simulator's
    ``Event`` (``fired`` / ``cancelled``) and ``Timer`` (``active`` /
    ``cancel()``)."""

    __slots__ = ("_clock", "_handle", "name", "is_timer", "fired",
                 "cancelled")

    def __init__(self, clock: "LiveClock", name: str, is_timer: bool) -> None:
        self._clock = clock
        self._handle: Optional["asyncio.TimerHandle"] = None
        self.name = name
        self.is_timer = is_timer
        self.fired = False
        self.cancelled = False

    @property
    def active(self) -> bool:
        return not self.fired and not self.cancelled

    def cancel(self) -> bool:
        if not self.active:
            return False
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()
        if not self.is_timer:
            self._clock.activity.dec()
        return True

    def _run(self, action: Callable[[], None]) -> None:
        if self.cancelled:  # pragma: no cover - handle.cancel beat us
            return
        self.fired = True
        self._clock.events_processed += 1
        if self.is_timer:
            self._invoke(action)
            return
        try:
            self._invoke(action)
        finally:
            self._clock.activity.dec()

    @staticmethod
    def _invoke(action: Callable[[], None]) -> None:
        # Same contract as the sim kernel's event loop: a fault-
        # injection hook raising EventInterrupt abandons the rest of
        # the action at exactly that point, then the crash (the
        # ``on_interrupt``) runs.  Live crash sites ride this.
        try:
            action()
        except EventInterrupt as interrupt:
            if interrupt.on_interrupt is not None:
                interrupt.on_interrupt()


class LiveClock:
    """Real-time drop-in for the Simulator's scheduling surface.

    Must be constructed while an asyncio event loop is running (or be
    handed one explicitly); all scheduling happens on that loop's
    thread.
    """

    def __init__(self, loop: Optional["asyncio.AbstractEventLoop"] = None,
                 seed: int = 0,
                 activity: Optional[ActivityTracker] = None) -> None:
        self._loop = loop or asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self._streams = StreamFactory(seed)
        self.activity = activity or ActivityTracker()
        self.events_processed = 0

    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self._loop.time() - self._t0

    def stream(self, name: str) -> RandomStream:
        return self._streams.stream(name)

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None],
                 name: str = "", priority: int = 0) -> ScheduledCall:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._arm(delay, action, name, is_timer=False)

    def at(self, time: float, action: Callable[[], None],
           name: str = "", priority: int = 0) -> ScheduledCall:
        delay = time - self.now
        if delay < 0:
            raise ValueError(f"cannot schedule at {time}, clock already at "
                             f"{self.now}")
        return self._arm(delay, action, name, is_timer=False)

    def call_soon(self, action: Callable[[], None],
                  name: str = "") -> ScheduledCall:
        return self._arm(0.0, action, name, is_timer=False)

    def timer(self, delay: float, action: Callable[[], None],
              name: str = "timer") -> ScheduledCall:
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self._arm(delay, action, name, is_timer=True)

    def cancel(self, call: ScheduledCall) -> bool:
        return call.cancel()

    # ------------------------------------------------------------------
    def _arm(self, delay: float, action: Callable[[], None], name: str,
             is_timer: bool) -> ScheduledCall:
        call = ScheduledCall(self, name, is_timer)
        if not is_timer:
            self.activity.inc()
        call._handle = self._loop.call_later(delay, call._run, action)
        return call
