"""Real-transport deployment of the ``repro.core`` protocol stack.

The simulated and live systems share every protocol object; this
package provides the live substitutes for the three simulation
primitives — time (:class:`~repro.transport.clock.LiveClock`), the
wire (:class:`~repro.transport.tcp.TcpTransport` under
:class:`~repro.transport.live.LiveNetwork`), and stable storage
(:class:`~repro.transport.storage.FileStableStorage`) — plus the twin
oracle (:mod:`repro.transport.twin`) that proves a live run causally
equivalent to its deterministic replay.  See ``docs/DEPLOYMENT.md``.
"""

from repro.transport.admin import AdminServer
from repro.transport.clock import ActivityTracker, LiveClock, ScheduledCall
from repro.transport.live import (LiveCluster, LiveNetwork, ServeControl,
                                  serve)
from repro.transport.storage import FileStableStorage, load_records
from repro.transport.tcp import TcpTransport
from repro.transport.twin import (DEFAULT_NODES, TWIN_PROTOCOLS,
                                  ScheduledNetwork, TwinReport,
                                  delivery_schedule, loopback_available,
                                  run_twin_check, run_twin_matrix,
                                  twin_specs)

__all__ = [
    "ActivityTracker",
    "AdminServer",
    "LiveClock",
    "ScheduledCall",
    "LiveCluster",
    "LiveNetwork",
    "ServeControl",
    "serve",
    "FileStableStorage",
    "load_records",
    "TcpTransport",
    "DEFAULT_NODES",
    "TWIN_PROTOCOLS",
    "ScheduledNetwork",
    "TwinReport",
    "delivery_schedule",
    "loopback_available",
    "run_twin_check",
    "run_twin_matrix",
    "twin_specs",
]
