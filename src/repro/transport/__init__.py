"""Real-transport deployment of the ``repro.core`` protocol stack.

The simulated and live systems share every protocol object; this
package provides the live substitutes for the three simulation
primitives — time (:class:`~repro.transport.clock.LiveClock`), the
wire (:class:`~repro.transport.tcp.TcpTransport` under
:class:`~repro.transport.live.LiveNetwork`), and stable storage
(:class:`~repro.transport.storage.FileStableStorage`) — plus the twin
oracle (:mod:`repro.transport.twin`) that proves a live run causally
equivalent to its deterministic replay, and the crash-survival layer:
supervised links with reconnect backoff (:mod:`repro.transport.tcp`),
WAL-driven node restart (:mod:`repro.transport.restart`), live fault
injection (:mod:`repro.transport.faults`) and the live torture gate
(:mod:`repro.transport.torture`).  See ``docs/DEPLOYMENT.md``.
"""

from repro.transport.admin import AdminServer
from repro.transport.clock import ActivityTracker, LiveClock, ScheduledCall
from repro.transport.faults import (ArmedLiveCrash, LiveFaultInjector,
                                    SITE_KINDS)
from repro.transport.live import (LiveCluster, LiveNetwork, ServeControl,
                                  serve)
from repro.transport.restart import RestartInfo, kill_node, restart_node
from repro.transport.storage import (FileStableStorage, WalCorruptionError,
                                     load_records, scan_wal)
from repro.transport.tcp import BackoffPolicy, DROP_FRAME, TcpTransport
from repro.transport.torture import (LiveTortureReport, SITES, TortureCell,
                                     run_live_torture, run_torture_cell)
from repro.transport.twin import (DEFAULT_NODES, TWIN_PROTOCOLS,
                                  ScheduledNetwork, TwinReport,
                                  classify_socket_error, delivery_schedule,
                                  loopback_available, loopback_status,
                                  run_twin_check, run_twin_matrix,
                                  twin_specs)

__all__ = [
    "ActivityTracker",
    "AdminServer",
    "LiveClock",
    "ScheduledCall",
    "ArmedLiveCrash",
    "LiveFaultInjector",
    "SITE_KINDS",
    "LiveCluster",
    "LiveNetwork",
    "ServeControl",
    "serve",
    "RestartInfo",
    "kill_node",
    "restart_node",
    "FileStableStorage",
    "WalCorruptionError",
    "load_records",
    "scan_wal",
    "BackoffPolicy",
    "DROP_FRAME",
    "TcpTransport",
    "LiveTortureReport",
    "SITES",
    "TortureCell",
    "run_live_torture",
    "run_torture_cell",
    "DEFAULT_NODES",
    "TWIN_PROTOCOLS",
    "ScheduledNetwork",
    "TwinReport",
    "classify_socket_error",
    "delivery_schedule",
    "loopback_available",
    "loopback_status",
    "run_twin_check",
    "run_twin_matrix",
    "twin_specs",
]
