"""The live deployment: the simulated protocol stack on real sockets.

:class:`LiveCluster` assembles exactly the objects the simulated
:class:`repro.core.cluster.Cluster` does — ``TMNode``, ``LogManager``,
``Network``, ``MetricsCollector`` — but wires them to a
:class:`~repro.transport.clock.LiveClock` (asyncio time), a
:class:`~repro.transport.tcp.TcpTransport` (localhost TCP frames) and
:class:`~repro.transport.storage.FileStableStorage` (real fsync per
physical log I/O).  The protocol code is untouched: the twin gate's
whole point is that the very same ``repro.core`` state machines run in
both worlds and produce causally equivalent journals.

Observers (``JournalRecorder``, ``ProtocolChecker``, ``CostLedger``)
attach unchanged because ``LiveCluster`` exposes the same surface:
``simulator`` / ``network`` / ``nodes`` / ``metrics`` /
``recorded_outcome``.
"""

from __future__ import annotations

import asyncio
import os
import signal
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.core.config import PRESUMED_ABORT, ProtocolConfig
from repro.core.handle import TransactionHandle
from repro.core.node import TMNode
from repro.core.spec import TransactionSpec
from repro.errors import ConfigurationError
from repro.log.records import LogRecordType
from repro.metrics.collector import MetricsCollector, TransactionRecord
from repro.net.message import Message
from repro.net.network import Network
from repro.transport.clock import ActivityTracker, LiveClock
from repro.transport.storage import FileStableStorage
from repro.transport.tcp import TcpTransport
from repro.transport.wire import encode_frame, message_from_wire, \
    message_to_wire, spec_from_wire


class LiveNetwork(Network):
    """``Network`` whose wire is a real TCP link per directed pair.

    Everything up to the transport seam (flow accounting, drop filters,
    partitions, send hooks) is inherited; ``_transmit`` writes a frame
    and ``handle_wire_message`` feeds received frames back through the
    inherited ``_deliver`` path (partition re-check, deliver hooks,
    handler dispatch).
    """

    def __init__(self, simulator: LiveClock, metrics: MetricsCollector,
                 transport: TcpTransport,
                 activity: ActivityTracker) -> None:
        super().__init__(simulator, metrics)
        self.transport = transport
        self._activity = activity

    def _transmit(self, message: Message, delay: float) -> None:
        # ``delay`` is the simulated latency model's opinion; the real
        # wire has its own. Tracked so quiescence waits for delivery.
        self._activity.inc()
        self.transport.send(message.src, message.dst,
                            {"kind": "msg", "msg": message_to_wire(message)})

    def handle_wire_message(self, data: dict) -> None:
        message = message_from_wire(data)

        def process() -> None:
            try:
                self._deliver(message)
            finally:
                self._activity.dec()

        # Defer through the clock rather than delivering inline: a frame
        # must not overtake zero-delay work armed before it arrived
        # (asyncio runs I/O wakeups ahead of same-turn timer callbacks).
        # The simulator orders time-0 work before any delivery; the twin
        # diff holds the live run to the same discipline.  Monotonic
        # call_later deadlines keep per-link frame order intact.
        self.simulator.call_soon(
            process, name=f"deliver:{message.describe()}")


class LiveCluster:
    """A live (asyncio TCP) distributed transaction processing system.

    Construct inside a running event loop; call :meth:`start` before
    beginning transactions and :meth:`stop` when done.
    """

    def __init__(self, config: Optional[ProtocolConfig] = None,
                 nodes: Sequence[str] = (), seed: int = 0,
                 host: str = "127.0.0.1", base_port: int = 0,
                 log_dir: Optional[str] = None) -> None:
        self.config = config or PRESUMED_ABORT
        self.host = host
        self.base_port = base_port
        self.log_dir = log_dir
        #: Flipped off during a graceful drain: ``begin`` control
        #: frames are refused while in-flight work runs to completion.
        self.accepting = True
        #: Filled by ``serve`` when an admin plane is bound.
        self.admin_address: Optional[tuple] = None
        self.activity = ActivityTracker()
        self.simulator = LiveClock(seed=seed, activity=self.activity)
        self.metrics = MetricsCollector()
        self.transport = TcpTransport()
        self.transport.on_frame = self._on_frame
        self.network = LiveNetwork(self.simulator, self.metrics,
                                   self.transport, self.activity)
        self.nodes: Dict[str, TMNode] = {}
        #: Closed FileStableStorage handles of killed incarnations,
        #: kept so fsync accounting carries across restarts.
        self._retired_storage: Dict[str, FileStableStorage] = {}
        for name in nodes:
            self.add_node(name)

    # ------------------------------------------------------------------
    # Topology / lifecycle
    # ------------------------------------------------------------------
    def add_node(self, name: str) -> TMNode:
        if name in self.nodes:
            raise ConfigurationError(f"duplicate node {name!r}")
        node = TMNode(name, self.simulator, self.network, self.metrics,
                      self.config)
        if self.log_dir is not None:
            os.makedirs(self.log_dir, exist_ok=True)
            node.log.stable = FileStableStorage(
                os.path.join(self.log_dir, f"{name}.wal"))
        self.nodes[name] = node
        return node

    async def start(self) -> Dict[str, tuple]:
        """Bind every node's server and pre-connect the link mesh."""
        for index, name in enumerate(self.nodes):
            port = 0 if self.base_port == 0 else self.base_port + index
            await self.transport.listen(name, self.host, port)
        await self.transport.connect_mesh(list(self.nodes))
        return {name: self.transport.address(name) for name in self.nodes}

    async def stop(self) -> None:
        # A cancelled serve (or abrupt test teardown) can reach here
        # with a log force still in flight; let tracked work land so
        # its write doesn't hit a closed WAL handle.
        try:
            await asyncio.wait_for(self.activity.wait_idle(), timeout=2.0)
        except asyncio.TimeoutError:
            pass
        await self.transport.close()
        for node in self.nodes.values():
            stable = node.log.stable
            if isinstance(stable, FileStableStorage):
                stable.close()
        for stable in self._retired_storage.values():
            stable.close()

    # ------------------------------------------------------------------
    # Kill / restart (the live fault surface; see repro.transport.restart)
    # ------------------------------------------------------------------
    def wal_path(self, name: str) -> str:
        if self.log_dir is None:
            raise ConfigurationError("cluster has no log_dir (no WAL)")
        return os.path.join(self.log_dir, f"{name}.wal")

    def begin_kill(self, name: str) -> None:
        """The synchronous half of a node kill: wipe volatile protocol
        state *now* (before any other event runs) and retire the WAL
        handle.  Crash-site hooks call this from inside the very event
        being interrupted; :meth:`finish_kill` tears the sockets down.
        """
        node = self.nodes[name]
        node.crash()
        stable = node.log.stable
        if isinstance(stable, FileStableStorage):
            stable.close()
            self._retired_storage[name] = stable

    async def finish_kill(self, name: str) -> None:
        """Close the killed node's sockets and reconcile in-flight
        frame accounting so quiescence tracking stays truthful."""
        lost = await self.transport.close_node(name)
        # Let FIN/EOF propagate so peers' watchers flip their links
        # down (subsequent sends queue instead of dying in buffers).
        await asyncio.sleep(0.01)
        lost += self.transport.reconcile_lost(name)
        for _ in range(lost):
            self.activity.dec()

    async def kill_node(self, name: str) -> None:
        """Hard-kill a node: volatile-state wipe + socket close, as one
        operation (the non-crash-site entry point)."""
        self.begin_kill(name)
        await self.finish_kill(name)

    async def restart_node(self, name: str):
        """Boot a killed node from its WAL; see repro.transport.restart."""
        from repro.transport.restart import restart_node
        return await restart_node(self, name)

    # ------------------------------------------------------------------
    # Frame dispatch
    # ------------------------------------------------------------------
    def _on_frame(self, node: str, obj: dict,
                  writer: "asyncio.StreamWriter") -> None:
        kind = obj.get("kind")
        if kind == "msg":
            self.network.handle_wire_message(obj["msg"])
        elif kind == "begin":
            # Control plane: an external client asks this node to run a
            # transaction; the outcome is reported on the same stream.
            if not self.accepting:
                writer.write(encode_frame({
                    "kind": "error", "error": "draining",
                    "detail": "server is draining; not accepting new "
                              "transactions"}))
                return
            spec = spec_from_wire(obj["spec"])
            handle = self.start_transaction(spec)
            handle.on_done(lambda h: writer.write(encode_frame({
                "kind": "outcome",
                "txn": h.txn_id,
                "outcome": h.outcome,
                "outcome_pending": h.outcome_pending,
            })))
        elif kind == "ping":
            writer.write(encode_frame({"kind": "pong", "node": node}))

    # ------------------------------------------------------------------
    # Running transactions
    # ------------------------------------------------------------------
    def start_transaction(self, spec: TransactionSpec) -> TransactionHandle:
        missing = [p.node for p in spec.participants
                   if p.node not in self.nodes]
        if missing:
            raise ConfigurationError(
                f"spec names nodes not in the cluster: {missing}")
        handle = self.nodes[spec.root.node].begin_transaction(spec)
        handle.on_done(lambda h: self.metrics.record_transaction(
            TransactionRecord(
                txn_id=h.txn_id,
                outcome=h.outcome or "unknown",
                started_at=h.started_at,
                finished_at=h.completed_at or self.simulator.now,
                outcome_pending=h.outcome_pending,
                heuristic_mixed=h.heuristic_mixed)))
        return handle

    async def run_transaction(self, spec: TransactionSpec,
                              timeout: float = 30.0) -> TransactionHandle:
        """Run one transaction to cluster quiescence (the live analogue
        of ``Cluster.run_transaction``)."""
        handle = self.start_transaction(spec)
        await self.wait_quiescent(timeout=timeout)
        if not handle.done:
            raise RuntimeError(
                f"{spec.txn_id}: cluster went quiescent without an outcome "
                f"(pending activity={self.activity.count})")
        return handle

    async def wait_quiescent(self, timeout: float = 30.0) -> None:
        """Wait until no tracked work is pending anywhere.

        Tracked work = scheduled callbacks (including log I/O
        completions) + messages accepted for transmission but not yet
        handled at their destination.  Armed protocol timers are
        intentionally untracked — see ``repro.transport.clock``.
        """
        await asyncio.wait_for(self.activity.wait_idle(), timeout)

    # ------------------------------------------------------------------
    # Outcome inspection (same contract as the simulated Cluster)
    # ------------------------------------------------------------------
    def durable_outcome(self, node_name: str, txn_id: str) -> Optional[str]:
        stable = self.nodes[node_name].log.stable
        if stable.has_record(txn_id, LogRecordType.COMMITTED):
            return "commit"
        if stable.has_record(txn_id, LogRecordType.ABORTED):
            return "abort"
        if stable.has_record(txn_id, LogRecordType.HEURISTIC_COMMIT):
            return "heuristic-commit"
        if stable.has_record(txn_id, LogRecordType.HEURISTIC_ABORT):
            return "heuristic-abort"
        return None

    def recorded_outcome(self, node_name: str, txn_id: str) -> Optional[str]:
        records = self.nodes[node_name].log.records_for(txn_id)
        types = {r.record_type for r in records}
        if LogRecordType.COMMITTED in types:
            return "commit"
        if LogRecordType.ABORTED in types:
            return "abort"
        if LogRecordType.HEURISTIC_COMMIT in types:
            return "heuristic-commit"
        if LogRecordType.HEURISTIC_ABORT in types:
            return "heuristic-abort"
        return None

    def fsync_counts(self) -> Dict[str, int]:
        """Per-node real fsync totals (empty entries for in-memory logs)."""
        counts: Dict[str, int] = {}
        for name, node in self.nodes.items():
            stable = node.log.stable
            if isinstance(stable, FileStableStorage):
                counts[name] = stable.fsync_count
        return counts


class ServeControl:
    """Handle into a running ``serve``: request a drain, await it.

    The SIGTERM/SIGINT handlers call :meth:`request_drain`; tests (and
    embedding code) can call it directly instead of raising a signal.
    """

    def __init__(self) -> None:
        self._drain = asyncio.Event()
        self.reason: Optional[str] = None

    def request_drain(self, reason: str = "requested") -> None:
        if not self._drain.is_set():
            self.reason = reason
            self._drain.set()

    @property
    def draining(self) -> bool:
        return self._drain.is_set()

    async def wait_drain(self) -> None:
        await self._drain.wait()


async def serve(config: ProtocolConfig, nodes: Iterable[str],
                host: str = "127.0.0.1", base_port: int = 0, seed: int = 0,
                log_dir: Optional[str] = None,
                ready: Optional[Callable] = None,
                admin_host: str = "127.0.0.1",
                admin_port: Optional[int] = 0,
                control: Optional[ServeControl] = None,
                drain_timeout: float = 30.0,
                journal_path: Optional[str] = None,
                checkpoint_interval: Optional[float] = None) -> None:
    """Run a live cluster until drained (the ``repro-2pc serve`` body).

    The full operations plane attaches before traffic starts: a
    streaming :class:`~repro.obs.registry.MetricsRegistry`, the
    flight-recorder :class:`~repro.obs.journal.JournalRecorder`, a
    :class:`~repro.obs.watchdog.Watchdog` re-scanned continuously by
    the :class:`~repro.transport.admin.AdminServer` (bound on
    ``admin_host:admin_port`` unless ``admin_port`` is None), and an
    :class:`~repro.ops.OperatorConsole` whose heuristic verbs the
    admin plane serves on ``/resolve``.

    SIGTERM/SIGINT trigger a graceful drain instead of killing the
    process mid-fsync: stop accepting ``begin`` frames, wait (up to
    ``drain_timeout``) for tracked work to finish, flush the journal
    to ``journal_path`` (defaults to ``<log_dir>/journal.jsonl`` when
    ``log_dir`` is set), close the WALs, and return — the CLI exits 0.

    ``ready(cluster, addresses)`` is called once the mesh is up —
    the CLI prints the node addresses there; tests grab the ports.
    ``cluster.admin_address`` carries the bound admin endpoint.

    With ``checkpoint_interval`` set, every node force-logs a
    CHECKPOINT that often and, once it hardens, compacts its WAL down
    to the records the checkpoint still needs — long-running servers
    get bounded restart-recovery work and bounded log files.
    """
    from repro.obs.journal import JournalRecorder
    from repro.obs.registry import MetricsRegistry
    from repro.obs.watchdog import Watchdog, WatchdogFinding
    from repro.ops import OperatorConsole
    from repro.transport.admin import AdminServer

    cluster = LiveCluster(config, nodes=list(nodes), seed=seed,
                          host=host, base_port=base_port, log_dir=log_dir)
    registry = MetricsRegistry().attach(cluster)
    recorder = JournalRecorder().attach(cluster)
    watchdog = Watchdog()
    console = OperatorConsole(cluster)
    admin = AdminServer(cluster, registry=registry, recorder=recorder,
                        watchdog=watchdog, console=console)
    control = control or ServeControl()

    # A link that exhausts its reconnect budget is an operational
    # incident, not a log line: surface it as a watchdog finding so
    # /status and the dashboard carry it.
    def link_gave_up(src: str, dst: str, attempts: int) -> None:
        watchdog.record_external(WatchdogFinding(
            "link_down", None, src, cluster.simulator.now,
            f"link {src}->{dst} gave up reconnecting after "
            f"{attempts} attempts", float(attempts)))
    cluster.transport.on_give_up = link_gave_up

    checkpoint_timer = []

    def checkpoint_tick() -> None:
        for node in cluster.nodes.values():
            if not node.alive:
                continue
            stable = node.log.stable
            on_durable = (stable.compact
                          if isinstance(stable, FileStableStorage) else None)
            node.take_checkpoint(on_durable=on_durable)
        checkpoint_timer[:] = [cluster.simulator.timer(
            checkpoint_interval, checkpoint_tick, name="checkpoint")]

    addresses = await cluster.start()
    if admin_port is not None:
        cluster.admin_address = await admin.start(admin_host, admin_port)
    if checkpoint_interval is not None:
        checkpoint_timer.append(cluster.simulator.timer(
            checkpoint_interval, checkpoint_tick, name="checkpoint"))

    loop = asyncio.get_running_loop()
    installed_signals = []
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(
                signum, control.request_drain, signal.Signals(signum).name)
            installed_signals.append(signum)
        except (NotImplementedError, RuntimeError):
            # Platforms/loops without signal support (or non-main
            # threads): the KeyboardInterrupt path in the CLI remains.
            break

    if ready is not None:
        ready(cluster, addresses)
    try:
        await control.wait_drain()
        cluster.accepting = False
        try:
            await cluster.wait_quiescent(timeout=drain_timeout)
        except asyncio.TimeoutError:
            pass  # drain is best-effort; flush whatever we have
    finally:
        for signum in installed_signals:
            loop.remove_signal_handler(signum)
        for timer in checkpoint_timer:
            timer.cancel()
        await admin.stop()
        recorder.detach()
        registry.detach()
        watchdog.detach()
        path = journal_path
        if path is None and log_dir is not None:
            path = os.path.join(log_dir, "journal.jsonl")
        if path is not None:
            with open(path, "w") as handle:
                handle.write(recorder.to_jsonl(meta={
                    "protocol": config.presumption.value,
                    "nodes": sorted(cluster.nodes),
                    "drain_reason": control.reason,
                }))
        await cluster.stop()
