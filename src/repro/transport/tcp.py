"""Asyncio TCP transport: one listening socket per node, one ordered
stream per directed link — now with connection supervision.

Each node gets a server socket; for every directed pair of nodes the
transport opens a dedicated client connection.  Frames written on one
link are read in order at the destination — TCP's byte-stream ordering
gives the per-link session (FIFO) guarantee the LU 6.2 sessions in the
paper provide and the simulated network enforces with its link clamp.

A link is *supervised*: a watcher task notices the peer closing (or
dying) and flips the link down, frames sent while the link is down
queue in per-link FIFO order, and a reconnect loop retries with
bounded exponential backoff + seeded jitter
(:class:`BackoffPolicy`).  When the peer comes back, the queue drains
in order, so the session guarantee holds *across* an outage and the
surviving nodes' protocol timers (inquiry / retry) drive in-doubt
resolution exactly as in the simulator.  A link that exhausts
``max_attempts`` gives up and reports through ``on_give_up`` — the
live watchdog surfaces that as a ``link_down`` finding.

The transport is deliberately dumb about *meaning*: what a frame says
(protocol message, begin-transaction control frame, ping) is the
:mod:`repro.transport.live` layer's business, via ``on_frame``.  The
only frame the transport itself speaks is the ``hello`` a client link
opens with, which names the sending node so the receiving server can
attribute per-link delivery counts (the crash-accounting seam
:meth:`reconcile_lost` is built on).
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import (Awaitable, Callable, Deque, Dict, List, Optional,
                    Sequence, Tuple)

from repro.sim.kernel import EventInterrupt
from repro.sim.randomness import RandomStream
from repro.transport.wire import encode_frame, read_frame

FrameHandler = Callable[[str, dict, "asyncio.StreamWriter"], None]

#: Sentinel a send filter returns to drop a frame at the transport seam.
DROP_FRAME = object()


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff with seeded jitter.

    Attempt ``n`` (0-based) waits ``min(cap, base * factor**n)``
    seconds, spread uniformly over ``±jitter`` (a fraction of the
    delay) by the transport's seeded RNG — deterministic for a given
    seed, so reconnect schedules are replayable.  ``max_attempts``
    bounds the loop (``None`` retries forever, the right default for a
    cluster mesh where the peer is expected back).
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 2.0
    jitter: float = 0.5
    max_attempts: Optional[int] = None

    def __post_init__(self) -> None:
        if self.base <= 0 or self.factor < 1 or self.cap < self.base:
            raise ValueError(f"bad backoff shape: {self}")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1): {self.jitter}")

    def raw_delay(self, attempt: int) -> float:
        """The undithered delay for 0-based ``attempt``."""
        return min(self.cap, self.base * (self.factor ** attempt))

    def delay(self, attempt: int, rng: RandomStream) -> float:
        """The jittered delay for ``attempt`` (consumes one RNG draw)."""
        raw = self.raw_delay(attempt)
        if self.jitter == 0:
            return raw
        return rng.uniform(raw * (1 - self.jitter), raw * (1 + self.jitter))

    def exhausted(self, attempt: int) -> bool:
        return self.max_attempts is not None and attempt >= self.max_attempts

    def schedule(self, rng: RandomStream, attempts: int) -> List[float]:
        """The first ``attempts`` jittered delays (for tests/inspection)."""
        return [self.delay(n, rng) for n in range(attempts)]


class _Link:
    """One supervised directed connection (src -> dst)."""

    __slots__ = ("src", "dst", "state", "writer", "reader", "watcher",
                 "reconnector", "pending", "attempts")

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        #: "up" | "down" (reconnecting) | "severed" (operator/fault
        #: injector cut; no reconnect until heal) | "gave-up"
        self.state = "down"
        self.writer: Optional["asyncio.StreamWriter"] = None
        self.reader: Optional["asyncio.StreamReader"] = None
        self.watcher: Optional["asyncio.Task"] = None
        self.reconnector: Optional["asyncio.Task"] = None
        #: Frames accepted while not "up": (kind, encoded) in FIFO order.
        self.pending: Deque[Tuple[Optional[str], bytes]] = deque()
        self.attempts = 0


class TcpTransport:
    """Localhost (or LAN) mesh of length-prefixed JSON frame streams."""

    def __init__(self, backoff: Optional[BackoffPolicy] = None,
                 seed: int = 0) -> None:
        #: Called as ``on_frame(node, obj, writer)`` for every frame a
        #: node's server reads; ``writer`` allows control-frame replies.
        self.on_frame: Optional[FrameHandler] = None
        #: Supervision hooks: ``on_link_down(src, dst)`` when a watcher
        #: notices a disconnect, ``on_link_up(src, dst, attempts)`` when
        #: a (re)connect lands, ``on_give_up(src, dst, attempts)`` when
        #: the backoff budget is exhausted.
        self.on_link_down: Optional[Callable[[str, str], None]] = None
        self.on_link_up: Optional[Callable[[str, str, int], None]] = None
        self.on_give_up: Optional[Callable[[str, str, int], None]] = None
        #: Fault seam: ``send_filter(src, dst, obj)`` may return
        #: ``DROP_FRAME``, a delay in seconds, or None (pass through).
        self.send_filter: Optional[Callable[[str, str, dict], object]] = None
        #: Called for every frame the send filter drops, so the owner
        #: can reconcile delivery accounting (activity tracking).
        self.on_frame_dropped: Optional[Callable[[str, str, dict],
                                                 None]] = None
        self.backoff = backoff or BackoffPolicy()
        self._rng = RandomStream(seed ^ 0x7C9_2BC)
        self._servers: Dict[str, "asyncio.base_events.Server"] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._links: Dict[Tuple[str, str], _Link] = {}
        #: Server-side writers per listening node, so a node kill can
        #: hard-close established inbound connections.
        self._server_conns: Dict[str, set] = {}
        self._closed = False
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        #: Per-link "msg"-frame delivery accounting: written counts
        #: frames put on the wire, received counts frames the far
        #: server handed to ``on_frame``.  Their difference is what a
        #: crash loses in flight — see :meth:`reconcile_lost`.
        self.msg_written: Dict[Tuple[str, str], int] = {}
        self.msg_received: Dict[Tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    async def listen(self, node: str, host: str = "127.0.0.1",
                     port: int = 0) -> Tuple[str, int]:
        """Start ``node``'s server; returns the bound (host, port)."""

        async def handler(reader: "asyncio.StreamReader",
                          writer: "asyncio.StreamWriter") -> None:
            await self._serve_connection(node, reader, writer)

        server = await asyncio.start_server(handler, host, port)
        self._servers[node] = server
        self._server_conns.setdefault(node, set())
        bound = server.sockets[0].getsockname()
        self._addresses[node] = (bound[0], bound[1])
        return self._addresses[node]

    def set_peer(self, node: str, host: str, port: int) -> None:
        """Register a remote node's address (multi-process deployments)."""
        self._addresses[node] = (host, port)

    def address(self, node: str) -> Tuple[str, int]:
        return self._addresses[node]

    async def connect(self, src: str, dst: str) -> None:
        link = self._links.get((src, dst))
        if link is None:
            link = _Link(src, dst)
            self._links[(src, dst)] = link
        if link.state != "up":
            await self._open(link)

    async def connect_mesh(self, nodes: Sequence[str]) -> None:
        """Open every directed link up front so sends are synchronous."""
        for src in nodes:
            for dst in nodes:
                if src != dst:
                    await self.connect(src, dst)

    def link_state(self, src: str, dst: str) -> str:
        return self._links[(src, dst)].state

    def queued_frames(self, src: str, dst: str) -> int:
        return len(self._links[(src, dst)].pending)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, obj: dict) -> None:
        """Put one frame on the (src, dst) link.

        Synchronous by design: ``Network.send`` is synchronous, and the
        asyncio writer buffers.  Per-link ordering is the write order;
        frames sent while the link is down queue FIFO and drain, still
        in order, when the reconnect loop lands.
        """
        if self.send_filter is not None:
            verdict = self.send_filter(src, dst, obj)
            if verdict is DROP_FRAME:
                self.frames_dropped += 1
                if self.on_frame_dropped is not None:
                    self.on_frame_dropped(src, dst, obj)
                return
            if verdict:
                delay = float(verdict)  # type: ignore[arg-type]
                asyncio.get_running_loop().call_later(
                    delay, self._dispatch, src, dst, obj)
                return
        self._dispatch(src, dst, obj)

    def _dispatch(self, src: str, dst: str, obj: dict) -> None:
        link = self._links[(src, dst)]
        if link.state == "up" and link.writer is not None:
            self._write(link, obj.get("kind"), encode_frame(obj))
        else:
            link.pending.append((obj.get("kind"), encode_frame(obj)))

    def _write(self, link: _Link, kind: Optional[str],
               encoded: bytes) -> None:
        assert link.writer is not None
        link.writer.write(encoded)
        self.frames_sent += 1
        if kind == "msg":
            key = (link.src, link.dst)
            self.msg_written[key] = self.msg_written.get(key, 0) + 1

    async def _serve_connection(self, node: str,
                                reader: "asyncio.StreamReader",
                                writer: "asyncio.StreamWriter") -> None:
        conns = self._server_conns.setdefault(node, set())
        conns.add(writer)
        peer: Optional[str] = None
        try:
            while True:
                obj = await read_frame(reader)
                if obj is None:
                    break
                if obj.get("kind") == "hello":
                    # Transport-internal link handshake: names the
                    # sending node for delivery accounting.
                    peer = obj.get("src")
                    continue
                self.frames_received += 1
                if obj.get("kind") == "msg" and peer is not None:
                    key = (peer, node)
                    self.msg_received[key] = \
                        self.msg_received.get(key, 0) + 1
                if self.on_frame is not None:
                    try:
                        self.on_frame(node, obj, writer)
                    except EventInterrupt as interrupt:
                        # A fault-injection hook fired inside the
                        # synchronous frame handler (same contract as
                        # the sim kernel): abandon the handler at that
                        # point and run the crash.
                        if interrupt.on_interrupt is not None:
                            interrupt.on_interrupt()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer died mid-frame; supervision handles the rest
        finally:
            conns.discard(writer)
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    async def _open(self, link: _Link) -> None:
        """Connect ``link``, send the hello, drain its queue, watch it."""
        host, port = self._addresses[link.dst]
        reader, writer = await asyncio.open_connection(host, port)
        link.reader = reader
        link.writer = writer
        writer.write(encode_frame({"kind": "hello", "src": link.src}))
        link.state = "up"
        attempts = link.attempts
        link.attempts = 0
        while link.pending:
            kind, encoded = link.pending.popleft()
            self._write(link, kind, encoded)
        link.watcher = asyncio.ensure_future(self._watch(link, reader))
        if self.on_link_up is not None:
            self.on_link_up(link.src, link.dst, attempts)

    async def _watch(self, link: _Link,
                     reader: "asyncio.StreamReader") -> None:
        """Notice the peer closing the link; start the reconnect loop.

        Mesh peers never write back on a client link (replies ride the
        reverse link), so any read completing — EOF or error — means
        the connection is gone.
        """
        try:
            while True:
                data = await reader.read(4096)
                if not data:
                    break
        except (ConnectionError, OSError):
            pass
        if self._closed or link.reader is not reader:
            return
        self._mark_down(link)
        if link.state == "down" and link.reconnector is None:
            link.reconnector = asyncio.ensure_future(self._reconnect(link))

    def _mark_down(self, link: _Link) -> None:
        if link.state == "up":
            link.state = "down"
            if self.on_link_down is not None:
                self.on_link_down(link.src, link.dst)
        if link.writer is not None:
            try:
                link.writer.close()
            except Exception:  # pragma: no cover
                pass
        link.writer = None
        link.reader = None

    async def _reconnect(self, link: _Link) -> None:
        """Bounded-backoff reconnect; drains the pending queue on success."""
        try:
            while not self._closed and link.state == "down":
                if self.backoff.exhausted(link.attempts):
                    link.state = "gave-up"
                    if self.on_give_up is not None:
                        self.on_give_up(link.src, link.dst, link.attempts)
                    return
                await asyncio.sleep(
                    self.backoff.delay(link.attempts, self._rng))
                if self._closed or link.state != "down":
                    return
                link.attempts += 1
                try:
                    await self._open(link)
                    return
                except OSError:
                    continue
        finally:
            link.reconnector = None

    def sever(self, src: str, dst: str) -> None:
        """Cut one directed link (fault injection).  Frames queue; no
        reconnect runs until :meth:`heal`."""
        link = self._links[(src, dst)]
        if link.watcher is not None:
            link.watcher.cancel()
            link.watcher = None
        if link.reconnector is not None:
            link.reconnector.cancel()
            link.reconnector = None
        self._mark_down(link)
        link.state = "severed"

    def heal(self, src: str, dst: str) -> None:
        """Restore a severed (or given-up) link: reconnect immediately,
        falling back to the backoff loop if the peer is still away."""
        link = self._links[(src, dst)]
        if link.state == "up":
            return
        link.state = "down"
        link.attempts = 0
        if link.reconnector is None:
            link.reconnector = asyncio.ensure_future(self._heal_now(link))

    async def _heal_now(self, link: _Link) -> None:
        try:
            await self._open(link)
            link.reconnector = None
        except OSError:
            link.reconnector = asyncio.ensure_future(self._reconnect(link))

    # ------------------------------------------------------------------
    # Node kill / restart (fault-injection support)
    # ------------------------------------------------------------------
    async def close_node(self, node: str) -> int:
        """Hard-close everything ``node`` owns: its server, established
        inbound connections, and its outgoing links.

        Returns the number of the node's *own* queued ``msg`` frames
        that died with it (volatile outbound state lost in the crash);
        wire losses toward the node are counted separately by
        :meth:`reconcile_lost` once the closes have propagated.
        """
        lost = 0
        server = self._servers.pop(node, None)
        if server is not None:
            server.close()
            try:
                await server.wait_closed()
            except Exception:  # pragma: no cover
                pass
        for writer in list(self._server_conns.get(node, ())):
            try:
                writer.close()
            except Exception:  # pragma: no cover
                pass
        self._server_conns[node] = set()
        for (src, dst), link in self._links.items():
            if src != node:
                continue
            if link.watcher is not None:
                link.watcher.cancel()
                link.watcher = None
            if link.reconnector is not None:
                link.reconnector.cancel()
                link.reconnector = None
            self._mark_down(link)
            link.state = "dead"
            lost += sum(1 for kind, _ in link.pending if kind == "msg")
            link.pending.clear()
            link.attempts = 0
        return lost

    def reconcile_lost(self, node: str) -> int:
        """Count ``msg`` frames that were on the wire toward ``node``
        but never delivered (they died in socket buffers when the node
        was killed), and zero the imbalance so accounting restarts
        clean for the next incarnation."""
        lost = 0
        for (src, dst), written in self.msg_written.items():
            if dst != node:
                continue
            received = self.msg_received.get((src, dst), 0)
            if written > received:
                lost += written - received
                self.msg_received[(src, dst)] = written
        return lost

    async def reopen_node(self, node: str) -> Tuple[str, int]:
        """Bring a killed node's transport back: re-listen on its old
        address and reconnect its outgoing links.  Peers' supervised
        links reconnect themselves via backoff."""
        host, port = self._addresses[node]
        await self.listen(node, host, port)
        for (src, dst), link in self._links.items():
            if src != node:
                continue
            link.state = "down"
            if link.reconnector is None:
                link.reconnector = asyncio.ensure_future(
                    self._heal_now(link))
        return self._addresses[node]

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        self._closed = True
        waiters: List[Awaitable] = []
        for link in self._links.values():
            for task in (link.watcher, link.reconnector):
                if task is not None:
                    task.cancel()
            link.watcher = link.reconnector = None
            if link.writer is not None:
                try:
                    link.writer.close()
                    waiters.append(link.writer.wait_closed())
                except Exception:  # pragma: no cover
                    pass
            link.writer = None
        self._links.clear()
        for conns in self._server_conns.values():
            for writer in list(conns):
                try:
                    writer.close()
                except Exception:  # pragma: no cover
                    pass
        self._server_conns.clear()
        for server in self._servers.values():
            server.close()
            waiters.append(server.wait_closed())
        self._servers.clear()
        for waiter in waiters:
            try:
                await waiter
            except Exception:  # pragma: no cover
                pass
