"""Asyncio TCP transport: one listening socket per node, one ordered
stream per directed link.

Each node gets a server socket; for every directed pair of nodes the
transport opens a dedicated client connection.  Frames written on one
link are read in order at the destination — TCP's byte-stream ordering
gives the per-link session (FIFO) guarantee the LU 6.2 sessions in the
paper provide and the simulated network enforces with its link clamp.

The transport is deliberately dumb: it moves frames.  What a frame
*means* (protocol message, begin-transaction control frame, ping) is
the :mod:`repro.transport.live` layer's business, via ``on_frame``.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple

from repro.transport.wire import encode_frame, read_frame

FrameHandler = Callable[[str, dict, "asyncio.StreamWriter"], None]


class TcpTransport:
    """Localhost (or LAN) mesh of length-prefixed JSON frame streams."""

    def __init__(self) -> None:
        #: Called as ``on_frame(node, obj, writer)`` for every frame a
        #: node's server reads; ``writer`` allows control-frame replies.
        self.on_frame: Optional[FrameHandler] = None
        self._servers: Dict[str, "asyncio.base_events.Server"] = {}
        self._addresses: Dict[str, Tuple[str, int]] = {}
        self._writers: Dict[Tuple[str, str], "asyncio.StreamWriter"] = {}
        self.frames_sent = 0
        self.frames_received = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    async def listen(self, node: str, host: str = "127.0.0.1",
                     port: int = 0) -> Tuple[str, int]:
        """Start ``node``'s server; returns the bound (host, port)."""

        async def handler(reader: "asyncio.StreamReader",
                          writer: "asyncio.StreamWriter") -> None:
            await self._serve_connection(node, reader, writer)

        server = await asyncio.start_server(handler, host, port)
        self._servers[node] = server
        bound = server.sockets[0].getsockname()
        self._addresses[node] = (bound[0], bound[1])
        return self._addresses[node]

    def set_peer(self, node: str, host: str, port: int) -> None:
        """Register a remote node's address (multi-process deployments)."""
        self._addresses[node] = (host, port)

    def address(self, node: str) -> Tuple[str, int]:
        return self._addresses[node]

    async def connect(self, src: str, dst: str) -> None:
        host, port = self._addresses[dst]
        reader, writer = await asyncio.open_connection(host, port)
        self._writers[(src, dst)] = writer

    async def connect_mesh(self, nodes: Sequence[str]) -> None:
        """Open every directed link up front so sends are synchronous."""
        for src in nodes:
            for dst in nodes:
                if src != dst:
                    await self.connect(src, dst)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, obj: dict) -> None:
        """Write one frame on the (src, dst) link.

        Synchronous by design: ``Network.send`` is synchronous, and the
        asyncio writer buffers.  Per-link ordering is the write order.
        """
        writer = self._writers[(src, dst)]
        writer.write(encode_frame(obj))
        self.frames_sent += 1

    async def _serve_connection(self, node: str,
                                reader: "asyncio.StreamReader",
                                writer: "asyncio.StreamWriter") -> None:
        try:
            while True:
                obj = await read_frame(reader)
                if obj is None:
                    break
                self.frames_received += 1
                if self.on_frame is not None:
                    self.on_frame(node, obj, writer)
        finally:
            try:
                writer.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    async def close(self) -> None:
        waiters: List[Awaitable] = []
        for writer in self._writers.values():
            try:
                writer.close()
                waiters.append(writer.wait_closed())
            except Exception:  # pragma: no cover
                pass
        self._writers.clear()
        for server in self._servers.values():
            server.close()
            waiters.append(server.wait_closed())
        self._servers.clear()
        for waiter in waiters:
            try:
                await waiter
            except Exception:  # pragma: no cover
                pass
