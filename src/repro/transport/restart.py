"""Booting a killed live node from its on-disk WAL.

This is the live counterpart of the simulator's ``node.restart()``
call — except that where the sim's stable storage is an in-memory
object that trivially survives the crash, a live restart has to
rebuild it from the JSONL WAL on disk (dropping a torn final line if
the crash interrupted an append), carry the fsync accounting across
incarnations so the twin/torture gates can keep asserting
``fsyncs == physical log I/Os``, re-bind the node's server socket,
and re-open its outgoing links.  Everything protocol-level — record
classification, redo/undo, checkpoint-based recovery, in-doubt
inquiry — is the unchanged :mod:`repro.core.recovery` code.

The division of labour with :class:`~repro.transport.live.LiveCluster`:
the cluster owns the *kill* half (``begin_kill`` must run synchronously
inside the event being interrupted, and ``finish_kill`` reconciles the
activity tracker it owns); this module owns the *boot* half.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.transport.storage import FileStableStorage

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.live import LiveCluster


@dataclass
class RestartInfo:
    """What one WAL-driven restart cost and recovered."""

    node: str
    seconds: float
    records_replayed: int
    torn_tail: Optional[str] = None

    def to_dict(self) -> dict:
        return {"node": self.node, "seconds": self.seconds,
                "records_replayed": self.records_replayed,
                "torn_tail": self.torn_tail}


async def kill_node(cluster: "LiveCluster", name: str) -> None:
    """Hard-kill ``name``: process-state wipe + hard socket close."""
    await cluster.kill_node(name)


async def restart_node(cluster: "LiveCluster", name: str) -> RestartInfo:
    """Boot a killed node from its existing WAL directory.

    Steps, in order:

    1. reconcile any frames written into the dead node's sockets since
       the kill (they are lost; the activity tracker must not wait for
       them);
    2. recover the WAL file into a fresh
       :class:`~repro.transport.storage.FileStableStorage` —
       torn-tail aware, carrying the previous incarnation's fsync
       count so physical-I/O accounting spans the crash;
    3. re-listen on the node's old address and reconnect its outgoing
       links (surviving peers' supervised links heal themselves via
       backoff, draining frames they queued during the outage);
    4. run ``TMNode.restart()`` — the unchanged restart recovery,
       including checkpoint-based recovery and in-doubt resumption.
    """
    node = cluster.nodes[name]
    if node.alive:
        raise ConfigurationError(f"{name} is not killed")
    for _ in range(cluster.transport.reconcile_lost(name)):
        cluster.activity.dec()
    torn = None
    if cluster.log_dir is not None:
        fresh = FileStableStorage(cluster.wal_path(name), recover=True)
        retired = cluster._retired_storage.pop(name, None)
        if retired is not None:
            fresh.fsync_count = retired.fsync_count
        torn = fresh.torn_tail
        if torn is not None:
            cluster.metrics.record_recovery_anomaly(
                name, "wal-torn-tail", torn)
            node.note("-", f"WAL-TORN-TAIL {torn}")
        node.log.stable = fresh
    await cluster.transport.reopen_node(name)
    node.restart()
    recovery = cluster.metrics.recoveries[-1]
    return RestartInfo(node=name, seconds=recovery.seconds,
                       records_replayed=recovery.records_replayed,
                       torn_tail=torn)
