"""The live torture gate: kill real nodes at the paper's worst moments.

The simulated torture matrix (:mod:`repro.torture`) proves the
protocol state machines recover from crashes at adversarial log
sites.  This module proves the *deployment* does: the same crash
sites, but the victim is a :class:`~repro.transport.live.LiveCluster`
node whose sockets get hard-closed, whose volatile state is wiped,
and whose only way back is its on-disk WAL through
:mod:`repro.transport.restart`.

Each cell of the sweep runs a seeded workload over localhost TCP,
arms one crash site on one victim via
:class:`~repro.transport.faults.LiveFaultInjector`, lets the node die
mid-protocol, restarts it from the WAL after a short outage, and then
requires:

* settlement — every context on every node reaches a settled state
  (surviving nodes' protocol timers plus the restarted node's
  recovery drive the in-doubt windows closed);
* zero stranded in-doubt transactions (operator-console scan);
* checker rules clean (atomicity per transaction, R1-R9 stream);
* fsync accounting intact across the crash: on every untouched node
  each counted physical log I/O is one real fsync; on the victim the
  shortfall is bounded by its crash count (an I/O counted at start
  whose fsync died with the process).

``site == "none"`` cells are the no-fault control: they run the full
deployment-twin check, so ``diff_journals(live, sim,
ignore_time=True)`` must come back empty — the torture gate subsumes
the twin gate's guarantee on undisturbed runs.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.sim.kernel import EventInterrupt
from repro.transport.faults import LiveFaultInjector
from repro.transport.live import LiveCluster
from repro.transport.twin import (DEFAULT_NODES, TWIN_PROTOCOLS,
                                  run_twin_check, twin_specs)
from repro.verify.checker import ProtocolChecker

#: Crash sites the sweep visits, in report order.  "none" is the
#: control cell (full twin check, no faults); the rest name the
#: forced-record sites the paper's recovery arguments hinge on.
SITES = ("none", "coord-pre-decision", "coord-post-decision",
         "sub-pre-vote", "sub-post-vote", "mid-checkpoint")

#: site -> (record matcher kind, pre|post) for the armed sites.
_ARMED_SITES = {
    "coord-pre-decision": ("coordinator-decision", "pre"),
    "coord-post-decision": ("coordinator-decision", "post"),
    "sub-pre-vote": ("subordinate-vote", "pre"),
    "sub-post-vote": ("subordinate-vote", "post"),
}

#: Real-time analogues of the sim torture timeouts: short enough that
#: a cell settles in well under a second of wall clock, long enough
#: that the ~60ms kill/restart outage never races a timer it needn't.
_TIMEOUTS = dict(io_latency=0.0, ack_timeout=0.4, vote_timeout=0.5,
                 inquiry_timeout=0.5, work_timeout=4.0,
                 retry_interval=0.15)

_SETTLE_TIMEOUT = 20.0
_POLL = 0.02


def _updates(participant: ParticipantSpec) -> bool:
    if any(op.is_update for op in participant.ops):
        return True
    return any(op.is_update for ops in participant.rm_ops.values()
               for op in ops)


def _victim_for(spec: TransactionSpec, site: str) -> Optional[str]:
    """The node to kill in ``spec``, or None if the spec can't host
    the site (read-only participants force no records to crash at)."""
    updating_subs = [p.node for p in spec.participants
                     if not p.is_root and _updates(p)]
    if not updating_subs:
        # Also disqualifies the coordinator sites: an all-read-only
        # subtree means no decision record is forced (and under PA an
        # abort decision writes no coordinator record at all).
        return None
    if site.startswith("sub-"):
        return updating_subs[0]
    return spec.root.node


def _choose_target(specs: Sequence[TransactionSpec],
                   site: str) -> Tuple[Optional[int], Optional[str]]:
    for index, spec in enumerate(specs):
        victim = _victim_for(spec, site)
        if victim is not None:
            return index, victim
    return None, None


def _settled(cluster: LiveCluster) -> bool:
    from repro.obs.journal import SETTLED_STATES
    for node in cluster.nodes.values():
        if not node.alive:
            return False
        for context in node.contexts.values():
            if context.state.value not in SETTLED_STATES:
                return False
    return True


async def _wait_settled(cluster: LiveCluster,
                        timeout: float = _SETTLE_TIMEOUT) -> bool:
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        if _settled(cluster):
            return True
        await asyncio.sleep(_POLL)
    return False


def _start(cluster: LiveCluster, spec: TransactionSpec):
    """Start a transaction, honouring a crash site that fires inside
    the synchronous part of ``begin_transaction`` itself."""
    try:
        return cluster.start_transaction(spec)
    except EventInterrupt as interrupt:
        if interrupt.on_interrupt is not None:
            interrupt.on_interrupt()
        return None


def _recorded_outcome(cluster: LiveCluster, spec: TransactionSpec) -> str:
    for participant in spec.participants:
        outcome = cluster.recorded_outcome(participant.node, spec.txn_id)
        if outcome is not None:
            return outcome
    return "no-record"  # legal: e.g. a presumed-abort all-read-only txn


@dataclass
class TortureCell:
    """One (protocol, site) cell of the live torture sweep."""

    protocol: str
    site: str
    ok: bool
    fired: bool
    victim: Optional[str]
    crashes: int
    outcomes: Dict[str, str] = field(default_factory=dict)
    restarts: List[dict] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)

    def describe(self) -> str:
        label = f"{self.protocol}/{self.site}"
        if self.ok:
            detail = (f"victim {self.victim} crashed and recovered"
                      if self.crashes else "control clean")
            outcomes = ",".join(f"{t}={o}"
                                for t, o in sorted(self.outcomes.items()))
            return f"  ok   {label}: {detail}" + \
                (f" [{outcomes}]" if outcomes else "")
        lines = [f"  FAIL {label}:"]
        lines.extend(f"       {p}" for p in self.problems)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {"protocol": self.protocol, "site": self.site,
                "ok": self.ok, "fired": self.fired, "victim": self.victim,
                "crashes": self.crashes, "outcomes": self.outcomes,
                "restarts": self.restarts, "problems": self.problems}


@dataclass
class LiveTortureReport:
    """The full sweep: protocols x crash sites over real sockets."""

    seed: int
    txns: int
    cells: List[TortureCell]

    @property
    def clean(self) -> bool:
        return all(cell.ok for cell in self.cells)

    def describe(self) -> str:
        failed = sum(1 for c in self.cells if not c.ok)
        head = (f"live torture: {len(self.cells)} cells, "
                f"{len(self.cells) - failed} clean, {failed} failed "
                f"(seed={self.seed}, txns={self.txns})")
        return "\n".join([head] + [cell.describe() for cell in self.cells])

    def to_dict(self) -> dict:
        return {"seed": self.seed, "txns": self.txns, "clean": self.clean,
                "cells": [cell.to_dict() for cell in self.cells]}


async def _run_cell(protocol: str, site: str, seed: int, txns: int,
                    outage: float, log_dir: str) -> TortureCell:
    from repro.obs.journal import JournalRecorder
    from repro.ops import OperatorConsole

    config = TWIN_PROTOCOLS[protocol].with_options(**_TIMEOUTS)
    cluster = LiveCluster(config, nodes=list(DEFAULT_NODES), seed=seed,
                          log_dir=log_dir)
    recorder = JournalRecorder().attach(cluster)
    checker = ProtocolChecker().attach(cluster)
    injector = LiveFaultInjector(cluster, seed=seed)
    console = OperatorConsole(cluster)
    specs = twin_specs(seed, txns, DEFAULT_NODES)
    target, victim = _choose_target(specs, site)
    problems: List[str] = []
    outcomes: Dict[str, str] = {}
    armed = None
    await cluster.start()
    try:
        if target is None:
            problems.append(f"workload seed {seed} produced no "
                            f"transaction eligible for site {site}")
        for index, spec in enumerate(specs):
            if target is None:
                break
            if index == target and site in _ARMED_SITES:
                kind, when = _ARMED_SITES[site]
                armed = injector.arm_crash(kind, victim, when=when,
                                           txn_id=spec.txn_id,
                                           restart_after=outage)
            _start(cluster, spec)
            if not await _wait_settled(cluster):
                problems.append(f"{spec.txn_id}: cluster did not settle "
                                f"within {_SETTLE_TIMEOUT:g}s")
                break
            checker.check_atomicity(spec.txn_id)
            outcomes[spec.txn_id] = _recorded_outcome(cluster, spec)
            if index == target and site == "mid-checkpoint":
                # Crash inside the checkpoint the restarted node would
                # otherwise recover from: the CHECKPOINT record dies
                # volatile, so recovery must fall back to a full-log
                # replay — and the remaining transactions must still
                # run clean on the recovered node.
                armed = injector.arm_crash("checkpoint", victim,
                                           when="pre",
                                           restart_after=outage)
                try:
                    cluster.nodes[victim].take_checkpoint()
                except EventInterrupt as interrupt:
                    if interrupt.on_interrupt is not None:
                        interrupt.on_interrupt()
                if not await _wait_settled(cluster):
                    problems.append("mid-checkpoint: cluster did not "
                                    "settle after restart")
                    break
        await injector.wait_armed()
        try:
            await cluster.wait_quiescent(timeout=2.0)
        except asyncio.TimeoutError:
            # Settlement is the gate's criterion; residual tracked
            # work (e.g. a retry armed just before its target acked)
            # is tolerated but the states above must already be final.
            pass

        if site != "none" and not problems and \
                (armed is None or not armed.fired):
            problems.append(f"crash site {site} never fired "
                            f"(victim {victim})")
        problems.extend(str(v) for v in checker.violations)
        stranded = console.in_doubt_transactions()
        for entry in stranded:
            problems.append(
                f"stranded in-doubt: txn {entry.txn_id} on {entry.node} "
                f"(coordinator {entry.coordinator}, "
                f"held {entry.held_keys})")
        fsyncs = cluster.fsync_counts()
        for name, node in cluster.nodes.items():
            ios = cluster.metrics.physical_ios(name)
            synced = fsyncs.get(name, 0)
            if not 0 <= ios - synced <= node.crash_count:
                problems.append(
                    f"fsync accounting broken on {name}: {ios} physical "
                    f"log I/Os vs {synced} fsyncs "
                    f"({node.crash_count} crashes)")
    finally:
        injector.detach()
        recorder.detach()
        checker.detach()
        await cluster.stop()
    return TortureCell(
        protocol=protocol, site=site, ok=not problems,
        fired=bool(armed and armed.fired), victim=victim,
        crashes=sum(n.crash_count for n in cluster.nodes.values()),
        outcomes=outcomes,
        restarts=[info.to_dict() for info in injector.restarts],
        problems=problems)


def run_torture_cell(protocol: str, site: str, seed: int = 17,
                     txns: int = 3, outage: float = 0.05) -> TortureCell:
    """Run one cell (fresh event loop, throwaway WAL directory)."""
    if site == "none":
        report = run_twin_check(protocol, seed=seed, txns=txns)
        return TortureCell(
            protocol=protocol, site="none", ok=report.clean, fired=False,
            victim=None, crashes=0,
            problems=[] if report.clean else [report.describe()])
    import tempfile
    with tempfile.TemporaryDirectory(prefix="repro-torture-") as tmp:
        return asyncio.run(_run_cell(protocol, site, seed, txns,
                                     outage, tmp))


def run_live_torture(seed: int = 17, txns: int = 3,
                     protocols: Optional[Sequence[str]] = None,
                     sites: Optional[Sequence[str]] = None,
                     outage: float = 0.05) -> LiveTortureReport:
    """The full sweep; the body of ``repro-2pc live-torture``."""
    cells = []
    for protocol in (protocols or list(TWIN_PROTOCOLS)):
        for site in (sites or SITES):
            cells.append(run_torture_cell(protocol, site, seed=seed,
                                          txns=txns, outage=outage))
    return LiveTortureReport(seed=seed, txns=txns, cells=cells)
