"""The chaos engine's live counterpart: seeded faults on real sockets.

:class:`LiveFaultInjector` drives the three fault families the sim's
torture/chaos layers exercise, against a running
:class:`~repro.transport.live.LiveCluster`:

* **node kill / restart** — hard socket close + process-state wipe,
  then a WAL boot through :mod:`repro.transport.restart`;
* **link sever / heal** — cut one directed TCP link; frames queue at
  the transport and drain FIFO on heal;
* **frame delay / drop** — seeded filters at the transport seam
  (:attr:`TcpTransport.send_filter`), reconciled with the activity
  tracker so quiescence accounting stays truthful.

Crash *sites* use the same interruption contract as the sim torture
matrix (:mod:`repro.torture.sites`): a hook on the victim's log raises
:class:`~repro.sim.kernel.EventInterrupt` at the armed record, the
live clock catches it exactly as the sim kernel does, and the node
dies mid-event —

* ``pre`` a force: the hook fires on ``log.on_write``, before the
  force request is even filed, so the record is volatile and dies with
  the crash (the in-doubt / presumption machinery must cope with its
  absence);
* ``post`` a force: the hook fires on ``log.on_flush``, after the
  record hardened (real fsync included) but before any ``on_durable``
  continuation ran — durable decision, no propagation.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from repro.log.records import LogRecord, LogRecordType
from repro.sim.kernel import EventInterrupt
from repro.sim.randomness import RandomStream
from repro.transport.restart import RestartInfo, restart_node
from repro.transport.tcp import DROP_FRAME

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.live import LiveCluster

#: Record matchers for the named crash sites.  "coordinator-decision"
#: is the root's forced outcome record; "subordinate-vote" is a
#: participant's forced PREPARED; "checkpoint" is the forced
#: CHECKPOINT record (the mid-checkpoint crash ROADMAP asks for).
SITE_KINDS = ("coordinator-decision", "subordinate-vote", "checkpoint")


def _matches(kind: str, record: LogRecord) -> bool:
    if kind == "coordinator-decision":
        return (record.record_type in (LogRecordType.COMMITTED,
                                       LogRecordType.ABORTED)
                and record.payload.get("role") == "coordinator")
    if kind == "subordinate-vote":
        return record.record_type is LogRecordType.PREPARED
    if kind == "checkpoint":
        return record.record_type is LogRecordType.CHECKPOINT
    raise ValueError(f"unknown crash-site kind {kind!r}")


@dataclass
class _FrameRule:
    """One seeded delay/drop rule at the transport seam."""

    src: Optional[str]          # None = any
    dst: Optional[str]
    action: str                 # "drop" | "delay"
    probability: float = 1.0
    delay: float = 0.0
    remaining: Optional[int] = None   # None = unlimited


@dataclass
class ArmedLiveCrash:
    """A crash armed at a log-record site on one node.

    ``fired`` flips when the matching record passes the armed hook;
    the crash itself (volatile wipe now, socket teardown + optional
    auto-restart as a task) is carried by ``EventInterrupt``.
    """

    kind: str
    node: str
    when: str                   # "pre" | "post"
    txn_id: Optional[str] = None
    fired: bool = False
    fired_at: Optional[float] = None
    restart_task: Optional["asyncio.Task"] = field(default=None, repr=False)


class LiveFaultInjector:
    """Seeded fault injection for a live cluster."""

    def __init__(self, cluster: "LiveCluster", seed: int = 0) -> None:
        self.cluster = cluster
        self.rng = RandomStream(seed ^ 0xFA_017)
        self.killed: List[str] = []
        self.restarts: List[RestartInfo] = []
        self._rules: List[_FrameRule] = []
        self._armed: List[ArmedLiveCrash] = []
        self._hooks: List = []   # (hook_list, hook) pairs for detach
        cluster.transport.send_filter = self._filter_frame
        cluster.transport.on_frame_dropped = self._frame_dropped

    # ------------------------------------------------------------------
    # Node kill / restart
    # ------------------------------------------------------------------
    async def kill(self, name: str) -> None:
        self.killed.append(name)
        await self.cluster.kill_node(name)

    async def restart(self, name: str) -> RestartInfo:
        info = await restart_node(self.cluster, name)
        self.restarts.append(info)
        return info

    # ------------------------------------------------------------------
    # Links
    # ------------------------------------------------------------------
    def sever(self, src: str, dst: str) -> None:
        self.cluster.transport.sever(src, dst)

    def heal(self, src: str, dst: str) -> None:
        self.cluster.transport.heal(src, dst)

    def sever_both(self, a: str, b: str) -> None:
        self.sever(a, b)
        self.sever(b, a)

    def heal_both(self, a: str, b: str) -> None:
        self.heal(a, b)
        self.heal(b, a)

    # ------------------------------------------------------------------
    # Frame delay / drop (transport seam)
    # ------------------------------------------------------------------
    def drop_frames(self, src: Optional[str] = None,
                    dst: Optional[str] = None, probability: float = 1.0,
                    count: Optional[int] = None) -> None:
        """Drop matching ``msg`` frames (seeded coin per frame)."""
        self._rules.append(_FrameRule(src, dst, "drop",
                                      probability=probability,
                                      remaining=count))

    def delay_frames(self, delay: float, src: Optional[str] = None,
                     dst: Optional[str] = None, probability: float = 1.0,
                     count: Optional[int] = None) -> None:
        """Delay matching ``msg`` frames by ``delay`` seconds.

        A delayed frame re-enters the link later — it may arrive after
        frames sent subsequently, i.e. this deliberately violates the
        per-link session order, exactly like the sim chaos reorder
        adversary.
        """
        self._rules.append(_FrameRule(src, dst, "delay",
                                      probability=probability, delay=delay,
                                      remaining=count))

    def clear_frame_rules(self) -> None:
        self._rules.clear()

    def _filter_frame(self, src: str, dst: str, obj: dict):
        if obj.get("kind") != "msg":
            return None   # control frames are not protocol traffic
        for rule in self._rules:
            if rule.src is not None and rule.src != src:
                continue
            if rule.dst is not None and rule.dst != dst:
                continue
            if rule.remaining is not None and rule.remaining <= 0:
                continue
            if rule.probability < 1.0 and not \
                    self.rng.chance(rule.probability):
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            if rule.action == "drop":
                return DROP_FRAME
            return rule.delay
        return None

    def _frame_dropped(self, src: str, dst: str, obj: dict) -> None:
        # The LiveNetwork counted this frame as in-flight when it
        # accepted it for transmission; a transport-seam drop must
        # hand that count back or quiescence never arrives.
        if obj.get("kind") == "msg":
            self.cluster.activity.dec()

    # ------------------------------------------------------------------
    # Crash sites
    # ------------------------------------------------------------------
    def arm_crash(self, kind: str, node: str, when: str = "pre",
                  txn_id: Optional[str] = None,
                  restart_after: Optional[float] = None) -> ArmedLiveCrash:
        """Arm a one-shot crash of ``node`` at the named record site.

        With ``restart_after`` set, the injector restarts the node from
        its WAL that many seconds after the kill completes (the torture
        harness's outage window); otherwise the caller restarts
        explicitly via :meth:`restart`.
        """
        if when not in ("pre", "post"):
            raise ValueError(f"when must be pre|post, got {when!r}")
        if kind not in SITE_KINDS:
            raise ValueError(f"unknown crash-site kind {kind!r}")
        armed = ArmedLiveCrash(kind=kind, node=node, when=when,
                               txn_id=txn_id)
        log = self.cluster.nodes[node].log

        def hook(arg) -> None:
            if armed.fired:
                return
            records = arg if isinstance(arg, list) else [arg]
            for record in records:
                if armed.txn_id is not None and \
                        record.txn_id != armed.txn_id:
                    continue
                if _matches(armed.kind, record):
                    armed.fired = True
                    armed.fired_at = self.cluster.simulator.now
                    raise EventInterrupt(on_interrupt=lambda:
                                         self._crash(armed, restart_after))
        hook_list = log.on_write if when == "pre" else log.on_flush
        hook_list.append(hook)
        self._hooks.append((hook_list, hook))
        self._armed.append(armed)
        return armed

    def _crash(self, armed: ArmedLiveCrash,
               restart_after: Optional[float]) -> None:
        """Runs as the ``EventInterrupt``'s on_interrupt: the volatile
        wipe happens synchronously (nothing else runs first); socket
        teardown and the optional restart continue as a task."""
        name = armed.node
        self.killed.append(name)
        self.cluster.begin_kill(name)

        async def teardown() -> None:
            await self.cluster.finish_kill(name)
            if restart_after is not None:
                await asyncio.sleep(restart_after)
                info = await restart_node(self.cluster, name)
                self.restarts.append(info)
        armed.restart_task = asyncio.ensure_future(teardown())

    async def wait_armed(self) -> None:
        """Await completion of every fired crash's teardown/restart."""
        for armed in self._armed:
            if armed.restart_task is not None:
                await armed.restart_task

    def detach(self) -> None:
        """Remove armed hooks and the transport filters."""
        for hook_list, hook in self._hooks:
            if hook in hook_list:
                hook_list.remove(hook)
        self._hooks.clear()
        self.cluster.transport.send_filter = None
        self.cluster.transport.on_frame_dropped = None
