"""Fault injection.

Declarative failure schedules (crashes, restarts, partitions, message
loss) applied to a cluster — the machinery behind the failure-case
experiments: heuristic-damage studies, wait-for-outcome ablations and
the recovery test matrix.
"""

from repro.faults.injector import (
    CrashPlan,
    CrashSite,
    FaultPlan,
    FaultInjector,
    MessageLossPlan,
    PartitionPlan,
)

__all__ = [
    "CrashPlan",
    "CrashSite",
    "FaultInjector",
    "FaultPlan",
    "MessageLossPlan",
    "PartitionPlan",
]
