"""Declarative fault schedules.

A :class:`FaultPlan` lists failures with their injection times; the
:class:`FaultInjector` arms them on a cluster.  Message loss is
probabilistic (seeded through the simulator's fault stream, so runs
stay reproducible) and can be scoped by message type or link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.net.message import Message


@dataclass(frozen=True)
class CrashPlan:
    """Crash ``node`` at ``at``; restart at ``restart_at`` (optional)."""

    node: str
    at: float
    restart_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.restart_at is not None and self.restart_at <= self.at:
            raise ValueError(
                f"restart_at {self.restart_at} must follow crash at "
                f"{self.at}")


@dataclass(frozen=True)
class PartitionPlan:
    """Cut the (a, b) link at ``at``; heal at ``heal_at`` (optional)."""

    a: str
    b: str
    at: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError(
                f"heal_at {self.heal_at} must follow partition at "
                f"{self.at}")


@dataclass(frozen=True)
class MessageLossPlan:
    """Drop each matching message with ``probability``.

    Scope with ``msg_types`` (message-type values) and/or ``links``
    ((src, dst) pairs); empty means unrestricted.
    """

    probability: float
    msg_types: Tuple[str, ...] = ()
    links: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability out of range: {self.probability}")

    def matches(self, message: Message) -> bool:
        if self.msg_types and message.msg_type.value not in self.msg_types:
            return False
        if self.links and (message.src, message.dst) not in self.links:
            return False
        return True


@dataclass
class FaultPlan:
    """A complete failure schedule for one run."""

    crashes: List[CrashPlan] = field(default_factory=list)
    partitions: List[PartitionPlan] = field(default_factory=list)
    message_loss: Optional[MessageLossPlan] = None

    def crash(self, node: str, at: float,
              restart_at: Optional[float] = None) -> "FaultPlan":
        self.crashes.append(CrashPlan(node, at, restart_at))
        return self

    def partition(self, a: str, b: str, at: float,
                  heal_at: Optional[float] = None) -> "FaultPlan":
        self.partitions.append(PartitionPlan(a, b, at, heal_at))
        return self

    def lose_messages(self, probability: float,
                      msg_types: Tuple[str, ...] = (),
                      links: Tuple[Tuple[str, str], ...] = ()
                      ) -> "FaultPlan":
        self.message_loss = MessageLossPlan(probability, msg_types, links)
        return self


class FaultInjector:
    """Arms a :class:`FaultPlan` on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._rng = cluster.simulator.stream("faults")
        self.injected_drops = 0

    def apply(self, plan: FaultPlan) -> None:
        for crash in plan.crashes:
            self.cluster.crash_at(crash.node, crash.at)
            if crash.restart_at is not None:
                self.cluster.restart_at(crash.node, crash.restart_at)
        for partition in plan.partitions:
            self.cluster.partition_at(partition.a, partition.b,
                                      partition.at)
            if partition.heal_at is not None:
                self.cluster.heal_at(partition.a, partition.b,
                                     partition.heal_at)
        if plan.message_loss is not None:
            loss = plan.message_loss

            def drop(message: Message) -> bool:
                if not loss.matches(message):
                    return False
                if self._rng.chance(loss.probability):
                    self.injected_drops += 1
                    return True
                return False

            self.cluster.network.set_drop_filter(drop)

    def clear_message_loss(self) -> None:
        self.cluster.network.set_drop_filter(None)
