"""Declarative fault schedules.

A :class:`FaultPlan` lists failures with their injection times; the
:class:`FaultInjector` arms them on a cluster.  Message loss is
probabilistic (seeded through the simulator's fault stream, so runs
stay reproducible) and can be scoped by message type or link.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.errors import ConfigurationError
from repro.net.message import Message


@dataclass(frozen=True)
class CrashSite:
    """A deterministic crash point: one observable protocol action.

    ``kind`` is ``"force"`` (a forced log write on the node), ``"send"``
    (a message the node puts on the wire) or ``"deliver"`` (a message
    the node receives).  ``seq`` is the zero-based ordinal of that kind
    of action on that node within the run — the addressing is stable
    because the simulator is deterministic for a given seed.  ``label``
    is purely descriptive (record/message type) and takes no part in
    matching.
    """

    kind: str
    node: str
    seq: int
    label: str = ""

    KINDS = ("force", "send", "deliver")

    def __post_init__(self) -> None:
        if self.kind not in self.KINDS:
            raise ValueError(f"unknown crash-site kind {self.kind!r}; "
                             f"expected one of {self.KINDS}")
        if self.seq < 0:
            raise ValueError(f"crash-site seq must be >= 0, got {self.seq}")

    def describe(self) -> str:
        text = f"{self.kind}#{self.seq}@{self.node}"
        return f"{text} ({self.label})" if self.label else text

    def to_dict(self) -> dict:
        return {"kind": self.kind, "node": self.node, "seq": self.seq,
                "label": self.label}

    @classmethod
    def from_dict(cls, data: dict) -> "CrashSite":
        return cls(kind=data["kind"], node=data["node"],
                   seq=int(data["seq"]), label=data.get("label", ""))


@dataclass(frozen=True)
class CrashPlan:
    """Crash ``node`` — either at virtual time ``at`` (restarting at
    ``restart_at``, optional), or exactly at a :class:`CrashSite`
    (``when`` picks the pre/post side of the site's effect; restart
    follows ``restart_after`` time units later, optional)."""

    node: str
    at: Optional[float] = None
    restart_at: Optional[float] = None
    site: Optional[CrashSite] = None
    when: str = "pre"
    restart_after: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.at is None) == (self.site is None):
            raise ValueError(
                "a CrashPlan needs exactly one of `at` (time-addressed) "
                "or `site` (site-addressed)")
        if self.at is not None:
            if self.restart_at is not None and self.restart_at <= self.at:
                raise ValueError(
                    f"restart_at {self.restart_at} must follow crash at "
                    f"{self.at}")
            if self.restart_after is not None:
                raise ValueError(
                    "restart_after only applies to site-addressed plans; "
                    "use restart_at")
        else:
            if self.site.node != self.node:
                raise ValueError(
                    f"site names node {self.site.node!r} but the plan "
                    f"crashes {self.node!r}")
            if self.when not in ("pre", "post"):
                raise ValueError(
                    f"when must be 'pre' or 'post', got {self.when!r}")
            if self.restart_at is not None:
                raise ValueError(
                    "restart_at only applies to time-addressed plans; "
                    "use restart_after")
            if self.restart_after is not None and self.restart_after <= 0:
                raise ValueError(
                    f"restart_after must be positive, "
                    f"got {self.restart_after}")


@dataclass(frozen=True)
class PartitionPlan:
    """Cut the (a, b) link at ``at``; heal at ``heal_at`` (optional)."""

    a: str
    b: str
    at: float
    heal_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.heal_at is not None and self.heal_at <= self.at:
            raise ValueError(
                f"heal_at {self.heal_at} must follow partition at "
                f"{self.at}")


@dataclass(frozen=True)
class MessageLossPlan:
    """Drop each matching message with ``probability``.

    Scope with ``msg_types`` (message-type values) and/or ``links``
    ((src, dst) pairs); empty means unrestricted.
    """

    probability: float
    msg_types: Tuple[str, ...] = ()
    links: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability out of range: {self.probability}")

    def matches(self, message: Message) -> bool:
        if self.msg_types and message.msg_type.value not in self.msg_types:
            return False
        if self.links and (message.src, message.dst) not in self.links:
            return False
        return True


@dataclass
class FaultPlan:
    """A complete failure schedule for one run."""

    crashes: List[CrashPlan] = field(default_factory=list)
    partitions: List[PartitionPlan] = field(default_factory=list)
    message_loss: Optional[MessageLossPlan] = None

    def crash(self, node: str, at: float,
              restart_at: Optional[float] = None) -> "FaultPlan":
        self.crashes.append(CrashPlan(node, at=at, restart_at=restart_at))
        return self

    def crash_at_site(self, site: CrashSite, when: str = "pre",
                      restart_after: Optional[float] = None) -> "FaultPlan":
        self.crashes.append(CrashPlan(site.node, site=site, when=when,
                                      restart_after=restart_after))
        return self

    def partition(self, a: str, b: str, at: float,
                  heal_at: Optional[float] = None) -> "FaultPlan":
        self.partitions.append(PartitionPlan(a, b, at, heal_at))
        return self

    def lose_messages(self, probability: float,
                      msg_types: Tuple[str, ...] = (),
                      links: Tuple[Tuple[str, str], ...] = ()
                      ) -> "FaultPlan":
        self.message_loss = MessageLossPlan(probability, msg_types, links)
        return self

    def validate(self) -> "FaultPlan":
        """Reject cross-plan conflicts a single plan's own
        ``__post_init__`` cannot see.

        Raises :class:`ConfigurationError` for negative injection
        times, overlapping time-addressed crash windows on one node,
        and duplicate site-addressed crashes — each of which would
        otherwise arm as undefined behavior (a node crashed while
        already down, or two interrupts racing for one protocol
        action).
        """
        for partition in self.partitions:
            if partition.at < 0:
                raise ConfigurationError(
                    f"partition {partition.a}-{partition.b} at negative "
                    f"time {partition.at}")
        windows: dict = {}
        seen_sites = set()
        for crash in self.crashes:
            if crash.site is not None:
                key = (crash.site.kind, crash.site.node, crash.site.seq,
                       crash.when)
                if key in seen_sites:
                    raise ConfigurationError(
                        f"duplicate site-addressed crash: "
                        f"{crash.site.describe()} [{crash.when}] appears "
                        f"twice")
                seen_sites.add(key)
                continue
            if crash.at < 0:
                raise ConfigurationError(
                    f"crash of {crash.node!r} at negative time "
                    f"{crash.at}")
            start = crash.at
            end = (crash.restart_at if crash.restart_at is not None
                   else float("inf"))
            for other_start, other_end in windows.get(crash.node, []):
                if start < other_end and other_start < end:
                    raise ConfigurationError(
                        f"overlapping crash plans for {crash.node!r}: "
                        f"[{start}, {end}) overlaps "
                        f"[{other_start}, {other_end}) — the node would "
                        f"be crashed while already down")
            windows.setdefault(crash.node, []).append((start, end))
        return self


class FaultInjector:
    """Arms a :class:`FaultPlan` on a cluster."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._rng = cluster.simulator.stream("faults")
        self.injected_drops = 0
        #: The drop filter that was installed before our first
        #: ``apply()`` with message loss; ``clear_message_loss()``
        #: restores it rather than wiping whatever the caller had.
        self._filter_underneath = None
        self._loss_installed = False

    def apply(self, plan: FaultPlan) -> None:
        plan.validate()
        for crash in plan.crashes:
            if crash.site is not None:
                self.cluster.crash_at_site(
                    crash.site, when=crash.when,
                    restart_after=crash.restart_after)
                continue
            self.cluster.crash_at(crash.node, crash.at)
            if crash.restart_at is not None:
                self.cluster.restart_at(crash.node, crash.restart_at)
        for partition in plan.partitions:
            self.cluster.partition_at(partition.a, partition.b,
                                      partition.at)
            if partition.heal_at is not None:
                self.cluster.heal_at(partition.a, partition.b,
                                     partition.heal_at)
        if plan.message_loss is not None:
            loss = plan.message_loss
            beneath = self.cluster.network.drop_filter
            if not self._loss_installed:
                self._filter_underneath = beneath
                self._loss_installed = True

            def drop(message: Message) -> bool:
                # Compose: whatever was installed first (a user filter,
                # or a previously applied plan) keeps dropping its
                # messages; this plan's loss applies on top.
                if beneath is not None and beneath(message):
                    return True
                if not loss.matches(message):
                    return False
                if self._rng.chance(loss.probability):
                    self.injected_drops += 1
                    return True
                return False

            self.cluster.network.set_drop_filter(drop)

    def clear_message_loss(self) -> None:
        """Remove every loss predicate this injector installed,
        restoring the filter that was present before the first one."""
        if self._loss_installed:
            self.cluster.network.set_drop_filter(self._filter_underneath)
        self._filter_underneath = None
        self._loss_installed = False
