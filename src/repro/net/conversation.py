"""LU 6.2 conversation-state tracking.

The paper's transport is half-duplex conversations: at any moment one
partner of a session is in SEND state and the other in RECEIVE, and
the right to send passes explicitly ("You be in send state", Figure 7).
The long-locks variation is legal *"only if the coordinator will be in
RECEIVE state at the end of the commit operation, waiting for the
subordinate to begin the next transaction"*.

This module is an observer: it reconstructs per-session conversation
state from the message stream, counts turnarounds (the direction
changes that cost a real half-duplex link a line turnaround), and
checks the long-locks precondition — after a long-locks commit, the
next message on the session must come from the subordinate side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.cluster import Cluster
from repro.net.message import Message, MessageType


def _session_key(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a <= b else (b, a)


@dataclass
class SessionState:
    """Reconstructed half-duplex state of one session."""

    partners: Tuple[str, str]
    #: Which partner currently holds the send right (last sender).
    sender: Optional[str] = None
    turnarounds: int = 0
    messages: int = 0
    #: Set when a long-locks commit ended with the coordinator obliged
    #: to be in RECEIVE state: the named partner must speak next.
    expected_next_sender: Optional[str] = None

    @property
    def receiver(self) -> Optional[str]:
        if self.sender is None:
            return None
        a, b = self.partners
        return b if self.sender == a else a


@dataclass
class ConversationViolation:
    session: Tuple[str, str]
    detail: str

    def __str__(self) -> str:
        return f"{self.session[0]}-{self.session[1]}: {self.detail}"


class ConversationTracker:
    """Observes a cluster's traffic and reconstructs session states."""

    def __init__(self) -> None:
        self.sessions: Dict[Tuple[str, str], SessionState] = {}
        self.violations: List[ConversationViolation] = []
        self._hook_list: Optional[list] = None

    def attach(self, cluster: Cluster) -> "ConversationTracker":
        self._hook_list = cluster.network.on_send
        self._hook_list.append(self.observe)
        return self

    def detach(self) -> None:
        """Stop observing; keeps the reconstructed state (idempotent).

        The tracker watches *sends*, not deliveries, so a chaos
        adversary that duplicates or reorders deliveries does not
        perturb the session-state reconstruction — only what the
        sender actually put on the wire counts.
        """
        hooks = getattr(self, "_hook_list", None)
        if hooks is not None:
            try:
                hooks.remove(self.observe)
            except ValueError:
                pass  # hook list was externally cleared
            self._hook_list = None

    def session(self, a: str, b: str) -> SessionState:
        key = _session_key(a, b)
        if key not in self.sessions:
            self.sessions[key] = SessionState(partners=key)
        return self.sessions[key]

    # ------------------------------------------------------------------
    def observe(self, message: Message) -> None:
        state = self.session(message.src, message.dst)
        state.messages += 1
        if state.expected_next_sender is not None:
            if message.src != state.expected_next_sender:
                self.violations.append(ConversationViolation(
                    session=state.partners,
                    detail=(f"long locks required {state.expected_next_sender} "
                            f"to begin the next transaction, but "
                            f"{message.src} sent "
                            f"{message.msg_type.value} first")))
            state.expected_next_sender = None
        if state.sender is not None and state.sender != message.src:
            state.turnarounds += 1
        state.sender = message.src

        # A long-locks commit obliges the coordinator to go to RECEIVE:
        # the subordinate speaks next (its first message carries the
        # deferred ack).
        if message.msg_type is MessageType.COMMIT and \
                message.flag("long_locks_pending"):
            state.expected_next_sender = message.dst

    # ------------------------------------------------------------------
    def total_turnarounds(self) -> int:
        return sum(s.turnarounds for s in self.sessions.values())

    def assert_clean(self) -> None:
        if self.violations:
            rendered = "\n".join(str(v) for v in self.violations)
            raise AssertionError(
                f"{len(self.violations)} conversation violations:\n"
                f"{rendered}")
