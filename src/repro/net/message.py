"""Typed messages exchanged by transaction managers.

Message types map one-to-one onto the arrows in the paper's Figures 1-8.
The flags carried on YES votes (read-only is its own vote type) encode
the optimizations: ``reliable`` (Vote Reliable), ``ok_to_leave_out``
(Leaving Inactive Partners Out), ``unsolicited`` (Unsolicited Vote) and
``last_agent_delegation`` (the coordinator's own YES vote handing the
commit decision to the last agent).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Optional


class Phase(Enum):
    """Which bucket a flow is counted under (the tables count COMMIT flows)."""

    DATA = "data"
    COMMIT = "commit"
    RECOVERY = "recovery"


class MessageType(Enum):
    """Every arrow that appears in the paper's sequence charts."""

    # Data phase — application traffic; may piggyback commit-protocol state.
    DATA = "data"

    # Voting phase.
    PREPARE = "prepare"
    VOTE_YES = "vote-yes"
    VOTE_NO = "vote-no"
    VOTE_READ_ONLY = "vote-read-only"

    # Decision phase.
    COMMIT = "commit"
    ABORT = "abort"
    ACK = "ack"

    # Recovery protocol.
    INQUIRE = "inquire"            # in-doubt subordinate asks its coordinator
    OUTCOME = "outcome"            # coordinator-driven resolution / reply
    RECOVERY_ACK = "recovery-ack"  # closes a coordinator-driven recovery

    @property
    def default_phase(self) -> Phase:
        if self is MessageType.DATA:
            return Phase.DATA
        if self in (MessageType.INQUIRE, MessageType.OUTCOME,
                    MessageType.RECOVERY_ACK):
            return Phase.RECOVERY
        return Phase.COMMIT


_MSG_SEQ = itertools.count(1)


@dataclass(slots=True)
class Message:
    """A single network flow.

    Attributes:
        msg_type: The protocol arrow this message represents.
        txn_id: Transaction the message belongs to.
        src / dst: Node names.
        phase: Counting bucket; defaults from the message type.
        flags: Optimization flags (``reliable``, ``ok_to_leave_out``,
            ``unsolicited``, ``last_agent_delegation``, ``read_only``,
            ``long_locks``, ``outcome_pending``, ``piggyback_ack`` ...).
        payload: Free-form extra data (heuristic reports, vote sets).
    """

    msg_type: MessageType
    txn_id: str
    src: str
    dst: str
    phase: Optional[Phase] = None
    flags: Dict[str, Any] = field(default_factory=dict)
    payload: Dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_MSG_SEQ))

    def __post_init__(self) -> None:
        if self.phase is None:
            self.phase = self.msg_type.default_phase

    def flag(self, name: str, default: Any = False) -> Any:
        return self.flags.get(name, default)

    def describe(self) -> str:
        """One-line rendering used in traces and sequence diagrams."""
        extras = ",".join(sorted(k for k, v in self.flags.items() if v))
        suffix = f" [{extras}]" if extras else ""
        return (f"{self.src} -> {self.dst}: {self.msg_type.value}"
                f"({self.txn_id}){suffix}")
