"""The simulated network connecting transaction-manager nodes.

Semantics chosen to match commercial WAN behaviour the paper assumes:

* point-to-point delivery after a per-link latency;
* a partitioned or crashed destination silently loses the message —
  senders recover via the commit protocol's own timeouts/retries, which
  is exactly the regime in which heuristic decisions arise;
* every successful send is counted as one flow (the unit of Tables 2-4).

By default links are FIFO and at-most-once.  Both guarantees are
*opt-out*: installing an :attr:`Network.adversary` (see
:mod:`repro.chaos`) lets a seeded chaos schedule duplicate, reorder,
delay or hold individual deliveries.  With no adversary installed
(``adversary is None``, the default) the send path is byte-for-byte
the historical one, so existing runs stay bit-identical.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Set, Tuple

from repro.metrics.collector import MetricsCollector
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import Message
from repro.sim.kernel import Simulator


class NetworkError(RuntimeError):
    """Raised for misconfiguration (unknown node, duplicate registration)."""


class Network:
    """Routes messages between registered nodes on the simulator clock."""

    def __init__(self, simulator: Simulator, metrics: MetricsCollector,
                 latency: Optional[LatencyModel] = None,
                 fifo: bool = True) -> None:
        self.simulator = simulator
        self.metrics = metrics
        self.latency_model = latency or ConstantLatency(1.0)
        #: LU 6.2 conversations are sessions: messages between a pair
        #: of nodes never overtake each other.  With ``fifo`` (the
        #: default) a jittered latency model cannot reorder a link.
        self.fifo = fifo
        self._handlers: Dict[str, Callable[[Message], None]] = {}
        self._alive: Dict[str, Callable[[], bool]] = {}
        self._partitioned: Set[Tuple[str, str]] = set()
        self._last_delivery: Dict[Tuple[str, str], float] = {}
        self._drop_filter: Optional[Callable[[Message], bool]] = None
        #: Delivery adversary (duck-typed: ``plan(message, delay)``
        #: returning ``None`` for the default single in-order delivery,
        #: or a list of ``(extra_delay, fifo)`` delivery plans).  None —
        #: the default — preserves FIFO at-most-once semantics exactly.
        self.adversary = None
        self._rng = simulator.stream("network")
        self.delivered = 0
        self.sent = 0
        #: Trace hooks invoked with each message actually transmitted.
        self.on_send: list = []
        #: Hooks invoked after a message's delivery has been scheduled
        #: (the message is irrevocably on the wire).  The torture
        #: harness crashes senders here — unlike ``on_send``, which
        #: fires before scheduling, an interrupt raised from this hook
        #: leaves the message in flight.
        self.on_transmit: list = []
        #: Trace hooks invoked with each message as it reaches a live
        #: destination (repro.obs closes message-wait spans here).
        self.on_deliver: list = []
        #: Hooks invoked after the destination handler processed a
        #: message (the crash window "received and fully acted on").
        self.on_handled: list = []

    # ------------------------------------------------------------------
    # Topology management
    # ------------------------------------------------------------------
    def register(self, name: str, handler: Callable[[Message], None],
                 alive: Optional[Callable[[], bool]] = None) -> None:
        """Attach a node.  ``alive`` lets crashed nodes drop inbound traffic."""
        if name in self._handlers:
            raise NetworkError(f"node {name!r} already registered")
        self._handlers[name] = handler
        self._alive[name] = alive or (lambda: True)

    def knows(self, name: str) -> bool:
        return name in self._handlers

    def partition(self, a: str, b: str) -> None:
        """Cut the link between two nodes (both directions)."""
        self._require(a)
        self._require(b)
        self._partitioned.add((a, b))
        self._partitioned.add((b, a))

    def heal(self, a: str, b: str) -> None:
        """Restore the link between two nodes.

        Like :meth:`partition`, unknown names raise
        :class:`NetworkError`: a typo'd node in a heal schedule would
        otherwise silently heal nothing and the run would hang until
        its timeout.
        """
        self._require(a)
        self._require(b)
        self._partitioned.discard((a, b))
        self._partitioned.discard((b, a))

    def heal_all(self) -> None:
        self._partitioned.clear()

    def is_partitioned(self, a: str, b: str) -> bool:
        return (a, b) in self._partitioned

    def set_drop_filter(self,
                        drop: Optional[Callable[[Message], bool]]) -> None:
        """Install a predicate that drops matching messages (fault injection)."""
        self._drop_filter = drop

    @property
    def drop_filter(self) -> Optional[Callable[[Message], bool]]:
        """The currently installed drop predicate (None when clear).

        Exposed so fault injectors can *compose* with an existing
        filter instead of clobbering it.
        """
        return self._drop_filter

    def _require(self, name: str) -> None:
        if name not in self._handlers:
            raise NetworkError(f"unknown node {name!r}")

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(self, message: Message) -> bool:
        """Send a message; returns False if it was dropped at send time.

        A send is counted as a flow whenever the sender actually puts it
        on the wire (the paper counts flows the sender pays for, whether
        or not a failure later loses them).  Messages dropped by the
        injected drop-filter *before* transmission are not counted.
        """
        self._require(message.src)
        self._require(message.dst)

        if self._drop_filter is not None and self._drop_filter(message):
            self.metrics.record_drop("injected", message.msg_type.value,
                                     message.src)
            return False

        self.sent += 1
        self.metrics.record_flow(message.phase.value, message.msg_type.value,
                                 message.src, message.txn_id)
        for hook in self.on_send:
            hook(message)

        if self.is_partitioned(message.src, message.dst):
            self.metrics.record_drop("partition", message.msg_type.value,
                                     message.src)
            return False

        delay = self.latency_model.latency(message.src, message.dst, self._rng)
        self._transmit(message, delay)
        if self.on_transmit:
            for hook in self.on_transmit:
                hook(message)
        return True

    def _transmit(self, message: Message, delay: float) -> None:
        """Put an accepted message on the wire.

        This is the transport seam: the base class schedules simulated
        delivery (FIFO-clamped per link, possibly rewritten by an
        adversary); ``repro.transport`` subclasses override it to write
        real TCP frames and feed arrivals back through ``_deliver``.
        Everything before this point (flow accounting, drop filters,
        partitions, hooks) is transport-independent.
        """
        plans = (self.adversary.plan(message, delay)
                 if self.adversary is not None else None)
        if plans is None:
            arrival = self.simulator.now + delay
            if self.fifo:
                link = (message.src, message.dst)
                arrival = max(arrival, self._last_delivery.get(link, 0.0))
                self._last_delivery[link] = arrival
            self.simulator.at(arrival, lambda: self._deliver(message),
                              name=f"deliver:{message.describe()}")
        else:
            # An adversary rewrote this delivery: each plan is one
            # scheduled arrival.  FIFO-respecting plans take (and
            # advance) the link clamp; non-FIFO plans bypass it, which
            # is how reordering and stale delivery violate the session
            # guarantee on purpose.
            link = (message.src, message.dst)
            for extra, in_order in plans:
                arrival = self.simulator.now + delay + extra
                if in_order and self.fifo:
                    arrival = max(arrival, self._last_delivery.get(link, 0.0))
                    self._last_delivery[link] = arrival
                self.simulator.at(arrival,
                                  lambda m=message: self._deliver(m),
                                  name=f"deliver:{message.describe()}")

    def _deliver(self, message: Message) -> None:
        # Re-check the partition at delivery time: a partition that forms
        # while the message is in flight loses it, matching real links.
        if self.is_partitioned(message.src, message.dst):
            self.metrics.record_drop("partition", message.msg_type.value,
                                     message.src)
            return
        if not self._alive[message.dst]():
            self.metrics.record_drop("crashed", message.msg_type.value,
                                     message.src)
            return
        self.delivered += 1
        for hook in self.on_deliver:
            hook(message)
        self._handlers[message.dst](message)
        if self.on_handled:
            for hook in self.on_handled:
                hook(message)
