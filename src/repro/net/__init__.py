"""Simulated network substrate.

The paper's LU 6.2 conversations are modelled as typed point-to-point
messages over links with configurable latency.  The network counts
every flow, tagged by protocol phase (data / commit / recovery), which
is the quantity Tables 2-4 of the paper report.
"""

from repro.net.message import Message, MessageType, Phase
from repro.net.latency import (
    ConstantLatency,
    LatencyModel,
    PerLinkLatency,
    SatelliteLink,
    UniformLatency,
)
from repro.net.network import Network, NetworkError

__all__ = [
    "ConstantLatency",
    "LatencyModel",
    "Message",
    "MessageType",
    "Network",
    "NetworkError",
    "PerLinkLatency",
    "Phase",
    "SatelliteLink",
    "UniformLatency",
]
