"""Link latency models.

The paper's last-agent discussion hinges on heterogeneous links ("it is
preferable to prepare the closest located partners ... and reduce the
communication with the faraway partner to one slow round-trip"), so the
network supports per-link latency, including a satellite-style link.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.sim.randomness import RandomStream


class LatencyModel:
    """Base class: maps a (src, dst) pair to a one-way delay."""

    def latency(self, src: str, dst: str, rng: RandomStream) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Every link has the same fixed one-way delay."""

    def __init__(self, delay: float = 1.0) -> None:
        if delay < 0:
            raise ValueError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def latency(self, src: str, dst: str, rng: RandomStream) -> float:
        return self.delay


class UniformLatency(LatencyModel):
    """Uniform jitter in [low, high] on every link."""

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"bad latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def latency(self, src: str, dst: str, rng: RandomStream) -> float:
        return rng.uniform(self.low, self.high)


class PerLinkLatency(LatencyModel):
    """Explicit per-link delays with a default for unlisted links.

    Links are symmetric unless both directions are set explicitly.
    """

    def __init__(self, default: float = 1.0) -> None:
        if default < 0:
            raise ValueError(f"latency must be non-negative, got {default}")
        self.default = default
        self._links: Dict[Tuple[str, str], float] = {}

    def set_link(self, a: str, b: str, delay: float,
                 symmetric: bool = True) -> "PerLinkLatency":
        if delay < 0:
            raise ValueError(f"latency must be non-negative, got {delay}")
        self._links[(a, b)] = delay
        if symmetric:
            self._links[(b, a)] = delay
        return self

    def link(self, a: str, b: str) -> Optional[float]:
        return self._links.get((a, b))

    def latency(self, src: str, dst: str, rng: RandomStream) -> float:
        return self._links.get((src, dst), self.default)


class SatelliteLink(PerLinkLatency):
    """A convenience topology: one slow (satellite) node, all else fast.

    Used by the last-agent benchmarks: the faraway partner should be the
    last agent so only one slow round trip remains.
    """

    def __init__(self, satellite_node: str, slow_delay: float = 50.0,
                 fast_delay: float = 1.0) -> None:
        super().__init__(default=fast_delay)
        self.satellite_node = satellite_node
        self.slow_delay = slow_delay

    def latency(self, src: str, dst: str, rng: RandomStream) -> float:
        if self.satellite_node in (src, dst):
            return self.slow_delay
        return super().latency(src, dst, rng)
