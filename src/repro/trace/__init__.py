"""Protocol tracing and sequence-diagram rendering.

Figures 1-8 of the paper are message/log sequence charts.  The tracer
records every network flow, log write and protocol note in virtual-time
order; the diagram renderer lays them out in the paper's style (one
column per node, ``*log`` marking forced writes).
"""

from repro.trace.recorder import TraceEvent, Tracer
from repro.trace.diagram import render_sequence_diagram

__all__ = ["TraceEvent", "Tracer", "render_sequence_diagram"]
