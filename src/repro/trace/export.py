"""Trace export/import: persist runs for offline diffing.

Serialises traced events to JSON-lines text and back, so two runs (two
seeds, two library versions, a run before and after a protocol change)
can be diffed structurally.  `diff_traces` reports the first point of
divergence — invaluable when a refactor moves one log write.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Iterable, List, Optional, Tuple

from repro.trace.recorder import TraceEvent

#: The dataclass's own field names, used to reject unknown keys with a
#: line-numbered ValueError instead of a bare TypeError from **kwargs.
_EVENT_FIELDS = frozenset(TraceEvent.__dataclass_fields__)


def export_events(events: Iterable[TraceEvent]) -> str:
    """Serialise events to JSON-lines (one event per line)."""
    return "\n".join(json.dumps(asdict(event), sort_keys=True)
                     for event in events)


def import_events(text: str) -> List[TraceEvent]:
    """Parse JSON-lines back into trace events."""
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise ValueError(f"line {lineno}: invalid JSON: {error}")
        if not isinstance(data, dict):
            raise ValueError(
                f"line {lineno}: expected a JSON object, "
                f"got {type(data).__name__}")
        unknown = set(data) - _EVENT_FIELDS
        if unknown:
            raise ValueError(
                f"line {lineno}: unknown trace event field(s): "
                f"{', '.join(sorted(unknown))}")
        try:
            events.append(TraceEvent(**data))
        except TypeError as error:
            # Missing required fields (time/kind/node/text).
            raise ValueError(f"line {lineno}: invalid trace event: {error}")
    return events


def _comparable(event: TraceEvent) -> Tuple:
    return (event.kind, event.node, event.dst, event.text, event.forced,
            event.txn_id)


def diff_traces(first: List[TraceEvent], second: List[TraceEvent],
                compare_times: bool = False) -> Optional[str]:
    """Return a description of the first divergence, or None if equal.

    By default only the event *structure* (kind, endpoints, content) is
    compared; with ``compare_times`` the virtual timestamps must match
    too (exact replay checking).
    """
    for index, (a, b) in enumerate(zip(first, second)):
        if _comparable(a) != _comparable(b):
            return (f"event {index} differs:\n  first:  {a.describe()}\n"
                    f"  second: {b.describe()}")
        if compare_times and a.time != b.time:
            return (f"event {index} shifted in time: "
                    f"{a.time} vs {b.time} ({a.describe()})")
    if len(first) != len(second):
        longer = first if len(first) > len(second) else second
        which = "first" if len(first) > len(second) else "second"
        extra = longer[min(len(first), len(second))]
        return (f"{which} trace has {abs(len(first) - len(second))} extra "
                f"events, starting with: {extra.describe()}")
    return None
