"""Sequence-diagram rendering in the style of the paper's figures.

One column per node, time flowing downward; ``*log X`` marks forced
log writes (the paper's convention), ``log X`` non-forced ones, and
arrows carry the message name.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.trace.recorder import TraceEvent

_COLUMN_WIDTH = 26


def render_sequence_diagram(events: Sequence[TraceEvent],
                            nodes: Sequence[str],
                            title: str = "",
                            include_notes: bool = True,
                            include_data: bool = False) -> str:
    """Render traced events as a multi-column sequence chart.

    Args:
        events: Trace events in time order (e.g. ``tracer.for_txn(id)``).
        nodes: Column order, coordinator first.
        title: Figure caption.
        include_notes: Show protocol notes ("commits locally", ...).
        include_data: Show data-phase flows (enrollment, work-done).
    """
    positions = {name: index for index, name in enumerate(nodes)}
    width = _COLUMN_WIDTH
    total = width * len(nodes)
    lines: List[str] = []
    if title:
        lines.append(title)
        lines.append("=" * min(len(title), total))
    header = "".join(name.center(width) for name in nodes)
    lines.append(header)
    lines.append("".join(("-" * (width - 2)).center(width)
                         for __ in nodes))

    for event in events:
        line = _render_event(event, positions, width, total,
                             include_notes, include_data)
        if line is not None:
            lines.append(line)
    return "\n".join(lines)


def _render_event(event: TraceEvent, positions, width: int, total: int,
                  include_notes: bool,
                  include_data: bool) -> Optional[str]:
    if event.kind == "flow":
        if event.text.startswith("data") and not include_data:
            return None
        if event.node not in positions or event.dst not in positions:
            return None
        return _arrow_line(event, positions, width)
    if event.node not in positions:
        # Detached-RM log owners render in their node's column.
        base = event.node.split("/")[0]
        if base not in positions:
            return None
        column = positions[base]
    else:
        column = positions[event.node]
    if event.kind == "log":
        star = "*" if event.forced else ""
        text = f"{star}log {event.text}"
    elif include_notes:
        text = f"({event.text})"
    else:
        return None
    pad = " " * (column * width)
    return (pad + text.center(width)).rstrip()


def _arrow_line(event: TraceEvent, positions, width: int) -> str:
    src = positions[event.node]
    dst = positions[event.dst]
    left, right = min(src, dst), max(src, dst)
    start = left * width + width // 2
    end = right * width + width // 2
    span = end - start
    label = f" {event.text} "
    if len(label) > span - 4:
        label = label[:max(span - 4, 1)]
    dashes = span - 2 - len(label)
    pre = dashes // 2
    post = dashes - pre
    if dst > src:
        body = "-" * pre + label + "-" * post + ">"
        line = " " * start + body
    else:
        body = "<" + "-" * pre + label + "-" * post
        line = " " * (start - 1) + body
    return line
