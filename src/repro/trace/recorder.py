"""Event recording for sequence diagrams and debugging."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.cluster import Cluster
from repro.log.records import LogRecord
from repro.metrics.columns import ColumnarTraceLog
from repro.net.message import Message


@dataclass(slots=True)
class TraceEvent:
    """One traced protocol event.

    kind is "flow" (network message), "log" (log record) or "note"
    (protocol state transition worth showing, e.g. "commits locally").
    """

    time: float
    kind: str
    node: str                      # acting node (sender for flows)
    text: str
    dst: Optional[str] = None      # flows only
    forced: Optional[bool] = None  # log events only
    txn_id: Optional[str] = None

    def describe(self) -> str:
        if self.kind == "flow":
            return f"[{self.time:8.2f}] {self.node} -> {self.dst}: {self.text}"
        if self.kind == "log":
            star = "*" if self.forced else ""
            return f"[{self.time:8.2f}] {self.node}: {star}log {self.text}"
        return f"[{self.time:8.2f}] {self.node}: {self.text}"


class Tracer:
    """Collects protocol events from a cluster.

    Attach before running the workload: hooks are installed on the
    network and on every node that exists at attach time.

    ``columnar=True`` stores events in a
    :class:`~repro.metrics.columns.ColumnarTraceLog` — interned
    strings and typed buffers instead of one dataclass per event — and
    materializes ``TraceEvent`` objects lazily on read.  Every query
    (``for_txn``, ``flows``, ``transcript``, iteration, indexing)
    behaves identically; only the storage cost changes.
    """

    def __init__(self, columnar: bool = False) -> None:
        if columnar:
            log = ColumnarTraceLog()
            self.events = log
            self._emit = log.append_fields
        else:
            self.events = []
            self._emit = self._emit_object
        self._cluster: Optional[Cluster] = None
        #: (hook list, installed callable) pairs, so detach() removes
        #: exactly what attach() added.
        self._installed: List[tuple] = []

    def attach(self, cluster: Cluster) -> "Tracer":
        """Install hooks on the cluster.

        Re-attaching to the same cluster is a no-op (hooks are never
        installed twice); attaching to a different cluster while still
        attached is an error — call :meth:`detach` first.
        """
        if self._cluster is cluster:
            return self
        if self._cluster is not None:
            raise RuntimeError("Tracer is already attached to a different "
                               "cluster; detach() first")
        self._cluster = cluster

        def install(hook_list: list, hook) -> None:
            hook_list.append(hook)
            self._installed.append((hook_list, hook))

        install(cluster.network.on_send, self._on_flow)
        for node in cluster.nodes.values():
            install(node.log.on_write,
                    lambda record, node=node: self._on_log(record))
            install(node.on_note, self._on_note)
            for rm in node.detached_rms.values():
                if rm.log is not node.log:
                    install(rm.log.on_write,
                            lambda record: self._on_log(record))
        return self

    def detach(self) -> None:
        """Remove every installed hook; keeps collected events (idempotent)."""
        for hook_list, hook in self._installed:
            try:
                hook_list.remove(hook)
            except ValueError:
                pass  # hook list was externally cleared; nothing to do
        self._installed = []
        self._cluster = None

    @property
    def attached(self) -> bool:
        return self._cluster is not None

    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self._cluster.simulator.now if self._cluster else 0.0

    def _emit_object(self, time: float, kind: str, node: str, text: str,
                     dst: Optional[str], forced: Optional[bool],
                     txn_id: Optional[str]) -> None:
        self.events.append(TraceEvent(
            time=time, kind=kind, node=node, text=text, dst=dst,
            forced=forced, txn_id=txn_id))

    def _on_flow(self, message: Message) -> None:
        flags = ",".join(sorted(k for k, v in message.flags.items() if v))
        text = message.msg_type.value + (f" [{flags}]" if flags else "")
        self._emit(self._now(), "flow", message.src, text,
                   message.dst, None, message.txn_id)

    def _on_log(self, record: LogRecord) -> None:
        self._emit(self._now(), "log", record.node,
                   record.record_type.value, None, record.forced,
                   record.txn_id)

    def _on_note(self, node: str, txn_id: str, text: str) -> None:
        self._emit(self._now(), "note", node, text, None, None, txn_id)

    # ------------------------------------------------------------------
    def for_txn(self, txn_id: str) -> List[TraceEvent]:
        return [e for e in self.events if e.txn_id == txn_id]

    def flows(self, txn_id: Optional[str] = None) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "flow"
                and (txn_id is None or e.txn_id == txn_id)]

    def transcript(self, txn_id: Optional[str] = None) -> str:
        events = self.for_txn(txn_id) if txn_id else self.events
        return "\n".join(e.describe() for e in events)
