"""The paper's Figures 1-8 as executable scenarios.

Each function runs the figure's protocol configuration on the
simulator, captures the trace, and returns the rendered sequence chart
plus the raw tracer (the tests assert on event ordering; the benchmark
harness prints the charts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_NOTHING,
)
from repro.core.spec import ParticipantSpec, TransactionSpec, chain_tree, flat_tree
from repro.lrm.operations import read_op, write_op
from repro.trace.diagram import render_sequence_diagram
from repro.trace.recorder import Tracer


@dataclass
class FigureResult:
    number: int
    title: str
    diagram: str
    tracer: Tracer
    cluster: Cluster
    txn_ids: List[str]
    commentary: str = ""


def _run(cluster: Cluster, spec: TransactionSpec, tracer: Tracer):
    handle = cluster.run_transaction(spec)
    return handle


def figure1() -> FigureResult:
    """Simple two-phase commit processing (coordinator + subordinate)."""
    cluster = Cluster(BASIC_2PC, nodes=["coordinator", "subordinate"])
    tracer = Tracer().attach(cluster)
    spec = flat_tree("coordinator", ["subordinate"])
    spec.participant("coordinator").ops.append(write_op("a", 1))
    spec.participant("subordinate").ops.append(write_op("b", 2))
    _run(cluster, spec, tracer)
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), ["coordinator", "subordinate"],
        title="Figure 1. Simple Two-Phase Commit Processing",
        include_notes=False)
    return FigureResult(1, "Simple Two-Phase Commit Processing", diagram,
                        tracer, cluster, [spec.txn_id])


def figure2() -> FigureResult:
    """Basic 2PC with a cascaded (intermediate) coordinator."""
    nodes = ["coordinator", "cascaded", "subordinate"]
    cluster = Cluster(BASIC_2PC, nodes=nodes)
    tracer = Tracer().attach(cluster)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    _run(cluster, spec, tracer)
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), nodes,
        title="Figure 2. Two-Phase Commit with Cascaded Coordinator",
        include_notes=False)
    return FigureResult(2, "2PC with Cascaded Coordinator", diagram,
                        tracer, cluster, [spec.txn_id])


def figure3() -> FigureResult:
    """Presumed Nothing with an intermediate coordinator: note the
    commit-pending force before any prepare."""
    nodes = ["coordinator", "cascaded", "subordinate"]
    cluster = Cluster(PRESUMED_NOTHING, nodes=nodes)
    tracer = Tracer().attach(cluster)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    _run(cluster, spec, tracer)
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), nodes,
        title="Figure 3. Presumed Nothing Commit Processing with "
              "Intermediate Coordinator",
        include_notes=False)
    return FigureResult(3, "PN with Intermediate Coordinator", diagram,
                        tracer, cluster, [spec.txn_id])


def figure4() -> FigureResult:
    """Partial read-only commit: one subordinate votes read-only and is
    left out of phase two; the other commits normally."""
    nodes = ["coordinator", "updater", "reader"]
    cluster = Cluster(PRESUMED_ABORT, nodes=nodes)
    tracer = Tracer().attach(cluster)
    spec = flat_tree("coordinator", ["updater", "reader"])
    spec.participant("updater").ops.append(write_op("x", 1))
    spec.participant("reader").ops.append(read_op("x"))
    _run(cluster, spec, tracer)
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), nodes,
        title="Figure 4. Partial Read-Only Commit Processing",
        include_notes=False)
    return FigureResult(4, "Partial Read-Only Commit", diagram, tracer,
                        cluster, [spec.txn_id])


def figure5() -> FigureResult:
    """The leave-out hazard: Pa is (incorrectly) left out by both Pb
    and Pc, partitioning one logical transaction into two disjoint
    commit trees that can reach different outcomes.
    """
    nodes = ["Pd", "Pb", "Pa", "Pc", "Pe"]
    config = PRESUMED_ABORT.with_options(leave_out=True)
    cluster = Cluster(config, nodes=nodes)
    tracer = Tracer().attach(cluster)

    # Establish sessions in which Pa promises OK-TO-LEAVE-OUT to both
    # Pb and Pc — the application error: Pa is not a pure server.
    warm1 = TransactionSpec(participants=[
        ParticipantSpec(node="Pb", ops=[write_op("wb", 0)]),
        ParticipantSpec(node="Pa", parent="Pb", ops=[write_op("shared", 0)],
                        ok_to_leave_out=True)])
    cluster.run_transaction(warm1)
    warm2 = TransactionSpec(participants=[
        ParticipantSpec(node="Pc", ops=[write_op("wc", 0)]),
        ParticipantSpec(node="Pa", parent="Pc", ops=[write_op("shared", 0)],
                        ok_to_leave_out=True)])
    cluster.run_transaction(warm2)

    # One logical unit of work now runs as two disjoint subtrees, both
    # leaving Pa out.  Pd's side commits; Pe's side aborts.
    left = TransactionSpec(participants=[
        ParticipantSpec(node="Pd", ops=[write_op("d", 1)]),
        ParticipantSpec(node="Pb", parent="Pd", ops=[write_op("b", 1)])])
    right = TransactionSpec(participants=[
        ParticipantSpec(node="Pe", ops=[write_op("e", 1)]),
        ParticipantSpec(node="Pc", parent="Pe", ops=[write_op("c", 1)],
                        veto=True)])
    h_left = cluster.run_transaction(left)
    h_right = cluster.run_transaction(right)
    commentary = (
        f"Left subtree (Pd,Pb) outcome: {h_left.outcome}; right subtree "
        f"(Pe,Pc) outcome: {h_right.outcome}. One logical transaction "
        f"reached two different outcomes because Pa was left out by both "
        f"sides — exactly the damage Figure 5 warns about.")
    diagram = render_sequence_diagram(
        tracer.flows(left.txn_id) + tracer.flows(right.txn_id), nodes,
        title="Figure 5. Transaction Tree Partitioned Because of "
              "Left Out Partners", include_notes=False)
    return FigureResult(5, "Partitioned Tree via Leave-Out", diagram,
                        tracer, cluster, [left.txn_id, right.txn_id],
                        commentary=commentary)


def figure6() -> FigureResult:
    """Last-agent commit processing."""
    nodes = ["coordinator", "last-agent"]
    cluster = Cluster(PRESUMED_ABORT.with_options(last_agent=True),
                      nodes=nodes)
    tracer = Tracer().attach(cluster)
    spec = flat_tree("coordinator", ["last-agent"])
    spec.participant("coordinator").ops.append(write_op("a", 1))
    spec.participant("last-agent").ops.append(write_op("b", 2))
    spec.participant("last-agent").last_agent = True
    _run(cluster, spec, tracer)
    cluster.finalize_implied_acks()
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), nodes,
        title="Figure 6. Last-Agent Commit Processing",
        include_notes=False)
    return FigureResult(6, "Last-Agent Commit Processing", diagram, tracer,
                        cluster, [spec.txn_id])


def figure7() -> FigureResult:
    """Long locks: the subordinate buffers its ack and the next
    transaction's first message carries it."""
    nodes = ["coordinator", "subordinate"]
    cluster = Cluster(PRESUMED_ABORT.with_options(long_locks=True),
                      nodes=nodes)
    tracer = Tracer().attach(cluster)
    first = TransactionSpec(participants=[
        ParticipantSpec(node="coordinator", ops=[write_op("a", 1)]),
        ParticipantSpec(node="subordinate", parent="coordinator",
                        ops=[write_op("b", 1)])], long_locks=True)
    cluster.run_transaction(first)
    # The subordinate begins the next transaction; its first message
    # carries the buffered commit acknowledgment.
    second = TransactionSpec(participants=[
        ParticipantSpec(node="subordinate", ops=[write_op("c", 2)]),
        ParticipantSpec(node="coordinator", parent="subordinate",
                        ops=[write_op("d", 2)])])
    cluster.run_transaction(second)
    diagram = render_sequence_diagram(
        tracer.for_txn(first.txn_id), nodes,
        title="Figure 7. Example of Long Locks committing one transaction",
        include_notes=True, include_data=True)
    return FigureResult(7, "Long Locks", diagram, tracer, cluster,
                        [first.txn_id, second.txn_id])


def figure8() -> FigureResult:
    """Vote reliable: all resources reliable, early acknowledgment and
    waived subordinate acks."""
    nodes = ["coordinator", "cascaded", "subordinate"]
    cluster = Cluster(PRESUMED_ABORT.with_options(vote_reliable=True),
                      nodes=nodes, reliable_nodes=nodes)
    tracer = Tracer().attach(cluster)
    spec = chain_tree(nodes)
    for participant in spec.participants:
        participant.ops.append(write_op(f"k-{participant.node}", 1))
    _run(cluster, spec, tracer)
    diagram = render_sequence_diagram(
        tracer.for_txn(spec.txn_id), nodes,
        title="Figure 8. Two-Phase Commit Processing, All Resources "
              "Voted Reliable", include_notes=False)
    return FigureResult(8, "All Resources Voted Reliable", diagram, tracer,
                        cluster, [spec.txn_id])


ALL_FIGURES: Dict[int, Callable[[], FigureResult]] = {
    1: figure1, 2: figure2, 3: figure3, 4: figure4,
    5: figure5, 6: figure6, 7: figure7, 8: figure8,
}
