"""repro — a reproduction of *Two-Phase Commit Optimizations and
Tradeoffs in the Commercial Environment* (Samaras, Britton, Citron,
Mohan — ICDE 1993).

The package provides a deterministic discrete-event simulator of a
distributed transaction processing system (transaction managers,
resource managers with two-phase locking, write-ahead logs with
forced/non-forced semantics, a latency-modelled network, crashes,
partitions and heuristic decisions) together with an analytic cost
model, and uses the two to regenerate every table and figure of the
paper's evaluation.

Quickstart::

    from repro import Cluster, PRESUMED_ABORT, flat_tree, write_op

    cluster = Cluster(PRESUMED_ABORT, nodes=["coord", "sub1", "sub2"])
    spec = flat_tree("coord", ["sub1", "sub2"])
    spec.participant("sub1").ops.append(write_op("balance", 100))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    print(cluster.metrics.cost_summary(spec.txn_id))
"""

from repro.api import Application, TransactionBuilder
from repro.core.cluster import Cluster
from repro.ops import OperatorConsole
from repro.verify import ProtocolChecker
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
    HeuristicChoice,
    Presumption,
    ProtocolConfig,
)
from repro.core.handle import HeuristicReport, TransactionHandle
from repro.core.node import TMNode
from repro.core.spec import (
    ParticipantSpec,
    TransactionSpec,
    chain_tree,
    flat_tree,
)
from repro.core.states import Role, TxnState
from repro.errors import (
    ConfigurationError,
    DeadlockError,
    ProtocolError,
    ReproError,
    TransactionAborted,
)
from repro.log.group_commit import GroupCommitPolicy
from repro.lrm.operations import Operation, read_op, write_op
from repro.metrics.collector import CostSummary, MetricsCollector
from repro.net.latency import (
    ConstantLatency,
    PerLinkLatency,
    SatelliteLink,
    UniformLatency,
)

__version__ = "1.0.0"

__all__ = [
    "Application",
    "BASIC_2PC",
    "Cluster",
    "TransactionBuilder",
    "ConfigurationError",
    "ConstantLatency",
    "CostSummary",
    "DeadlockError",
    "GroupCommitPolicy",
    "HeuristicChoice",
    "HeuristicReport",
    "MetricsCollector",
    "Operation",
    "OperatorConsole",
    "ParticipantSpec",
    "ProtocolChecker",
    "PerLinkLatency",
    "PRESUMED_ABORT",
    "PRESUMED_COMMIT",
    "PRESUMED_NOTHING",
    "Presumption",
    "ProtocolConfig",
    "ProtocolError",
    "ReproError",
    "Role",
    "SatelliteLink",
    "TMNode",
    "TransactionAborted",
    "TransactionHandle",
    "TransactionSpec",
    "TxnState",
    "UniformLatency",
    "chain_tree",
    "flat_tree",
    "read_op",
    "write_op",
    "__version__",
]
