"""Process-pool execution engine for independent simulation runs.

The engine's unit of work is a :class:`RunSpec`: a module-level
callable plus arguments, picklable by reference.  ``run_specs`` either
executes them serially in-process (``workers`` <= 1) or shards them
across a ``ProcessPoolExecutor`` — in both cases returning results in
spec order, so callers can rely on ``results[i]`` belonging to
``specs[i]`` regardless of worker scheduling.

Determinism contract for run functions:

* build every simulator/cluster/spec they need from their arguments
  (never close over live state — it would not pickle anyway);
* return values must not embed process-global counters (transaction
  or message sequence numbers), only measurements derived from the
  run itself.

Every sweep in :mod:`repro.analysis.sweeps` and
:mod:`repro.parallel.sweeps` follows this contract, which is what the
``workers=1`` vs ``workers=N`` bit-identity tests assert.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

#: Environment knob: default worker count for sweeps that do not pass
#: one explicitly.  Unset or "1" means serial.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


@dataclass(frozen=True)
class RunSpec:
    """One independent simulation run.

    Attributes:
        fn: Module-level callable executing the run (picklable by
            reference; lambdas and closures will not survive the trip
            to a worker process).
        args: Positional arguments.
        kwargs: Keyword arguments.
        label: Human-readable identifier used in error reports.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    label: str = ""

    def describe(self) -> str:
        if self.label:
            return self.label
        name = getattr(self.fn, "__name__", repr(self.fn))
        parts = [repr(a) for a in self.args]
        parts += [f"{k}={v!r}" for k, v in self.kwargs.items()]
        return f"{name}({', '.join(parts)})"


class SweepExecutionError(RuntimeError):
    """A run-spec failed; identifies which one so sweeps are debuggable."""

    def __init__(self, spec: RunSpec, index: int,
                 cause: BaseException) -> None:
        super().__init__(
            f"sweep run #{index} ({spec.describe()}) failed: "
            f"{type(cause).__name__}: {cause}")
        self.spec = spec
        self.index = index


def default_workers() -> int:
    """Worker count from the environment (``REPRO_SWEEP_WORKERS``)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        return max(1, int(raw))
    except ValueError:
        return 1


def _execute(spec: RunSpec) -> Any:
    """Run one spec (this is the function shipped to worker processes)."""
    return spec.fn(*spec.args, **spec.kwargs)


def _pool_context():
    """Prefer fork: specs pickle by reference, and forked children
    inherit already-imported benchmark/test modules."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def run_specs(specs: Sequence[RunSpec],
              workers: Optional[int] = None) -> List[Any]:
    """Execute every spec and return results in spec order.

    ``workers=None`` resolves from ``REPRO_SWEEP_WORKERS`` (default 1).
    ``workers<=1`` runs serially in-process; the parallel path merges
    by spec index, so the two are bit-identical for well-behaved run
    functions.  A failing run raises :class:`SweepExecutionError`
    naming the spec.
    """
    if workers is None:
        workers = default_workers()
    specs = list(specs)
    if workers <= 1 or len(specs) <= 1:
        results = []
        for index, spec in enumerate(specs):
            try:
                results.append(_execute(spec))
            except Exception as exc:
                raise SweepExecutionError(spec, index, exc) from exc
        return results

    with ProcessPoolExecutor(max_workers=min(workers, len(specs)),
                             mp_context=_pool_context()) as executor:
        futures = [executor.submit(_execute, spec) for spec in specs]
        results = []
        for index, (spec, future) in enumerate(zip(specs, futures)):
            try:
                results.append(future.result())
            except Exception as exc:
                raise SweepExecutionError(spec, index, exc) from exc
        return results


def sweep(fn: Callable[..., Any], grid: Sequence[Mapping[str, Any]],
          workers: Optional[int] = None,
          label: Optional[Callable[[Mapping[str, Any]], str]] = None
          ) -> List[Any]:
    """Run ``fn(**params)`` for every params mapping in ``grid``.

    Results come back in grid order.  ``label`` optionally renders a
    params mapping into a human-readable run label for error reports.
    """
    specs = [RunSpec(fn=fn, kwargs=dict(params),
                     label=label(params) if label else "")
             for params in grid]
    return run_specs(specs, workers=workers)
