"""Machine-saturation benchmark: committed transactions/sec/core.

The kernel microbenchmarks (``benchmarks/bench_kernel.py``) measure
the scheduler in isolation; this module measures the whole stack the
way a capacity planner would — full Presumed Abort commit protocol,
locking, log forces, metrics — with one worker process pinned per
core, and reports the figure that actually matters for sizing: how
many *committed* transactions per second one core sustains.

Each worker runs an independent seeded cluster (fork-isolated via
:func:`repro.parallel.pool.run_specs`, the same engine the sweep
studies use), so the cells share nothing and the scaling loss visible
in ``txns_per_sec_per_core`` vs a single worker is scheduler/cache
contention, not lock contention in the harness.

The committed trajectory lives in ``BENCH_scale.json`` (written by
``python benchmarks/run_baseline.py --update``, gated by
``--scale``); ``repro-2pc saturate`` runs it ad hoc.  Cells run under
:func:`repro.sim.gcpolicy.deferred_gc` and stamp the policy into the
payload so trajectory points are comparable.
"""

from __future__ import annotations

import os
from time import perf_counter
from typing import Optional

from repro.core.cluster import Cluster
from repro.core.config import PRESUMED_ABORT
from repro.parallel.pool import RunSpec, run_specs
from repro.sim.gcpolicy import GC_POLICY, deferred_gc
from repro.sim.randomness import RandomStream
from repro.workload.generator import WorkloadGenerator, WorkloadParams

#: Transactions per worker: full for the committed baseline, smoke
#: for CI gates.
FULL_TXNS_PER_WORKER = 2_000
SMOKE_TXNS_PER_WORKER = 400


def saturation_cell(seed: int, txns: int, nodes: int = 3) -> dict:
    """One worker's run: ``txns`` transactions on a private cluster.

    Returns committed count, wall seconds and simulator events so the
    aggregate can report both protocol- and kernel-level throughput.
    """
    node_names = [f"n{index}" for index in range(nodes)]
    with deferred_gc():
        cluster = Cluster(PRESUMED_ABORT, nodes=node_names, seed=seed)
        generator = WorkloadGenerator(
            node_names,
            WorkloadParams(read_only_fraction=0.25, key_space=8),
            RandomStream(seed))
        began = perf_counter()
        committed = 0
        for spec in generator.stream(txns):
            if cluster.run_transaction(spec).committed:
                committed += 1
        elapsed = perf_counter() - began
    return {
        "seed": seed,
        "txns": txns,
        "committed": committed,
        "seconds": round(elapsed, 6),
        "events": cluster.simulator.events_processed,
    }


def run_saturation(workers: Optional[int] = None,
                   txns_per_worker: int = FULL_TXNS_PER_WORKER,
                   nodes: int = 3) -> dict:
    """Drive every core and return the saturation metrics mapping.

    ``workers`` defaults to the machine's core count.  The headline
    figure is ``txns_per_sec_per_core``: aggregate committed
    throughput divided by the cores actually exercised.
    """
    cores = os.cpu_count() or 1
    if workers is None:
        workers = cores
    specs = [RunSpec(label=f"saturate-{index}", fn=saturation_cell,
                     kwargs={"seed": 1_000 + index,
                             "txns": txns_per_worker, "nodes": nodes})
             for index in range(workers)]
    began = perf_counter()
    cells = run_specs(specs, workers=workers)
    wall = perf_counter() - began
    committed = sum(cell["committed"] for cell in cells)
    effective_cores = min(workers, cores)
    return {
        "workers": workers,
        "cores": cores,
        "nodes": nodes,
        "txns_per_worker": txns_per_worker,
        "txns": sum(cell["txns"] for cell in cells),
        "committed": committed,
        "events": sum(cell["events"] for cell in cells),
        "wall_seconds": round(wall, 6),
        "txns_per_sec": round(committed / wall, 3),
        "txns_per_sec_per_core": round(
            committed / wall / effective_cores, 3),
        "gc": GC_POLICY,
        "cells": cells,
    }


def describe(result: dict) -> str:
    """Human-readable summary of a :func:`run_saturation` result."""
    lines = [
        f"saturation: {result['workers']} worker(s) on "
        f"{result['cores']} core(s), "
        f"{result['txns_per_worker']} txns/worker, "
        f"{result['nodes']}-node Presumed Abort, gc={result['gc']}",
        f"  committed {result['committed']:,}/{result['txns']:,} txns "
        f"({result['events']:,} simulator events) "
        f"in {result['wall_seconds']:.2f}s",
        f"  {result['txns_per_sec']:,.0f} committed txns/s aggregate, "
        f"{result['txns_per_sec_per_core']:,.0f} txns/s/core",
    ]
    for cell in result["cells"]:
        lines.append(
            f"    seed {cell['seed']}: {cell['committed']}/"
            f"{cell['txns']} committed in {cell['seconds']:.2f}s")
    return "\n".join(lines)
