"""Named sweep studies for the ``repro-2pc sweep`` CLI subcommand.

Each study is a registry entry mapping a name to a function that
builds a grid of independent simulation cells, shards them through
:func:`repro.parallel.pool.run_specs`, and returns row dictionaries
ready for :func:`repro.analysis.render.render_table` or CSV export.

The presumption study here is the library-level counterpart of
``benchmarks/bench_presumptions.py``: it sweeps the abort rate for
every presumption and locates the PA/PC forced-write crossover, with
each ``(presumption, abort_rate)`` cell running in its own worker.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.core.cluster import Cluster
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import write_op
from repro.parallel.pool import sweep
from repro.sim.randomness import RandomStream

Row = Dict[str, object]


def presumption_cell(presumption: str, abort_rate: float,
                     n_txns: int = 40, seed: int = 17,
                     audit: bool = False) -> Row:
    """Mean per-transaction cost of one presumption at one abort rate.

    Three-node transactions (at n=2 PC's collecting force exactly
    cancels its saved subordinate commit force, so the PA/PC crossover
    only appears for n >= 3); the middle subordinate vetoes with
    probability ``abort_rate`` on a seeded stream.

    With ``audit=True`` a cost ledger and conformance auditor ride the
    cell: committed transactions must match the commit-case formula
    exactly, aborted ones classify as expected-under-faults, and the
    row gains ``audit_ok`` / ``audit_expected`` / ``audit_anomalies``
    columns.  Explicit transaction ids keep the cell bit-identical
    between serial and worker-process execution.
    """
    from repro.analysis.sweeps import PRESUMPTIONS  # lazy: import cycle

    config = PRESUMPTIONS[presumption]
    cluster = Cluster(config, nodes=["c", "s1", "s2"], seed=seed)
    rng = RandomStream(seed)
    auditor = None
    if audit:
        from repro.obs.audit import ConformanceAuditor, expected_costs
        from repro.obs.ledger import CostLedger
        ledger = CostLedger().attach(cluster)
        auditor = ConformanceAuditor(
            predictor=expected_costs(presumption, "baseline", 3))
        auditor.attach(cluster, ledger)
    flows = writes = forced = 0
    committed = 0
    for i in range(n_txns):
        spec = TransactionSpec(participants=[
            ParticipantSpec(node="c", ops=[write_op(f"x{i}", i)]),
            ParticipantSpec(node="s1", parent="c",
                            ops=[write_op(f"y{i}", i)],
                            veto=rng.chance(abort_rate)),
            ParticipantSpec(node="s2", parent="c",
                            ops=[write_op(f"z{i}", i)])],
            txn_id=f"sweep-{presumption}-{abort_rate}-{i}")
        handle = cluster.run_transaction(spec)
        committed += bool(handle.committed)
        flows += cluster.metrics.commit_flows(txn=spec.txn_id)
        writes += cluster.metrics.total_log_writes(txn=spec.txn_id)
        forced += cluster.metrics.forced_log_writes(txn=spec.txn_id)
    row = {
        "presumption": presumption,
        "abort_rate": abort_rate,
        "committed": committed,
        "flows": round(flows / n_txns, 3),
        "writes": round(writes / n_txns, 3),
        "forced": round(forced / n_txns, 3),
    }
    if auditor is not None:
        auditor.finish()
        counts = auditor.counts()
        row["audit_ok"] = counts["conforms"]
        row["audit_expected"] = counts["expected-under-faults"]
        row["audit_anomalies"] = counts["anomaly"]
    return row


def presumption_study(workers: Optional[int] = None,
                      abort_rates: Sequence[float] = (0.0, 0.1, 0.3,
                                                      0.5, 0.9),
                      presumptions: Sequence[str] = ("basic", "pa", "pn",
                                                     "pc"),
                      n_txns: int = 40, seed: int = 17,
                      audit: bool = False) -> List[Row]:
    """Per-transaction cost of every presumption across abort rates."""
    grid = [{"presumption": name, "abort_rate": rate,
             "n_txns": n_txns, "seed": seed, "audit": audit}
            for rate in abort_rates for name in presumptions]
    return sweep(presumption_cell, grid, workers=workers,
                 label=lambda p: f"presumptions {p['presumption']} "
                                 f"abort={p['abort_rate']}")


def audit_matrix_study(workers: Optional[int] = None,
                       audit: bool = True) -> List[Row]:
    """One row per (protocol, variant) audit cell.

    ``audit`` is accepted for signature uniformity with the other
    studies (this study always audits — that is its point).
    """
    del audit
    from repro.obs.audit import run_audit_matrix

    report = run_audit_matrix(workers=workers)
    rows: List[Row] = []
    for cell in report["cells"]:
        expected = cell["expected"]
        rows.append({
            "protocol": cell["protocol"],
            "variant": cell["variant"],
            "txns": cell["txns"],
            "expected": (f"{expected['flows']}f/"
                         f"{expected['log_writes']}w/"
                         f"{expected['forced_writes']}F"),
            "conforms": cell["conforms"],
            "expected_under_faults": cell["expected_under_faults"],
            "anomalies": cell["anomalies"],
        })
    return rows


def tree_size_study(workers: Optional[int] = None) -> List[Row]:
    from repro.analysis.sweeps import sweep_tree_size  # lazy: import cycle
    return sweep_tree_size([2, 4, 8, 16], workers=workers)


def tree_depth_study(workers: Optional[int] = None) -> List[Row]:
    from repro.analysis.sweeps import sweep_tree_depth  # lazy: import cycle
    return sweep_tree_depth(8, [1, 2, 3, 7], workers=workers)


def read_only_study(workers: Optional[int] = None) -> List[Row]:
    from repro.analysis.sweeps import sweep_read_only_fraction  # lazy
    return sweep_read_only_fraction(9, [0, 2, 4, 6, 8], workers=workers)


def link_speed_study(workers: Optional[int] = None) -> List[Row]:
    from repro.analysis.sweeps import sweep_link_speed  # lazy: import cycle
    return sweep_link_speed([0.5, 1.0, 2.0, 4.0, 8.0], workers=workers)


#: Registry behind ``repro-2pc sweep --study NAME``.
STUDIES: Dict[str, Callable[..., List[Row]]] = {
    "presumptions": presumption_study,
    "tree-size": tree_size_study,
    "tree-depth": tree_depth_study,
    "read-only": read_only_study,
    "link-speed": link_speed_study,
    "audit-matrix": audit_matrix_study,
}

#: Studies whose cells can carry a cost ledger + conformance auditor
#: (``repro-2pc sweep --audit``).
AUDITABLE_STUDIES = frozenset({"presumptions", "audit-matrix"})


def run_study(name: str, workers: Optional[int] = None,
              profiler=None, audit: bool = False) -> List[Row]:
    """Run a named study; raises KeyError for unknown names.

    ``profiler`` (a :class:`repro.obs.KernelProfiler`) is activated for
    the duration of the study so every simulator the cells build
    profiles into it.  The profiler accumulates in-process, so it
    forces the study serial — worker processes would profile into
    their own copies and throw them away.

    ``audit`` attaches a cost ledger and conformance auditor inside
    each cell (auditable studies only; raises ValueError otherwise).
    """
    study = STUDIES[name]
    if audit and name not in AUDITABLE_STUDIES:
        raise ValueError(
            f"study {name!r} does not support --audit; auditable: "
            f"{', '.join(sorted(AUDITABLE_STUDIES))}")
    kwargs = {"audit": True} if audit else {}
    if profiler is None:
        return study(workers=workers, **kwargs)
    with profiler:
        return study(workers=1, **kwargs)
