"""Parallel execution of independent simulation runs.

Benchmark sweeps and parameter studies run many *independent*
simulations — one per ``(config, seed, workload)`` point.  This package
shards those runs across ``concurrent.futures.ProcessPoolExecutor``
workers while keeping the results deterministic:

* run-specs are plain picklable descriptions (a module-level function
  plus arguments), never live simulator state;
* results are merged by spec index, never by completion order, so the
  output list is bit-identical at ``workers=1`` and ``workers=N``;
* ``workers=1`` (the default) runs serially in-process — no pool, no
  pickling — which is both the deterministic reference and the fast
  path for small sweeps.

See :mod:`repro.parallel.pool` for the execution engine and
:mod:`repro.parallel.sweeps` for the named studies behind the
``repro-2pc sweep`` CLI subcommand.
"""

from repro.parallel.pool import (
    RunSpec,
    SweepExecutionError,
    default_workers,
    run_specs,
    sweep,
)
from repro.parallel.saturate import (
    FULL_TXNS_PER_WORKER,
    SMOKE_TXNS_PER_WORKER,
    run_saturation,
    saturation_cell,
)
from repro.parallel.sweeps import STUDIES, run_study

__all__ = [
    "FULL_TXNS_PER_WORKER",
    "RunSpec",
    "SMOKE_TXNS_PER_WORKER",
    "run_saturation",
    "saturation_cell",
    "SweepExecutionError",
    "default_workers",
    "run_specs",
    "sweep",
    "STUDIES",
    "run_study",
]
