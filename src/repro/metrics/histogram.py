"""Fixed-bucket latency histogram.

The paper's evaluation reports means, but a production system lives
and dies by its tails: a Presumed Abort commit whose p99 is dominated
by one slow log force looks identical to a healthy one on averages.
:class:`Histogram` keeps a fixed geometric bucket ladder (no
allocation per observation, mergeable across sweep workers) plus
exact count/sum/min/max, and answers percentile queries by linear
interpolation inside the winning bucket.

Values are virtual-time durations (the simulator's unit), but nothing
here assumes a unit — the kernel profiler reuses it for wall-clock
seconds.
"""

from __future__ import annotations

from array import array

from typing import Dict, Iterable, List, Optional, Sequence, Tuple


def geometric_bounds(lo: float = 0.001, hi: float = 100_000.0,
                     per_decade: int = 5) -> Tuple[float, ...]:
    """Bucket upper bounds growing by a constant factor, lo..hi."""
    if lo <= 0 or hi <= lo:
        raise ValueError(f"need 0 < lo < hi, got lo={lo} hi={hi}")
    bounds: List[float] = []
    factor = 10.0 ** (1.0 / per_decade)
    value = lo
    while value < hi:
        bounds.append(value)
        value *= factor
    bounds.append(hi)
    return tuple(bounds)


#: Default ladder: 0.001 .. 100k virtual time units, 5 buckets/decade.
#: Covers everything the simulator produces (io_latency defaults to
#: 0.1, link latency to 1.0, satellite links to ~50).
DEFAULT_BOUNDS = geometric_bounds()


class Histogram:
    """Counts observations into a fixed ladder of buckets.

    ``bounds[i]`` is the *inclusive upper* edge of bucket ``i``; one
    extra overflow bucket catches everything above ``bounds[-1]``.
    Zero (and negative) observations land in bucket 0.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be a sorted, "
                             "non-empty sequence")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        # Typed int64 buffer: the whole ladder is one allocation, and
        # merge/serialisation read it like the list it replaced.
        self.counts = array("q", bytes(8 * (len(self.bounds) + 1)))
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float) -> None:
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def record_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.record(value)

    def _bucket_index(self, value: float) -> int:
        # Binary search over the (small, fixed) ladder.
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated value at quantile ``q`` in [0, 1].

        Interpolates linearly within the bucket containing the target
        rank; exact min/max clamp the ends so p0/p100 are not bucket
        artifacts.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self.min is not None and self.max is not None
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count < target:
                seen += bucket_count
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            upper = (self.bounds[index] if index < len(self.bounds)
                     else self.max)
            lower = max(lower, self.min)
            upper = min(upper, self.max)
            if upper <= lower:
                return upper
            fraction = (target - seen) / bucket_count
            return lower + fraction * (upper - lower)
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p90(self) -> float:
        return self.percentile(0.90)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)

    # ------------------------------------------------------------------
    # Combination / serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "Histogram") -> "Histogram":
        """Fold another histogram (same ladder) into this one."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different "
                             "bucket bounds")
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    def summary(self) -> Dict[str, float]:
        """The stat block sweeps persist: count/mean/percentiles/max."""
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "p50": round(self.p50, 6),
            "p90": round(self.p90, 6),
            "p99": round(self.p99, 6),
            "max": round(self.max or 0.0, 6),
        }

    def to_dict(self) -> Dict[str, object]:
        """Full serialisation (buckets included) for JSON persistence."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Histogram":
        histogram = cls(bounds=data["bounds"])  # type: ignore[arg-type]
        histogram.counts = array(
            "q", (int(c) for c in data["counts"]))  # type: ignore[arg-type]
        histogram.count = int(data["count"])  # type: ignore[arg-type]
        histogram.total = float(data["total"])  # type: ignore[arg-type]
        histogram.min = data["min"]  # type: ignore[assignment]
        histogram.max = data["max"]  # type: ignore[assignment]
        return histogram

    def __repr__(self) -> str:
        if not self.count:
            return "<Histogram empty>"
        return (f"<Histogram n={self.count} mean={self.mean:.3f} "
                f"p50={self.p50:.3f} p99={self.p99:.3f} "
                f"max={self.max:.3f}>")
