"""Columnar, array-backed storage for high-volume observability data.

The observability layer's default containers are Python lists of
boxed objects — one heap allocation (and one GC-tracked object) per
trace event, lock-hold sample or cost entry.  On a saturation run that
is millions of allocations that exist only to be folded into a
histogram or scanned once by a report.  This module provides the
columnar fast path: homogeneous fields live in preallocated
``array``-module typed buffers (8 bytes per float instead of a 24-byte
float object plus list slot), and repeated strings — node names,
message types, record types — are interned to small integers once.

Three layers build on the same primitives:

* :class:`FloatColumn` / :class:`IntColumn` — growable typed buffers
  with list-compatible reads (iteration, slicing, equality against
  plain lists), used by
  :class:`~repro.metrics.collector.MetricsCollector`
  for lock-hold and force-latency samples;
* :class:`PairColumn` — an interned-string + float pair stream that
  still iterates as ``(name, value)`` tuples;
* :class:`ColumnarTraceLog` — drop-in storage for
  :class:`~repro.trace.recorder.Tracer` events
  (``Tracer(columnar=True)``) that materializes ``TraceEvent`` objects
  only when an event is actually inspected;
* :class:`CostTape` — an append-only (time, txn, node, kind) tape the
  :class:`~repro.obs.ledger.CostLedger` can carry for post-hoc cost
  timelines without per-event objects.

Results are identical to the list-backed containers; only the memory
and allocation profile changes.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

#: Initial element capacity of a typed buffer; doubles on overflow.
_INITIAL_CAPACITY = 256


class StringInterner:
    """Bidirectional string <-> small-int mapping.

    ``None`` interns to -1 so optional fields fit the same int column.
    """

    __slots__ = ("_ids", "_strings")

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._strings: List[str] = []

    def intern(self, value: Optional[str]) -> int:
        if value is None:
            return -1
        ident = self._ids.get(value)
        if ident is None:
            ident = len(self._strings)
            self._ids[value] = ident
            self._strings.append(value)
        return ident

    def lookup(self, ident: int) -> Optional[str]:
        return None if ident < 0 else self._strings[ident]

    def __len__(self) -> int:
        return len(self._strings)


class _TypedColumn:
    """Growable typed buffer: preallocated array, doubling growth."""

    __slots__ = ("_buf", "_len")

    _typecode = "d"
    _zero: object = 0.0

    def __init__(self, values: Iterable = ()) -> None:
        self._buf = array(self._typecode,
                          [self._zero]) * _INITIAL_CAPACITY
        self._len = 0
        for value in values:
            self.append(value)

    def append(self, value) -> None:
        n = self._len
        buf = self._buf
        if n == len(buf):
            buf.extend(buf)     # double capacity in one C-level copy
        buf[n] = value
        self._len = n + 1

    def extend(self, values: Iterable) -> None:
        for value in values:
            self.append(value)

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def __iter__(self) -> Iterator:
        buf = self._buf
        for index in range(self._len):
            yield buf[index]

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._len)
            clone = type(self)()
            clone.extend(self._buf[start:stop:step])
            return clone
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError("column index out of range")
        return self._buf[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, (_TypedColumn, list, tuple)):
            return len(self) == len(other) and all(
                mine == theirs for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"<{type(self).__name__} n={self._len}>"

    def to_list(self) -> list:
        return self._buf[:self._len].tolist()


class FloatColumn(_TypedColumn):
    """Append-only float64 column (lock holds, latency samples)."""

    __slots__ = ()
    _typecode = "d"
    _zero = 0.0


class IntColumn(_TypedColumn):
    """Append-only int64 column (counts, interned string ids)."""

    __slots__ = ()
    _typecode = "q"
    _zero = 0


class PairColumn:
    """(name, value) sample stream with the name column interned.

    Reads exactly like a list of 2-tuples — iteration, slicing,
    equality — but stores one interned int and one float per sample.
    """

    __slots__ = ("_names", "_values", "_interner")

    def __init__(self, pairs: Iterable[Tuple[str, float]] = (),
                 interner: Optional[StringInterner] = None) -> None:
        self._interner = interner or StringInterner()
        self._names = IntColumn()
        self._values = FloatColumn()
        for pair in pairs:
            self.append(pair)

    def append(self, pair: Tuple[str, float]) -> None:
        name, value = pair
        self._names.append(self._interner.intern(name))
        self._values.append(value)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        return bool(self._values)

    def __iter__(self) -> Iterator[Tuple[str, float]]:
        lookup = self._interner.lookup
        for ident, value in zip(self._names, self._values):
            yield (lookup(ident), value)

    def __getitem__(self, index):
        if isinstance(index, slice):
            clone = PairColumn(interner=self._interner)
            clone._names = self._names[index]
            clone._values = self._values[index]
            return clone
        return (self._interner.lookup(self._names[index]),
                self._values[index])

    def __eq__(self, other) -> bool:
        if isinstance(other, (PairColumn, list, tuple)):
            return len(self) == len(other) and all(
                mine == tuple(theirs)
                for mine, theirs in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:
        return f"<PairColumn n={len(self)}>"


class ColumnarTraceLog:
    """Columnar storage for :class:`~repro.trace.recorder.TraceEvent`.

    Protocol traces are extremely repetitive — a handful of node
    names, message types and note strings repeated per transaction —
    so every string field interns to an int column and the whole event
    costs ~26 bytes instead of a 100+-byte dataclass.  Events are
    materialized lazily: ``log[i]`` and iteration rebuild real
    ``TraceEvent`` objects, so diagram rendering and tests see the
    exact objects the list-backed tracer would have produced.
    """

    __slots__ = ("_time", "_kind", "_node", "_text", "_dst", "_forced",
                 "_txn", "_interner")

    def __init__(self) -> None:
        self._interner = StringInterner()
        self._time = array("d")
        self._kind = array("i")
        self._node = array("i")
        self._text = array("i")
        self._dst = array("i")
        self._forced = array("b")   # -1 none / 0 false / 1 true
        self._txn = array("i")

    def append_fields(self, time: float, kind: str, node: str, text: str,
                      dst: Optional[str], forced: Optional[bool],
                      txn_id: Optional[str]) -> None:
        intern = self._interner.intern
        self._time.append(time)
        self._kind.append(intern(kind))
        self._node.append(intern(node))
        self._text.append(intern(text))
        self._dst.append(intern(dst))
        self._forced.append(-1 if forced is None else int(forced))
        self._txn.append(intern(txn_id))

    def append(self, event) -> None:
        """List-compatible append of an already-built TraceEvent."""
        self.append_fields(event.time, event.kind, event.node, event.text,
                           event.dst, event.forced, event.txn_id)

    def _materialize(self, index: int):
        from repro.trace.recorder import TraceEvent
        lookup = self._interner.lookup
        forced = self._forced[index]
        return TraceEvent(
            time=self._time[index],
            kind=lookup(self._kind[index]),
            node=lookup(self._node[index]),
            text=lookup(self._text[index]),
            dst=lookup(self._dst[index]),
            forced=None if forced < 0 else bool(forced),
            txn_id=lookup(self._txn[index]))

    def __len__(self) -> int:
        return len(self._time)

    def __bool__(self) -> bool:
        return len(self._time) > 0

    def __iter__(self) -> Iterator:
        for index in range(len(self._time)):
            yield self._materialize(index)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._materialize(i)
                    for i in range(*index.indices(len(self._time)))]
        if index < 0:
            index += len(self._time)
        if not 0 <= index < len(self._time):
            raise IndexError("trace index out of range")
        return self._materialize(index)


class CostTape:
    """Append-only (time, txn, node, kind) tape of ledger cost events.

    One row per cost the :class:`~repro.obs.ledger.CostLedger`
    attributes — message send, delivery, log write, hardening — in
    arrival order, four small scalars wide.  Lets a report reconstruct
    *when* a transaction paid each cost without the ledger keeping a
    per-event object alive.
    """

    __slots__ = ("_time", "_txn", "_node", "_kind", "_interner")

    def __init__(self) -> None:
        self._interner = StringInterner()
        self._time = array("d")
        self._txn = array("i")
        self._node = array("i")
        self._kind = array("i")

    def record(self, time: float, txn_id: Optional[str],
               node: Optional[str], kind: str) -> None:
        intern = self._interner.intern
        self._time.append(time)
        self._txn.append(intern(txn_id))
        self._node.append(intern(node))
        self._kind.append(intern(kind))

    def __len__(self) -> int:
        return len(self._time)

    def rows(self) -> Iterator[Tuple[float, Optional[str],
                                     Optional[str], str]]:
        lookup = self._interner.lookup
        for index in range(len(self._time)):
            yield (self._time[index], lookup(self._txn[index]),
                   lookup(self._node[index]), lookup(self._kind[index]))

    def for_txn(self, txn_id: str) -> List[Tuple[float, str, str]]:
        """(time, node, kind) rows for one transaction, in order."""
        return [(time, node, kind) for time, txn, node, kind in self.rows()
                if txn == txn_id]

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        lookup = self._interner.lookup
        for ident in self._kind:
            kind = lookup(ident)
            counts[kind] = counts.get(kind, 0) + 1
        return counts
