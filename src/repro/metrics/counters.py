"""A small multi-dimensional counter."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Hashable, Iterator, Tuple

Key = Tuple[Hashable, ...]


class TaggedCounter:
    """Counts events keyed by a tuple of tags, queryable by partial key.

    Example::

        c = TaggedCounter()
        c.add(("commit", "prepare", "coord"))
        c.total(phase="commit")            # match on position 0
    """

    def __init__(self, dimensions: Tuple[str, ...]) -> None:
        if not dimensions:
            raise ValueError("a TaggedCounter needs at least one dimension")
        self.dimensions = dimensions
        self._counts: Dict[Key, int] = defaultdict(int)

    def add(self, key: Key, count: int = 1) -> None:
        if len(key) != len(self.dimensions):
            raise ValueError(
                f"key {key!r} does not match dimensions {self.dimensions!r}")
        self._counts[key] += count

    def total(self, **match: Hashable) -> int:
        """Sum counts whose tags match every given dimension value."""
        unknown = set(match) - set(self.dimensions)
        if unknown:
            raise ValueError(f"unknown dimensions: {sorted(unknown)}")
        positions = {self.dimensions.index(name): value
                     for name, value in match.items()}
        result = 0
        for key, count in self._counts.items():
            if all(key[pos] == value for pos, value in positions.items()):
                result += count
        return result

    def group_by(self, dimension: str, **match: Hashable) -> Dict[Hashable, int]:
        """Totals split by one dimension, optionally filtered by others."""
        if dimension not in self.dimensions:
            raise ValueError(f"unknown dimension: {dimension}")
        positions = {self.dimensions.index(name): value
                     for name, value in match.items()}
        axis = self.dimensions.index(dimension)
        result: Dict[Hashable, int] = defaultdict(int)
        for key, count in self._counts.items():
            if all(key[pos] == value for pos, value in positions.items()):
                result[key[axis]] += count
        return dict(result)

    def snapshot(self) -> Dict[Key, int]:
        return dict(self._counts)

    def diff(self, earlier: Dict[Key, int]) -> "TaggedCounter":
        """Counter holding only increments since ``earlier``."""
        delta = TaggedCounter(self.dimensions)
        for key, count in self._counts.items():
            change = count - earlier.get(key, 0)
            if change:
                delta._counts[key] = change
        return delta

    def __iter__(self) -> Iterator[Tuple[Key, int]]:
        return iter(self._counts.items())

    def __len__(self) -> int:
        return len(self._counts)
