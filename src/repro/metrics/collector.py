"""The central metrics collector.

All quantities the paper reports flow through here:

* network flows, tagged (phase, message type, sender, transaction) —
  Tables 2-4 count commit-phase flows;
* log writes, tagged (node, record type, forced, transaction) — the
  "x log writes, y forced" pairs in Tables 2-4;
* physical log I/Os (group commit batches many forces into one I/O);
* lock hold durations (the "resource lock time" axis of the analysis);
* transaction completions and heuristic-damage events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.metrics.columns import FloatColumn, PairColumn
from repro.metrics.counters import TaggedCounter


@dataclass
class TransactionRecord:
    """Completion record for one transaction at its root coordinator."""

    txn_id: str
    outcome: str
    started_at: float
    finished_at: float
    outcome_pending: bool = False
    heuristic_mixed: bool = False

    @property
    def latency(self) -> float:
        return self.finished_at - self.started_at


@dataclass
class HeuristicEvent:
    """One unilateral heuristic decision taken by an in-doubt participant."""

    node: str
    txn_id: str
    decision: str            # "commit" | "abort"
    at_time: float
    damaged: Optional[bool] = None   # filled in when the true outcome arrives
    reported_to: List[str] = field(default_factory=list)


@dataclass
class RecoveryRecord:
    """One completed restart recovery: how long, how much log replayed.

    ``seconds`` is wall-clock (the live cluster's RTO; in simulation it
    is the recovery computation's real cost, still useful for the
    recovery-time-vs-checkpoint-interval tradeoff curve).
    """

    node: str
    seconds: float
    records_replayed: int
    at_time: float = 0.0
    crash_count: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {"node": self.node, "seconds": self.seconds,
                "records_replayed": self.records_replayed,
                "at_time": self.at_time, "crash_count": self.crash_count}


@dataclass
class DeadlockRecord:
    """One detected deadlock: the chosen victim and the waits-for cycle."""

    victim: str
    cycle: List[str] = field(default_factory=list)


@dataclass
class CostSummary:
    """The paper's (flows, log writes, forced writes) cost triple."""

    flows: int
    log_writes: int
    forced_writes: int

    def as_tuple(self) -> tuple:
        return (self.flows, self.log_writes, self.forced_writes)

    def __str__(self) -> str:
        return (f"{self.flows} flows, {self.log_writes} writes "
                f"({self.forced_writes} forced)")


class MetricsSnapshot:
    """Frozen collector state, for windowed (e.g. per-transaction) diffs.

    Counters are snapshotted by value; list-valued metrics
    (transactions, heuristics, lock holds, force latencies) are
    append-only, so remembering their lengths is enough to window them.
    """

    def __init__(self, flows: Dict, drops: Dict, log_writes: Dict,
                 log_ios: Dict, local_flows: Dict,
                 n_transactions: int = 0, n_heuristics: int = 0,
                 n_lock_holds: int = 0, n_force_latencies: int = 0,
                 recovery_anomalies: Optional[Dict] = None,
                 n_deadlocks: int = 0) -> None:
        self.flows = flows
        self.drops = drops
        self.log_writes = log_writes
        self.log_ios = log_ios
        self.local_flows = local_flows
        self.n_transactions = n_transactions
        self.n_heuristics = n_heuristics
        self.n_lock_holds = n_lock_holds
        self.n_force_latencies = n_force_latencies
        self.recovery_anomalies = recovery_anomalies or {}
        self.n_deadlocks = n_deadlocks


class MetricsCollector:
    """Aggregates every measurable event in a simulation run."""

    FLOW_DIMS = ("phase", "msg_type", "src", "txn")
    DROP_DIMS = ("reason", "msg_type", "src")
    LOG_DIMS = ("node", "record_type", "forced", "txn")
    IO_DIMS = ("node",)
    LOCAL_DIMS = ("node", "kind", "txn")
    ANOMALY_DIMS = ("node", "kind", "detail")

    def __init__(self) -> None:
        #: Subscription hooks, fired synchronously on record.  Empty by
        #: default (zero cost); the streaming MetricsRegistry installs
        #: here.  ``reset()`` does not clear them — attached instruments
        #: survive measurement-window resets like every other hook.
        self.on_transaction: List = []
        self.on_heuristic: List = []
        self.on_recovery: List = []
        self.reset()

    def reset(self) -> None:
        """Drop every recorded quantity (fresh-run state).

        Long-lived clusters (sweep cells reusing one cluster, the CLI's
        chained profiles) call this between measurement windows instead
        of rebuilding the whole topology.
        """
        self.flows = TaggedCounter(self.FLOW_DIMS)
        self.drops = TaggedCounter(self.DROP_DIMS)
        self.log_writes = TaggedCounter(self.LOG_DIMS)
        self.log_ios = TaggedCounter(self.IO_DIMS)
        # Local flows = TM <-> local-LRM interactions.  Table 2's shared-log
        # row counts the local LRM as the "subordinate", so these are kept
        # in their own counter rather than mixed into network flows.
        self.local_flows = TaggedCounter(self.LOCAL_DIMS)
        #: Degradations recovery survived but could not fully repair —
        #: e.g. an in-doubt restart that could not re-acquire locks
        #: because a resource manager went missing.  Silent before;
        #: now recorded so operators (and the torture harness) can tell
        #: surfaced degradation from silent lock loss.
        self.recovery_anomalies = TaggedCounter(self.ANOMALY_DIMS)
        self.transactions: List[TransactionRecord] = []
        self.heuristics: List[HeuristicEvent] = []
        #: Columnar float64 buffer (reads like a list of floats) — one
        #: sample per released lock; see repro.obs.columns.
        self.lock_holds = FloatColumn()
        #: Deadlocks the lock tables detected; counted in
        #: repro.lrm.locks before, but invisible in any report.
        self.deadlocks: List[DeadlockRecord] = []
        #: Completed restart recoveries (duration + replayed records);
        #: the RTO observable ROADMAP asks for.
        self.recoveries: List[RecoveryRecord] = []
        #: (node, duration) per satisfied force request — the virtual
        #: time between requesting a force and its I/O completing
        #: (group commit makes this longer than io_latency).  Columnar:
        #: node names interned, durations in a float64 buffer.
        self.force_latencies = PairColumn()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_flow(self, phase: str, msg_type: str, src: str,
                    txn: str) -> None:
        self.flows.add((phase, msg_type, src, txn))

    def record_drop(self, reason: str, msg_type: str, src: str) -> None:
        self.drops.add((reason, msg_type, src))

    def record_log_write(self, node: str, record_type: str, forced: bool,
                         txn: str) -> None:
        self.log_writes.add((node, record_type, forced, txn))

    def record_log_io(self, node: str) -> None:
        self.log_ios.add((node,))

    def record_local_flow(self, node: str, kind: str, txn: str) -> None:
        self.local_flows.add((node, kind, txn))

    def record_recovery_anomaly(self, node: str, kind: str,
                                detail: str = "") -> None:
        self.recovery_anomalies.add((node, kind, detail))

    def record_transaction(self, record: TransactionRecord) -> None:
        self.transactions.append(record)
        for hook in self.on_transaction:
            hook(record)

    def record_heuristic(self, event: HeuristicEvent) -> None:
        self.heuristics.append(event)
        for hook in self.on_heuristic:
            hook(event)

    def record_recovery(self, record: RecoveryRecord) -> None:
        self.recoveries.append(record)
        for hook in self.on_recovery:
            hook(record)

    def record_deadlock(self, victim: str,
                        cycle: Optional[List[str]] = None) -> None:
        self.deadlocks.append(DeadlockRecord(victim, list(cycle or [])))

    def record_lock_hold(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative lock hold duration: {duration}")
        self.lock_holds.append(duration)

    def record_force_latency(self, node: str, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"negative force latency: {duration}")
        self.force_latencies.append((node, duration))

    # ------------------------------------------------------------------
    # Queries (the quantities the paper's tables report)
    # ------------------------------------------------------------------
    def commit_flows(self, src: Optional[str] = None,
                     txn: Optional[str] = None) -> int:
        """Network flows in the commit phase — the tables' 'flows' column."""
        match: Dict[str, Hashable] = {"phase": "commit"}
        if src is not None:
            match["src"] = src
        if txn is not None:
            match["txn"] = txn
        return self.flows.total(**match)

    def recovery_flows(self, txn: Optional[str] = None) -> int:
        match: Dict[str, Hashable] = {"phase": "recovery"}
        if txn is not None:
            match["txn"] = txn
        return self.flows.total(**match)

    def data_flows(self) -> int:
        return self.flows.total(phase="data")

    #: Data (WAL) records are pre-commit work, not part of the commit
    #: protocol; the paper's tables count only protocol records.
    DATA_RECORD_TYPES = frozenset({"lrm-update"})

    def total_log_writes(self, node: Optional[str] = None,
                         txn: Optional[str] = None,
                         include_data: bool = False) -> int:
        match: Dict[str, Hashable] = {}
        if node is not None:
            match["node"] = node
        if txn is not None:
            match["txn"] = txn
        by_type = self.log_writes.group_by("record_type", **match)
        return sum(count for rtype, count in by_type.items()
                   if include_data or rtype not in self.DATA_RECORD_TYPES)

    def forced_log_writes(self, node: Optional[str] = None,
                          txn: Optional[str] = None,
                          include_data: bool = False) -> int:
        match: Dict[str, Hashable] = {"forced": True}
        if node is not None:
            match["node"] = node
        if txn is not None:
            match["txn"] = txn
        by_type = self.log_writes.group_by("record_type", **match)
        return sum(count for rtype, count in by_type.items()
                   if include_data or rtype not in self.DATA_RECORD_TYPES)

    def physical_ios(self, node: Optional[str] = None) -> int:
        if node is not None:
            return self.log_ios.total(node=node)
        return self.log_ios.total()

    def cost_summary(self, txn: Optional[str] = None) -> CostSummary:
        """The (flows, writes, forced) triple for one txn or the whole run."""
        return CostSummary(
            flows=self.commit_flows(txn=txn),
            log_writes=self.total_log_writes(txn=txn),
            forced_writes=self.forced_log_writes(txn=txn),
        )

    def node_costs(self, node: str, txn: Optional[str] = None) -> CostSummary:
        """Per-role cost triple (Table 2 reports coordinator vs subordinate)."""
        flow_match: Dict[str, Hashable] = {"phase": "commit", "src": node}
        if txn is not None:
            flow_match["txn"] = txn
        return CostSummary(
            flows=self.flows.total(**flow_match),
            log_writes=self.total_log_writes(node=node, txn=txn),
            forced_writes=self.forced_log_writes(node=node, txn=txn),
        )

    def mean_lock_hold(self) -> float:
        if not self.lock_holds:
            return 0.0
        return sum(self.lock_holds) / len(self.lock_holds)

    def max_lock_hold(self) -> float:
        return max(self.lock_holds) if self.lock_holds else 0.0

    def recovery_anomaly_count(self, node: Optional[str] = None,
                               kind: Optional[str] = None,
                               detail: Optional[str] = None) -> int:
        match: Dict[str, Hashable] = {}
        if node is not None:
            match["node"] = node
        if kind is not None:
            match["kind"] = kind
        if detail is not None:
            match["detail"] = detail
        return self.recovery_anomalies.total(**match)

    def deadlock_count(self) -> int:
        return len(self.deadlocks)

    def deadlock_victims(self) -> List[str]:
        """Victim transaction ids, in detection order (may repeat)."""
        return [record.victim for record in self.deadlocks]

    def damaged_heuristics(self) -> List[HeuristicEvent]:
        return [h for h in self.heuristics if h.damaged]

    def mean_latency(self) -> float:
        if not self.transactions:
            return 0.0
        return sum(t.latency for t in self.transactions) / len(self.transactions)

    # ------------------------------------------------------------------
    # Windowing
    # ------------------------------------------------------------------
    def snapshot(self) -> MetricsSnapshot:
        return MetricsSnapshot(
            flows=self.flows.snapshot(),
            drops=self.drops.snapshot(),
            log_writes=self.log_writes.snapshot(),
            log_ios=self.log_ios.snapshot(),
            local_flows=self.local_flows.snapshot(),
            n_transactions=len(self.transactions),
            n_heuristics=len(self.heuristics),
            n_lock_holds=len(self.lock_holds),
            n_force_latencies=len(self.force_latencies),
            recovery_anomalies=self.recovery_anomalies.snapshot(),
            n_deadlocks=len(self.deadlocks),
        )

    def since(self, earlier: MetricsSnapshot) -> "MetricsCollector":
        """A collector view holding only increments since ``earlier``.

        Counters come back as diffs; list-valued metrics (transactions,
        heuristics, lock holds, force latencies) come back sliced to
        the entries appended after the snapshot.
        """
        window = MetricsCollector()
        window.flows = self.flows.diff(earlier.flows)
        window.drops = self.drops.diff(earlier.drops)
        window.log_writes = self.log_writes.diff(earlier.log_writes)
        window.log_ios = self.log_ios.diff(earlier.log_ios)
        window.local_flows = self.local_flows.diff(earlier.local_flows)
        window.recovery_anomalies = \
            self.recovery_anomalies.diff(earlier.recovery_anomalies)
        window.transactions = self.transactions[earlier.n_transactions:]
        window.heuristics = self.heuristics[earlier.n_heuristics:]
        window.lock_holds = self.lock_holds[earlier.n_lock_holds:]
        window.deadlocks = self.deadlocks[earlier.n_deadlocks:]
        window.force_latencies = \
            self.force_latencies[earlier.n_force_latencies:]
        return window
