"""Measurement layer.

The paper's evaluation is a set of counts: message flows, log writes,
forced log writes, lock hold time.  Every substrate reports into a
:class:`MetricsCollector`, and the benchmark harness reads the same
quantities the paper's Tables 2-4 report.
"""

from repro.metrics.columns import (ColumnarTraceLog, CostTape,
                                   FloatColumn, IntColumn, PairColumn,
                                   StringInterner)
from repro.metrics.counters import TaggedCounter
from repro.metrics.collector import (
    CostSummary,
    HeuristicEvent,
    MetricsCollector,
    MetricsSnapshot,
    TransactionRecord,
)
from repro.metrics.histogram import DEFAULT_BOUNDS, Histogram, geometric_bounds

__all__ = [
    "ColumnarTraceLog",
    "CostSummary",
    "CostTape",
    "FloatColumn",
    "IntColumn",
    "PairColumn",
    "StringInterner",
    "DEFAULT_BOUNDS",
    "geometric_bounds",
    "HeuristicEvent",
    "Histogram",
    "MetricsCollector",
    "MetricsSnapshot",
    "TaggedCounter",
    "TransactionRecord",
]
