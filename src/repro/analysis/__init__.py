"""Analytic cost model and table reproduction.

This package encodes the paper's own analysis — closed-form counts of
message flows and log writes for every protocol variant and
optimization — and pairs each table row with a simulator scenario so
that analytic and measured values can be compared mechanically.
"""

from repro.analysis.formulas import (
    CostFormula,
    TABLE3_FORMULAS,
    basic_2pc_costs,
    group_commit_io_savings,
    long_locks_costs,
    pa_abort_costs,
    pa_commit_costs,
    pa_read_only_costs,
    pc_commit_costs,
    pn_commit_costs,
)
from repro.analysis.tables import (
    Table2Row,
    Table3Row,
    Table4Row,
    table2_rows,
    table3_rows,
    table4_rows,
)
from repro.analysis.qualitative import TABLE1, Table1Row
from repro.analysis.render import render_table
from repro.analysis.compare import ComparisonResult, compare_row

__all__ = [
    "ComparisonResult",
    "CostFormula",
    "TABLE1",
    "TABLE3_FORMULAS",
    "Table1Row",
    "Table2Row",
    "Table3Row",
    "Table4Row",
    "basic_2pc_costs",
    "compare_row",
    "group_commit_io_savings",
    "long_locks_costs",
    "pa_abort_costs",
    "pa_commit_costs",
    "pa_read_only_costs",
    "pc_commit_costs",
    "pn_commit_costs",
    "render_table",
    "table2_rows",
    "table3_rows",
    "table4_rows",
]
