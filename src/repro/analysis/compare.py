"""Analytic-vs-measured comparison machinery.

The reproduction's central claim is that the simulator *measures* the
same costs the paper *derives*.  ``compare_row`` checks one (analytic,
measured) pair and reports per-metric agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.metrics.collector import CostSummary


@dataclass
class ComparisonResult:
    """Agreement report for one table row."""

    label: str
    analytic: CostSummary
    measured: CostSummary
    mismatches: List[str] = field(default_factory=list)

    @property
    def matches(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        status = "OK" if self.matches else \
            f"MISMATCH ({', '.join(self.mismatches)})"
        return (f"{self.label}: paper {self.analytic.as_tuple()} "
                f"measured {self.measured.as_tuple()} -> {status}")


def compare_row(label: str, analytic: CostSummary,
                measured: CostSummary) -> ComparisonResult:
    result = ComparisonResult(label=label, analytic=analytic,
                              measured=measured)
    for metric in ("flows", "log_writes", "forced_writes"):
        expected = getattr(analytic, metric)
        actual = getattr(measured, metric)
        if expected != actual:
            result.mismatches.append(
                f"{metric}: paper {expected} vs measured {actual}")
    return result
