"""Closed-form cost formulas for the paper's protocols and optimizations.

Counting conventions (validated against Table 2 and Table 3's n=11,
m=4 example; see DESIGN.md §4 for the OCR reconstructions):

* a transaction tree has ``n`` members (1 coordinator + n-1 others);
* "flows" counts commit-protocol network messages (4 per edge in the
  baseline: prepare, vote, outcome, ack);
* "writes"/"forced" count TM protocol log records (data WAL records
  are pre-commit work and excluded, as in the paper).

Baseline per-role records (commit case):

* coordinator: committed (forced), end (non-forced) -> 2 writes / 1 forced;
* subordinate: prepared (f), committed (f), end (nf) -> 3 writes / 2 forced;
* totals: ``3n - 1`` writes, ``2n - 1`` forced.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from repro.metrics.collector import CostSummary


def _check_membership(n: int, m: int) -> None:
    if n < 1:
        raise ValueError(f"tree size must be >= 1, got n={n}")
    if not 0 <= m <= n - 1:
        raise ValueError(
            f"optimized members m={m} must satisfy 0 <= m <= n-1 (n={n})")


# ----------------------------------------------------------------------
# Whole-protocol costs (Table 2 scale: role-level and totals)
# ----------------------------------------------------------------------
def basic_2pc_costs(n: int) -> CostSummary:
    """Baseline 2PC, commit case (also PA's commit case)."""
    _check_membership(n, 0)
    return CostSummary(flows=4 * (n - 1), log_writes=3 * n - 1,
                       forced_writes=2 * n - 1)


def pa_commit_costs(n: int) -> CostSummary:
    """Presumed Abort commits exactly like the baseline."""
    return basic_2pc_costs(n)


def pn_commit_costs(n: int) -> CostSummary:
    """Presumed Nothing: +1 forced commit-pending at the coordinator,
    +1 forced initiator/session record per subordinate (Table 2: the
    PN coordinator writes 3/2, the PN subordinate 4/3)."""
    _check_membership(n, 0)
    return CostSummary(flows=4 * (n - 1),
                       log_writes=(3 * n - 1) + n,
                       forced_writes=(2 * n - 1) + n)


def pa_abort_costs(n: int) -> CostSummary:
    """PA abort (subordinates voted NO): prepare+abort out, one vote
    back, nothing logged, no acks."""
    _check_membership(n, 0)
    return CostSummary(flows=3 * (n - 1), log_writes=0, forced_writes=0)


def pa_read_only_costs(n: int) -> CostSummary:
    """PA with every participant read-only: one round of prepares and
    read-only votes; no logging at all."""
    _check_membership(n, 0)
    return CostSummary(flows=2 * (n - 1), log_writes=0, forced_writes=0)


def pc_commit_costs(n: int) -> CostSummary:
    """Presumed Commit (extension): coordinator forces collecting and
    committed (3 writes / 2 forced + end), subordinates never force the
    commit record and never ack (2 writes / 1 forced, 3 flows/edge)."""
    _check_membership(n, 0)
    return CostSummary(flows=3 * (n - 1),
                       log_writes=3 + 2 * (n - 1),
                       forced_writes=2 + (n - 1))


# ----------------------------------------------------------------------
# Optimization deltas over PA for a tree of n with m optimized members
# (Table 3)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CostFormula:
    """One Table 3 row: closed-form costs as functions of (n, m)."""

    key: str
    label: str
    flows: Callable[[int, int], int]
    writes: Callable[[int, int], int]
    forced: Callable[[int, int], int]

    def costs(self, n: int, m: int) -> CostSummary:
        _check_membership(n, m)
        return CostSummary(flows=self.flows(n, m),
                           log_writes=self.writes(n, m),
                           forced_writes=self.forced(n, m))


TABLE3_FORMULAS: Dict[str, CostFormula] = {
    formula.key: formula for formula in [
        CostFormula(
            key="basic",
            label="Basic 2PC (no optimizations present)",
            flows=lambda n, m: 4 * (n - 1),
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
        CostFormula(
            key="read_only",
            label="PA & Read Only",
            flows=lambda n, m: 4 * (n - 1) - 2 * m,
            writes=lambda n, m: 3 * n - 1 - 3 * m,
            forced=lambda n, m: 2 * n - 1 - 2 * m),
        CostFormula(
            key="last_agent",
            label="PA & Last Agent",
            flows=lambda n, m: 4 * (n - 1) - 2 * m,
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
        CostFormula(
            key="unsolicited_vote",
            label="PA & Unsolicited Vote",
            flows=lambda n, m: 4 * (n - 1) - m,
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
        CostFormula(
            key="leave_out",
            label="PA & OK-To-Leave-Out",
            flows=lambda n, m: 4 * (n - 1) - 4 * m,
            writes=lambda n, m: 3 * n - 1 - 3 * m,
            forced=lambda n, m: 2 * n - 1 - 2 * m),
        CostFormula(
            key="vote_reliable",
            label="PA & Vote Reliable",
            flows=lambda n, m: 4 * (n - 1) - m,
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
        CostFormula(
            key="wait_for_outcome",
            label="PA & Wait For Outcome",
            flows=lambda n, m: 4 * (n - 1),
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
        CostFormula(
            key="shared_logs",
            label="PA & Shared Logs",
            flows=lambda n, m: 4 * (n - 1),
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1 - 2 * m),
        CostFormula(
            key="long_locks",
            label="PA & Long Locks",
            flows=lambda n, m: 4 * (n - 1) - m,
            writes=lambda n, m: 3 * n - 1,
            forced=lambda n, m: 2 * n - 1),
    ]
}


# ----------------------------------------------------------------------
# Long locks over transaction chains (Table 4)
# ----------------------------------------------------------------------
def long_locks_costs(r: int, variant: str) -> CostSummary:
    """Costs of committing ``r`` chained 2-member transactions.

    variant: "basic" (4r flows), "long_locks" (3r — the ack rides the
    next transaction's first message), or "long_locks_last_agent"
    (3r/2 — two transactions commit in three flows).
    Log writes are unchanged: 5 per transaction, 3 forced.
    """
    if r < 1:
        raise ValueError(f"r must be >= 1, got {r}")
    flows = {
        "basic": 4 * r,
        "long_locks": 3 * r,
        "long_locks_last_agent": (3 * r) // 2,
    }
    if variant not in flows:
        raise ValueError(f"unknown variant {variant!r}")
    if variant == "long_locks_last_agent" and r % 2:
        raise ValueError("the paired last-agent pattern needs an even r")
    return CostSummary(flows=flows[variant], log_writes=5 * r,
                       forced_writes=3 * r)


# ----------------------------------------------------------------------
# Group commit (§4 prose)
# ----------------------------------------------------------------------
def group_commit_io_savings(force_requests: int, group_size: int) -> int:
    """Physical I/Os saved by batching ``force_requests`` forces into
    groups of ``group_size``: F - ceil(F / g)."""
    if force_requests < 0:
        raise ValueError("force_requests must be >= 0")
    if group_size < 1:
        raise ValueError("group_size must be >= 1")
    if force_requests == 0:
        return 0
    return force_requests - math.ceil(force_requests / group_size)


# ----------------------------------------------------------------------
# Extension: the same optimizations layered on PN and PC
# (the paper analyses over PA only; these are derived the same way and
# verified against the simulator in tests/test_extension_formulas.py)
# ----------------------------------------------------------------------
TABLE3_PN_FORMULAS: Dict[str, CostFormula] = {
    formula.key: formula for formula in [
        CostFormula("base", "PN (no optimizations)",
                    flows=lambda n, m: 4 * (n - 1),
                    writes=lambda n, m: 4 * n - 1,
                    forced=lambda n, m: 3 * n - 1),
        CostFormula("read_only", "PN & Read Only",
                    flows=lambda n, m: 4 * (n - 1) - 2 * m,
                    writes=lambda n, m: 4 * n - 1 - 4 * m,
                    forced=lambda n, m: 3 * n - 1 - 3 * m),
        # Each delegation replaces an agent's initiator+prepared pair
        # with the delegator's single prepared force: net -1 write and
        # -1 force per delegating edge.
        CostFormula("last_agent", "PN & Last Agent",
                    flows=lambda n, m: 4 * (n - 1) - 2 * m,
                    writes=lambda n, m: 4 * n - 1 - m,
                    forced=lambda n, m: 3 * n - 1 - m),
        CostFormula("unsolicited_vote", "PN & Unsolicited Vote",
                    flows=lambda n, m: 4 * (n - 1) - m,
                    writes=lambda n, m: 4 * n - 1,
                    forced=lambda n, m: 3 * n - 1),
        CostFormula("leave_out", "PN & OK-To-Leave-Out",
                    flows=lambda n, m: 4 * (n - 1) - 4 * m,
                    writes=lambda n, m: 4 * n - 1 - 4 * m,
                    forced=lambda n, m: 3 * n - 1 - 3 * m),
        CostFormula("vote_reliable", "PN & Vote Reliable",
                    flows=lambda n, m: 4 * (n - 1) - m,
                    writes=lambda n, m: 4 * n - 1,
                    forced=lambda n, m: 3 * n - 1),
        # A local LRM writes prepared/committed/end (3, none forced)
        # where a remote PN subordinate writes 4 records, 3 forced.
        CostFormula("shared_logs", "PN & Shared Logs",
                    flows=lambda n, m: 4 * (n - 1),
                    writes=lambda n, m: 4 * n - 1 - m,
                    forced=lambda n, m: 3 * n - 1 - 3 * m),
        CostFormula("long_locks", "PN & Long Locks",
                    flows=lambda n, m: 4 * (n - 1) - m,
                    writes=lambda n, m: 4 * n - 1,
                    forced=lambda n, m: 3 * n - 1),
    ]
}

TABLE3_PC_FORMULAS: Dict[str, CostFormula] = {
    formula.key: formula for formula in [
        CostFormula("base", "PC (no optimizations)",
                    flows=lambda n, m: 3 * (n - 1),
                    writes=lambda n, m: 2 * n + 1,
                    forced=lambda n, m: n + 1),
        # A PC subordinate already skips the ack, so read-only saves
        # only the commit flow (m, not 2m).
        CostFormula("read_only", "PC & Read Only",
                    flows=lambda n, m: 3 * (n - 1) - m,
                    writes=lambda n, m: 2 * n + 1 - 2 * m,
                    forced=lambda n, m: n + 1 - m),
        # Last agent HURTS PC on logging: each delegator adds a forced
        # prepared record while the saved edge had no ack to remove.
        CostFormula("last_agent", "PC & Last Agent",
                    flows=lambda n, m: 3 * (n - 1) - m,
                    writes=lambda n, m: 2 * n + 1 + m,
                    forced=lambda n, m: n + 1 + m),
        CostFormula("unsolicited_vote", "PC & Unsolicited Vote",
                    flows=lambda n, m: 3 * (n - 1) - m,
                    writes=lambda n, m: 2 * n + 1,
                    forced=lambda n, m: n + 1),
        CostFormula("leave_out", "PC & OK-To-Leave-Out",
                    flows=lambda n, m: 3 * (n - 1) - 3 * m,
                    writes=lambda n, m: 2 * n + 1 - 2 * m,
                    forced=lambda n, m: n + 1 - m),
        # PC has no commit acknowledgments to waive: no savings at all.
        CostFormula("vote_reliable", "PC & Vote Reliable",
                    flows=lambda n, m: 3 * (n - 1),
                    writes=lambda n, m: 2 * n + 1,
                    forced=lambda n, m: n + 1),
        # A local LRM costs 4 local exchanges and 3 records where the
        # remote PC edge costs 3 flows and 2 records — but saves the
        # subordinate's prepared force.
        CostFormula("shared_logs", "PC & Shared Logs",
                    flows=lambda n, m: 3 * (n - 1) + m,
                    writes=lambda n, m: 2 * n + 1 + m,
                    forced=lambda n, m: n + 1 - m),
        # Nothing to defer: PC commits without acks.
        CostFormula("long_locks", "PC & Long Locks",
                    flows=lambda n, m: 3 * (n - 1),
                    writes=lambda n, m: 2 * n + 1,
                    forced=lambda n, m: n + 1),
    ]
}
