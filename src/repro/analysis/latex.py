"""LaTeX rendering of the regenerated tables.

For dropping the reproduction's numbers straight into a paper-style
document: `table2_latex()` etc. return complete ``tabular``
environments with the paper's values beside the measured ones.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.scenarios import (
    TABLE2_SCENARIOS,
    run_table3_scenario,
    run_table4_scenario,
)
from repro.analysis.tables import table2_rows, table3_rows, table4_rows


def _escape(text: str) -> str:
    for char in ("&", "%", "#", "_"):
        text = text.replace(char, "\\" + char)
    return text


def latex_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                caption: str, label: str) -> str:
    """A complete table environment."""
    column_spec = "l" * len(headers)
    lines = [
        "\\begin{table}[t]",
        "\\centering",
        f"\\caption{{{_escape(caption)}}}",
        f"\\label{{{label}}}",
        f"\\begin{{tabular}}{{{column_spec}}}",
        "\\toprule",
        " & ".join(_escape(str(h)) for h in headers) + " \\\\",
        "\\midrule",
    ]
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        lines.append(" & ".join(_escape(str(cell)) for cell in row)
                     + " \\\\")
    lines += ["\\bottomrule", "\\end{tabular}", "\\end{table}"]
    return "\n".join(lines)


def _triple(summary) -> str:
    return (f"{summary.flows}/{summary.log_writes}/"
            f"{summary.forced_writes}")


def table2_latex() -> str:
    rows: List[List[str]] = []
    for row in table2_rows():
        result = TABLE2_SCENARIOS[row.key]()
        rows.append([row.label, _triple(row.coordinator),
                     _triple(result.coordinator),
                     _triple(row.subordinate),
                     _triple(result.subordinate)])
    return latex_table(
        ["2PC Type", "Coord (paper)", "Coord (measured)",
         "Sub (paper)", "Sub (measured)"],
        rows,
        caption="Logging and network traffic of 2PC optimizations "
                "(flows/writes/forced), paper vs measured.",
        label="tab:table2")


def table3_latex(n: int = 11, m: int = 4) -> str:
    rows = []
    for row in table3_rows(n=n, m=m):
        result = run_table3_scenario(row.key, n, m)
        rows.append([row.label, row.flows_formula,
                     _triple(row.analytic), _triple(result.total)])
    return latex_table(
        ["2PC Type", "Flows", f"Paper ($n={n}$, $m={m}$)", "Measured"],
        rows,
        caption=f"Costs for optimizations with $n={n}$ participants, "
                f"$m={m}$ optimized.",
        label="tab:table3")


def table4_latex(r: int = 12) -> str:
    rows = []
    for row in table4_rows(r=r):
        measured = run_table4_scenario(row.variant, row.r)
        rows.append([row.label, row.flows_formula,
                     _triple(row.analytic), _triple(measured)])
    return latex_table(
        ["2PC Type", "Flows", f"Paper ($r={r}$)", "Measured"],
        rows,
        caption=f"Long-locks costs over $r={r}$ chained transactions.",
        label="tab:table4")
