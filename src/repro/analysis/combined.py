"""Combined-optimization configurations.

§5 of the paper: "better performance can be achieved by combining the
different optimizations. Interesting configurations can be proposed
but because of space limitations we do not discuss them here."  This
module builds those configurations and measures them, completing the
analysis the paper deferred to a future paper.

The workload is a commercial-looking tree: a root with local detached
LRMs, a set of read-mostly query partners, one faraway update partner
(the last-agent candidate) and nearby update partners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.cluster import Cluster
from repro.core.config import BASIC_2PC, PRESUMED_ABORT, ProtocolConfig
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import read_op, write_op
from repro.metrics.collector import CostSummary
from repro.net.latency import SatelliteLink


@dataclass(frozen=True)
class CombinedConfig:
    """One named combination of optimizations."""

    key: str
    label: str
    config: ProtocolConfig
    use_last_agent: bool = False
    description: str = ""


COMBINATIONS: List[CombinedConfig] = [
    CombinedConfig(
        key="baseline",
        label="Basic 2PC",
        config=BASIC_2PC,
        description="Section 2 baseline: no optimizations at all"),
    CombinedConfig(
        key="pa",
        label="PA",
        config=PRESUMED_ABORT.with_options(read_only=False,
                                           leave_out=False),
        description="presumption only"),
    CombinedConfig(
        key="pa_ro",
        label="PA + Read Only",
        config=PRESUMED_ABORT.with_options(leave_out=False),
        description="readers leave phase two"),
    CombinedConfig(
        key="pa_ro_la",
        label="PA + Read Only + Last Agent",
        config=PRESUMED_ABORT.with_options(leave_out=False,
                                           last_agent=True),
        use_last_agent=True,
        description="the faraway partner gets the decision"),
    CombinedConfig(
        key="pa_ro_la_sl",
        label="PA + Read Only + Last Agent + Shared Logs",
        config=PRESUMED_ABORT.with_options(leave_out=False,
                                           last_agent=True,
                                           shared_log=True),
        use_last_agent=True,
        description="local LRMs ride the TM's forces too"),
]


@dataclass
class CombinedResult:
    key: str
    label: str
    cost: CostSummary          # commit case
    latency: float
    local_flows: int
    abort_cost: Optional[CostSummary] = None   # same workload, vetoed


def _workload(cluster: Cluster, use_last_agent: bool) -> TransactionSpec:
    participants = [ParticipantSpec(
        node="hub",
        ops=[write_op("hub-ledger", 1)],
        rm_ops={"catalog": [write_op("sku-1", 10)],
                "billing": [write_op("inv-1", 99)]})]
    for name in ("query1", "query2", "query3"):
        participants.append(ParticipantSpec(
            node=name, parent="hub", ops=[read_op("report")]))
    participants.append(ParticipantSpec(
        node="near", parent="hub", ops=[write_op("near-ledger", 2)]))
    participants.append(ParticipantSpec(
        node="far", parent="hub", ops=[write_op("far-ledger", 3)],
        last_agent=use_last_agent))
    return TransactionSpec(participants=participants)


def _build_cluster(combo: CombinedConfig, slow_delay: float) -> Cluster:
    latency = SatelliteLink("far", slow_delay=slow_delay, fast_delay=1.0)
    nodes = ["hub", "query1", "query2", "query3", "near", "far"]
    cluster = Cluster(combo.config, nodes=nodes, latency=latency)
    cluster.node("hub").add_detached_rm(
        "catalog", own_log=not combo.config.shared_log)
    cluster.node("hub").add_detached_rm(
        "billing", own_log=not combo.config.shared_log)
    return cluster


def run_combination(combo: CombinedConfig,
                    slow_delay: float = 25.0) -> CombinedResult:
    """Run the commercial workload under one combination.

    Measures both the commit case and the abort case (the nearby
    updater vetoes) — PA's advantage over the baseline lives entirely
    in the latter.
    """
    cluster = _build_cluster(combo, slow_delay)
    spec = _workload(cluster, combo.use_last_agent)
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    assert handle.committed, combo.key

    abort_cluster = _build_cluster(combo, slow_delay)
    abort_spec = _workload(abort_cluster, combo.use_last_agent)
    abort_spec.participant("near").veto = True
    abort_handle = abort_cluster.run_transaction(abort_spec)
    abort_cluster.finalize_implied_acks()
    assert abort_handle.aborted, combo.key

    return CombinedResult(
        key=combo.key,
        label=combo.label,
        cost=cluster.metrics.cost_summary(spec.txn_id),
        latency=handle.latency,
        local_flows=cluster.metrics.local_flows.total(),
        abort_cost=abort_cluster.metrics.cost_summary(abort_spec.txn_id))


def run_all_combinations(slow_delay: float = 25.0
                         ) -> Dict[str, CombinedResult]:
    return {combo.key: run_combination(combo, slow_delay)
            for combo in COMBINATIONS}
