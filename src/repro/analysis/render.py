"""Plain-text table rendering for benchmark output and the CLI."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Render an ASCII table with column-width alignment."""
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i])
                          for i, cell in enumerate(cells))

    separator = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt(list(headers)))
    lines.append(separator)
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)


def cost_cell(summary) -> str:
    """Render a CostSummary as the paper's (flows, writes, forced) triple."""
    return (f"{summary.flows}f / {summary.log_writes}w / "
            f"{summary.forced_writes}F")
