"""Row definitions for the paper's Tables 2-4.

Each row couples the paper's analytic values with the key of the
simulator scenario that measures the same configuration.  Where the
scanned paper is OCR-garbled, the analytic value is reconstructed from
the per-optimization prose (see DESIGN.md §4 and EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.formulas import (
    TABLE3_FORMULAS,
    long_locks_costs,
)
from repro.metrics.collector import CostSummary


@dataclass(frozen=True)
class Table2Row:
    """One protocol/optimization row of Table 2 (2-participant txn)."""

    key: str                     # scenario key in TABLE2_SCENARIOS
    label: str
    coordinator_flows: int
    coordinator_writes: int
    coordinator_forced: int
    subordinate_flows: int
    subordinate_writes: int
    subordinate_forced: int
    note: str = ""

    @property
    def coordinator(self) -> CostSummary:
        return CostSummary(self.coordinator_flows, self.coordinator_writes,
                           self.coordinator_forced)

    @property
    def subordinate(self) -> CostSummary:
        return CostSummary(self.subordinate_flows, self.subordinate_writes,
                           self.subordinate_forced)

    @property
    def total(self) -> CostSummary:
        return CostSummary(
            self.coordinator_flows + self.subordinate_flows,
            self.coordinator_writes + self.subordinate_writes,
            self.coordinator_forced + self.subordinate_forced)


def table2_rows() -> List[Table2Row]:
    """The eleven rows of Table 2 plus the Presumed Commit extension."""
    return [
        Table2Row("basic", "Basic 2PC", 2, 2, 1, 2, 3, 2),
        Table2Row("pn", "PN", 2, 3, 2, 2, 4, 3),
        Table2Row("pa_commit", "PA, Commit case", 2, 2, 1, 2, 3, 2),
        Table2Row("pa_abort", "PA, Abort case", 2, 0, 0, 1, 0, 0),
        Table2Row("pa_read_only", "PA, Read-Only case", 1, 0, 0, 1, 0, 0),
        Table2Row("pa_last_agent", "PA & Last Agent", 1, 3, 2, 1, 2, 1),
        Table2Row("pa_unsolicited_vote", "PA & Unsolicited Vote",
                  1, 2, 1, 2, 3, 2),
        Table2Row("pa_leave_out", "PA & OK-To-Leave-Out (vote-out)",
                  0, 0, 0, 0, 0, 0),
        Table2Row("pa_vote_reliable", "PA & Vote Reliable", 2, 2, 1, 1, 3, 2,
                  note="reliable subordinate's ack waived (Table 3: -m "
                       "flows); the scanned Table 2 row is OCR-garbled"),
        Table2Row("pa_wait_for_outcome", "PA & Wait For Outcome",
                  2, 2, 1, 2, 3, 2,
                  note="identical to PA in the failure-free case"),
        Table2Row("pa_shared_logs", "PA & Shared Logs", 2, 2, 1, 2, 3, 0,
                  note="'subordinate' is a local LRM sharing the TM log; "
                       "flows are local exchanges"),
        Table2Row("pc_commit", "PC, Commit case (extension)",
                  2, 3, 2, 1, 2, 1,
                  note="beyond the paper: Mohan & Lindsay's companion "
                       "presumption"),
    ]


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3: n members, m following the optimization."""

    key: str
    label: str
    n: int
    m: int

    @property
    def analytic(self) -> CostSummary:
        return TABLE3_FORMULAS[self.key].costs(self.n, self.m)

    @property
    def flows_formula(self) -> str:
        return {
            "basic": "4(n-1)",
            "read_only": "4(n-1) - 2m",
            "last_agent": "4(n-1) - 2m",
            "unsolicited_vote": "4(n-1) - m",
            "leave_out": "4(n-1) - 4m",
            "vote_reliable": "4(n-1) - m",
            "wait_for_outcome": "4(n-1)",
            "shared_logs": "4(n-1)",
            "long_locks": "4(n-1) - m",
        }[self.key]


def table3_rows(n: int = 11, m: int = 4) -> List[Table3Row]:
    """The paper's example instantiation: n=11 participants, m=4."""
    return [Table3Row(key=formula.key, label=formula.label, n=n, m=m)
            for formula in TABLE3_FORMULAS.values()]


@dataclass(frozen=True)
class Table4Row:
    """One row of Table 4: r chained 2-member transactions."""

    variant: str
    label: str
    r: int
    flows_formula: str

    @property
    def analytic(self) -> CostSummary:
        return long_locks_costs(self.r, self.variant)


def table4_rows(r: int = 12) -> List[Table4Row]:
    return [
        Table4Row("basic", "Basic 2PC (PA, commit case)", r, "4r"),
        Table4Row("long_locks", "PA & Long Locks (not last agent)", r, "3r"),
        Table4Row("long_locks_last_agent", "PA & Long Locks (last agent)",
                  r, "3r/2"),
    ]
