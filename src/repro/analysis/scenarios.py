"""Simulator scenarios matching each table row.

Every row of Tables 2-4 maps to a function here that builds a cluster,
runs the protocol, and returns the measured cost triple(s).  The
benchmarks and the reproduction tests compare these against the
analytic formulas in :mod:`repro.analysis.formulas`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
    ProtocolConfig,
)
from repro.core.spec import ParticipantSpec, TransactionSpec, flat_tree
from repro.lrm.operations import read_op, write_op
from repro.metrics.collector import CostSummary


@dataclass
class ScenarioResult:
    """Measured costs of one scenario run."""

    outcome: str
    total: CostSummary
    coordinator: Optional[CostSummary] = None
    subordinate: Optional[CostSummary] = None
    cluster: Optional[Cluster] = None
    txn_id: Optional[str] = None


def _updating_flat_tree(root: str, children: List[str]) -> TransactionSpec:
    spec = flat_tree(root, children)
    for participant in spec.participants:
        participant.ops.append(write_op(f"key-{participant.node}", 1))
    return spec


def _two_node_cluster(config: ProtocolConfig, **kwargs) -> Cluster:
    return Cluster(config, nodes=["coord", "sub"], **kwargs)


def _result(cluster: Cluster, spec: TransactionSpec, outcome: str,
            subordinate: str = "sub") -> ScenarioResult:
    metrics = cluster.metrics
    return ScenarioResult(
        outcome=outcome,
        total=metrics.cost_summary(spec.txn_id),
        coordinator=metrics.node_costs("coord", spec.txn_id),
        subordinate=(metrics.node_costs(subordinate, spec.txn_id)
                     if subordinate in cluster.nodes else None),
        cluster=cluster,
        txn_id=spec.txn_id)


# ----------------------------------------------------------------------
# Table 2 scenarios: one coordinator, one subordinate
# ----------------------------------------------------------------------
def basic_2pc_commit() -> ScenarioResult:
    cluster = _two_node_cluster(BASIC_2PC)
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pn_commit() -> ScenarioResult:
    cluster = _two_node_cluster(PRESUMED_NOTHING)
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_commit() -> ScenarioResult:
    cluster = _two_node_cluster(PRESUMED_ABORT)
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_abort() -> ScenarioResult:
    """The subordinate votes NO; PA writes and acknowledges nothing."""
    cluster = _two_node_cluster(PRESUMED_ABORT)
    spec = _updating_flat_tree("coord", ["sub"])
    spec.participant("sub").veto = True
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_read_only() -> ScenarioResult:
    cluster = _two_node_cluster(PRESUMED_ABORT)
    spec = flat_tree("coord", ["sub"])
    spec.participant("sub").ops.append(read_op("key"))
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_last_agent() -> ScenarioResult:
    cluster = _two_node_cluster(PRESUMED_ABORT.with_options(last_agent=True))
    spec = _updating_flat_tree("coord", ["sub"])
    spec.participant("sub").last_agent = True
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    return _result(cluster, spec, handle.outcome)


def pa_unsolicited_vote() -> ScenarioResult:
    cluster = _two_node_cluster(
        PRESUMED_ABORT.with_options(unsolicited_vote=True))
    spec = _updating_flat_tree("coord", ["sub"])
    spec.participant("sub").unsolicited_vote = True
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_leave_out() -> ScenarioResult:
    """The subordinate offered OK-TO-LEAVE-OUT last transaction and does
    no work in this one: zero flows, zero logs (Table 2's vote-out row).

    The measured transaction is the SECOND one; the first establishes
    the leave-out promise.
    """
    cluster = _two_node_cluster(PRESUMED_ABORT.with_options(leave_out=True))
    warmup = _updating_flat_tree("coord", ["sub"])
    warmup.participant("sub").ok_to_leave_out = True
    cluster.run_transaction(warmup)
    # The measured transaction touches nothing that requires phase two:
    # the row isolates the left-out partner's cost, which is zero.
    spec = flat_tree("coord", [])
    spec.participant("coord").ops.append(read_op("local"))
    handle = cluster.run_transaction(spec)
    metrics = cluster.metrics
    return ScenarioResult(
        outcome=handle.outcome,
        total=metrics.cost_summary(spec.txn_id),
        coordinator=metrics.node_costs("coord", spec.txn_id),
        subordinate=metrics.node_costs("sub", spec.txn_id),
        cluster=cluster, txn_id=spec.txn_id)


def pa_vote_reliable() -> ScenarioResult:
    """The subordinate's resources are reliable: its ack is waived."""
    cluster = Cluster(PRESUMED_ABORT.with_options(vote_reliable=True),
                      nodes=["coord", "sub"], reliable_nodes=["sub"])
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_wait_for_outcome() -> ScenarioResult:
    """Wait-for-outcome changes nothing in the failure-free case."""
    cluster = _two_node_cluster(
        PRESUMED_ABORT.with_options(wait_for_outcome=True, ack_timeout=30.0))
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


def pa_shared_logs() -> ScenarioResult:
    """The 'subordinate' is a detached local LRM sharing the TM's log:
    its records ride the TM's commit force (3 writes, 0 forced), and
    its 'flows' are the local prepare/vote/commit/ack exchanges."""
    cluster = Cluster(PRESUMED_ABORT.with_options(shared_log=True),
                      nodes=["coord"])
    cluster.node("coord").add_detached_rm("db")
    spec = flat_tree("coord", [])
    spec.participant("coord").rm_ops["db"] = [write_op("key", 1)]
    handle = cluster.run_transaction(spec)
    metrics = cluster.metrics
    lrm_flows = (metrics.local_flows.total(node="coord", kind="vote")
                 + metrics.local_flows.total(node="coord", kind="ack"))
    tm_flows = (metrics.local_flows.total(node="coord", kind="prepare")
                + metrics.local_flows.total(node="coord", kind="commit"))
    return ScenarioResult(
        outcome=handle.outcome,
        total=CostSummary(
            flows=lrm_flows + tm_flows,
            log_writes=metrics.total_log_writes(txn=spec.txn_id),
            forced_writes=metrics.forced_log_writes(txn=spec.txn_id)),
        coordinator=CostSummary(
            flows=tm_flows,
            log_writes=metrics.total_log_writes(node="coord",
                                                txn=spec.txn_id),
            forced_writes=metrics.forced_log_writes(node="coord",
                                                    txn=spec.txn_id)),
        subordinate=CostSummary(
            flows=lrm_flows,
            log_writes=metrics.total_log_writes(node="coord/db",
                                                txn=spec.txn_id),
            forced_writes=metrics.forced_log_writes(node="coord/db",
                                                    txn=spec.txn_id)),
        cluster=cluster, txn_id=spec.txn_id)


def pc_commit() -> ScenarioResult:
    cluster = _two_node_cluster(PRESUMED_COMMIT)
    spec = _updating_flat_tree("coord", ["sub"])
    handle = cluster.run_transaction(spec)
    return _result(cluster, spec, handle.outcome)


TABLE2_SCENARIOS: Dict[str, Callable[[], ScenarioResult]] = {
    "basic": basic_2pc_commit,
    "pn": pn_commit,
    "pa_commit": pa_commit,
    "pa_abort": pa_abort,
    "pa_read_only": pa_read_only,
    "pa_last_agent": pa_last_agent,
    "pa_unsolicited_vote": pa_unsolicited_vote,
    "pa_leave_out": pa_leave_out,
    "pa_vote_reliable": pa_vote_reliable,
    "pa_wait_for_outcome": pa_wait_for_outcome,
    "pa_shared_logs": pa_shared_logs,
    "pc_commit": pc_commit,
}


# ----------------------------------------------------------------------
# Table 3 scenarios: n members, m following one optimization
# ----------------------------------------------------------------------
def _names(n: int) -> List[str]:
    return [f"n{i}" for i in range(n)]


def run_table3_scenario(key: str, n: int, m: int,
                        base: Optional[ProtocolConfig] = None
                        ) -> ScenarioResult:
    """Run the (key, n, m) cell of Table 3 and return measured costs.

    ``base`` substitutes the presumption the optimization is layered
    on (the paper analyses over PA; PN and PC variants are our
    extension — see TABLE3_PN/PC_FORMULAS in formulas.py).
    """
    if key not in _TABLE3_RUNNERS:
        raise KeyError(f"unknown Table 3 scenario {key!r}")
    return _TABLE3_RUNNERS[key](n, m, base or PRESUMED_ABORT)


def _t3_basic(n: int, m: int, base: ProtocolConfig = BASIC_2PC
              ) -> ScenarioResult:
    del base  # the baseline row is always the Section 2 protocol
    cluster = Cluster(BASIC_2PC, nodes=_names(n))
    spec = _updating_flat_tree("n0", _names(n)[1:])
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_read_only(n: int, m: int,
                  base: ProtocolConfig = PRESUMED_ABORT) -> ScenarioResult:
    cluster = Cluster(base, nodes=_names(n))
    spec = flat_tree("n0", _names(n)[1:])
    for i, participant in enumerate(spec.participants):
        if 1 <= i <= m:
            participant.ops.append(read_op("shared"))
        else:
            participant.ops.append(write_op(f"key-{participant.node}", 1))
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_last_agent(n: int, m: int,
                   base: ProtocolConfig = PRESUMED_ABORT
                   ) -> ScenarioResult:
    """m last agents form a delegation chain hanging off the root."""
    names = _names(n)
    cluster = Cluster(base.with_options(last_agent=True), nodes=names)
    participants = [ParticipantSpec(node="n0",
                                    ops=[write_op("key-n0", 1)])]
    flat = names[1:n - m]
    chain = names[n - m:]
    for name in flat:
        participants.append(ParticipantSpec(
            node=name, parent="n0", ops=[write_op(f"key-{name}", 1)]))
    previous = "n0"
    for name in chain:
        participants.append(ParticipantSpec(
            node=name, parent=previous, ops=[write_op(f"key-{name}", 1)],
            last_agent=True))
        previous = name
    spec = TransactionSpec(participants=participants)
    handle = cluster.run_transaction(spec)
    cluster.finalize_implied_acks()
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_unsolicited(n: int, m: int,
                    base: ProtocolConfig = PRESUMED_ABORT
                    ) -> ScenarioResult:
    cluster = Cluster(base.with_options(unsolicited_vote=True),
                      nodes=_names(n))
    spec = _updating_flat_tree("n0", _names(n)[1:])
    for participant in spec.participants[1:m + 1]:
        participant.unsolicited_vote = True
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_leave_out(n: int, m: int,
                  base: ProtocolConfig = PRESUMED_ABORT
                  ) -> ScenarioResult:
    """Warm-up enrolls everyone with leave-out offers from m members;
    the measured transaction involves only the other n-m."""
    names = _names(n)
    cluster = Cluster(base.with_options(leave_out=True), nodes=names)
    warmup = _updating_flat_tree("n0", names[1:])
    for participant in warmup.participants[1:m + 1]:
        participant.ok_to_leave_out = True
    cluster.run_transaction(warmup)
    spec = _updating_flat_tree("n0", names[m + 1:])
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_vote_reliable(n: int, m: int,
                      base: ProtocolConfig = PRESUMED_ABORT
                      ) -> ScenarioResult:
    names = _names(n)
    cluster = Cluster(base.with_options(vote_reliable=True),
                      nodes=names, reliable_nodes=names[1:m + 1])
    spec = _updating_flat_tree("n0", names[1:])
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_wait_for_outcome(n: int, m: int,
                         base: ProtocolConfig = PRESUMED_ABORT
                         ) -> ScenarioResult:
    cluster = Cluster(base.with_options(wait_for_outcome=True,
                                        ack_timeout=30.0),
                      nodes=_names(n))
    spec = _updating_flat_tree("n0", _names(n)[1:])
    handle = cluster.run_transaction(spec)
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


def _t3_shared_logs(n: int, m: int,
                    base: ProtocolConfig = PRESUMED_ABORT
                    ) -> ScenarioResult:
    """m participants are detached LRMs on the coordinator sharing its
    log; the other n-1-m are remote subordinates.  Flows include the
    LRMs' local exchanges, as the paper's accounting does."""
    names = _names(n - m)
    cluster = Cluster(base.with_options(shared_log=True), nodes=names)
    for i in range(m):
        cluster.node("n0").add_detached_rm(f"lrm{i}")
    spec = _updating_flat_tree("n0", names[1:])
    for i in range(m):
        spec.participant("n0").rm_ops[f"lrm{i}"] = [write_op(f"lk{i}", 1)]
    handle = cluster.run_transaction(spec)
    metrics = cluster.metrics
    local = metrics.local_flows.total(node="n0")
    base = metrics.cost_summary(spec.txn_id)
    return ScenarioResult(
        handle.outcome,
        CostSummary(flows=base.flows + local, log_writes=base.log_writes,
                    forced_writes=base.forced_writes),
        cluster=cluster, txn_id=spec.txn_id)


def _t3_long_locks(n: int, m: int,
                   base: ProtocolConfig = PRESUMED_ABORT
                   ) -> ScenarioResult:
    cluster = Cluster(base.with_options(long_locks=True),
                      nodes=_names(n))
    spec = _updating_flat_tree("n0", _names(n)[1:])
    deferred_members = [p.node for p in spec.participants[1:m + 1]]
    for participant in spec.participants[1:m + 1]:
        participant.long_locks = True
    handle = cluster.run_transaction(spec)
    # The conversation continues: ordinary data from each long-locks
    # member carries its deferred ack (data flows only).
    for member in deferred_members:
        cluster.send_application_data(member, "n0")
    return ScenarioResult(handle.outcome, cluster.metrics.cost_summary(
        spec.txn_id), cluster=cluster, txn_id=spec.txn_id)


_TABLE3_RUNNERS: Dict[str, Callable[..., ScenarioResult]] = {
    "basic": _t3_basic,
    "read_only": _t3_read_only,
    "last_agent": _t3_last_agent,
    "unsolicited_vote": _t3_unsolicited,
    "leave_out": _t3_leave_out,
    "vote_reliable": _t3_vote_reliable,
    "wait_for_outcome": _t3_wait_for_outcome,
    "shared_logs": _t3_shared_logs,
    "long_locks": _t3_long_locks,
}


# ----------------------------------------------------------------------
# Table 4 scenarios: r chained 2-member transactions
# ----------------------------------------------------------------------
def run_table4_scenario(variant: str, r: int) -> CostSummary:
    """Measured costs of r chained transactions under one variant."""
    if variant == "basic":
        config = PRESUMED_ABORT
    elif variant == "long_locks":
        config = PRESUMED_ABORT.with_options(long_locks=True)
    elif variant == "long_locks_last_agent":
        if r % 2:
            raise ValueError("the paired pattern needs an even r")
        config = PRESUMED_ABORT.with_options(long_locks=True,
                                             last_agent=True)
    else:
        raise ValueError(f"unknown variant {variant!r}")

    cluster = Cluster(config, nodes=["a", "b"])
    txn_ids = []
    for i in range(r):
        root, other = ("a", "b") if i % 2 == 0 else ("b", "a")
        participants = [
            ParticipantSpec(node=root, ops=[write_op(f"r{i}", i)]),
            ParticipantSpec(node=other, parent=root,
                            ops=[write_op(f"s{i}", i)],
                            last_agent=(variant == "long_locks_last_agent")),
        ]
        # In the paired last-agent pattern the first transaction of each
        # pair defers its decision onto the second's traffic.
        long_locks = (variant == "long_locks" or
                      (variant == "long_locks_last_agent" and i % 2 == 0))
        spec = TransactionSpec(participants=participants,
                               long_locks=long_locks)
        cluster.run_transaction(spec)
        txn_ids.append(spec.txn_id)
    # Close the chain: the conversations continue with ordinary data,
    # which carries the final deferred/implied acks (data flows only).
    cluster.send_application_data("a", "b")
    cluster.send_application_data("b", "a")
    cluster.finalize_implied_acks()
    flows = sum(cluster.metrics.commit_flows(txn=txn) for txn in txn_ids)
    writes = sum(cluster.metrics.total_log_writes(txn=txn)
                 for txn in txn_ids)
    forced = sum(cluster.metrics.forced_log_writes(txn=txn)
                 for txn in txn_ids)
    return CostSummary(flows=flows, log_writes=writes, forced_writes=forced)
