"""Small statistics helpers for the Monte-Carlo studies.

Plain-Python implementations (mean, standard deviation, normal-theory
and bootstrap confidence intervals) so the benchmark reports can state
uncertainty, not just point estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

from repro.sim.randomness import RandomStream


@dataclass(frozen=True)
class Summary:
    """Point estimate with a confidence interval."""

    mean: float
    stddev: float
    low: float
    high: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}]"


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stddev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); zero for fewer than 2 points."""
    if len(values) < 2:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((v - centre) ** 2 for v in values)
                     / (len(values) - 1))


def normal_ci(values: Sequence[float], z: float = 1.96) -> Summary:
    """Normal-theory CI around the mean (z=1.96 for ~95%)."""
    if not values:
        raise ValueError("CI of empty sequence")
    centre = mean(values)
    spread = stddev(values)
    half = z * spread / math.sqrt(len(values))
    return Summary(mean=centre, stddev=spread, low=centre - half,
                   high=centre + half, n=len(values))


def bootstrap_ci(values: Sequence[float], rng: RandomStream,
                 resamples: int = 1000,
                 confidence: float = 0.95) -> Summary:
    """Percentile-bootstrap CI around the mean."""
    if not values:
        raise ValueError("CI of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1): {confidence}")
    values = list(values)
    means: List[float] = []
    for __ in range(resamples):
        sample = [values[rng.randint(0, len(values) - 1)]
                  for __ in values]
        means.append(mean(sample))
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = int(alpha * resamples)
    high_index = min(resamples - 1, int((1.0 - alpha) * resamples))
    return Summary(mean=mean(values), stddev=stddev(values),
                   low=means[low_index], high=means[high_index],
                   n=len(values))
