"""Table 1: the qualitative advantage/disadvantage matrix.

Reproduced verbatim from the paper, with a machine-checkable mapping
onto the library's behaviour: each row names the metrics the test
suite verifies the advantage/disadvantage against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class Table1Row:
    optimization: str
    advantages: str
    disadvantages: str
    #: Which measurable effects our tests verify for this row.
    verified_by: List[str] = field(default_factory=list)


TABLE1: List[Table1Row] = [
    Table1Row(
        "Read Only",
        "fewer messages, fewer log writes, early release of locks",
        "no knowledge of the outcome of a transaction, potential "
        "serializability problems",
        verified_by=["commit flows -2m", "log writes -3m",
                     "lock release at prepare time",
                     "serialization anomaly demo (peer environment)"]),
    Table1Row(
        "Last Agent",
        "fewer messages, early release of locks",
        "one extra forced write possible",
        verified_by=["commit flows -2m",
                     "PA initiator force-writes prepared before delegating"]),
    Table1Row(
        "Unsolicited Vote",
        "fewer messages, early release of locks",
        "application specific",
        verified_by=["commit flows -m",
                     "participant must know its work is finished"]),
    Table1Row(
        "OK To Leave Out",
        "no log writes, no messages",
        "partitioned-tree hazard if the left-out partner is not truly "
        "suspended (paper Figure 5)",
        verified_by=["zero flows/writes for left-out members",
                     "figure-5 damage demonstration"]),
    Table1Row(
        "Vote Reliable",
        "fewer message flows",
        "damage reporting to root coordinator lost if reliable resource "
        "does take a heuristic decision",
        verified_by=["commit flows -m",
                     "heuristic report loss test"]),
    Table1Row(
        "Wait For Outcome",
        "2PC doesn't block for most network partitions",
        "complete outcome of transaction may not be known by coordinator",
        verified_by=["commit completes with outcome-pending under "
                     "partition", "background recovery resolves later"]),
    Table1Row(
        "Long Locks",
        "fewer network flows",
        "commit decision can be delayed and locks held longer if combined "
        "with last-agent optimization, and no messages flow for the next "
        "transaction (application design problem)",
        verified_by=["commit flows 3r / 3r/2",
                     "coordinator lock-hold stretch measurement"]),
    Table1Row(
        "Shared Logs",
        "fewer forced writes",
        "independence of resource manager and transaction manager "
        "sacrificed",
        verified_by=["LRM protocol records 0 forced",
                     "crash before TM force loses both records "
                     "consistently (abort)"]),
    Table1Row(
        "Group Commit",
        "fewer forced writes, overall system throughput maximized",
        "longer lock holding times for individual transactions",
        verified_by=["physical I/Os ~ F/g", "mean lock hold increases "
                     "with group size"]),
]
