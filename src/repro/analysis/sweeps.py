"""Parameter-sweep framework.

Structured sweeps over the simulator — tree size, tree depth, link
speed, read-only fraction — producing row dictionaries that render as
tables or CSV.  Used by ``benchmarks/bench_scaling.py`` and available
to downstream users who want the shape of a curve rather than one
point.

Each sweep is a grid of independent *cells*; cells are module-level
functions so they shard across worker processes via
:mod:`repro.parallel.pool`.  Every sweep takes ``workers`` (default:
the ``REPRO_SWEEP_WORKERS`` environment knob, serial when unset) and
returns rows in grid order regardless of worker scheduling.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
    ProtocolConfig,
)
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import read_op, write_op
from repro.net.latency import ConstantLatency
from repro.parallel.pool import sweep
from repro.workload.trees import balanced_tree_spec, chain_spec, flat_spec

Row = Dict[str, object]

PRESUMPTIONS: Dict[str, ProtocolConfig] = {
    "basic": BASIC_2PC,
    "pa": PRESUMED_ABORT,
    "pn": PRESUMED_NOTHING,
    "pc": PRESUMED_COMMIT,
}


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render sweep rows as CSV (stable column order from first row)."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        if set(row.keys()) != set(columns):
            raise ValueError(f"inconsistent row keys: {sorted(row)} vs "
                             f"{columns}")
        out.write(",".join(str(row[c]) for c in columns) + "\n")
    return out.getvalue()


def _run_spec(config: ProtocolConfig, spec: TransactionSpec,
              latency: float = 1.0) -> Row:
    nodes = [p.node for p in spec.participants]
    cluster = Cluster(config, nodes=nodes,
                      latency=ConstantLatency(latency))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    return {
        "flows": cluster.metrics.commit_flows(txn=spec.txn_id),
        "writes": cluster.metrics.total_log_writes(txn=spec.txn_id),
        "forced": cluster.metrics.forced_log_writes(txn=spec.txn_id),
        "latency": round(handle.latency, 3),
    }


# ----------------------------------------------------------------------
# Sweep cells: one independent simulation each, picklable by reference.
# ----------------------------------------------------------------------
def tree_size_cell(n: int, presumption: str) -> Row:
    """One flat tree of ``n`` members under one presumption."""
    names = [f"n{i}" for i in range(n)]
    spec = flat_spec(names)
    result = _run_spec(PRESUMPTIONS[presumption], spec)
    return {"n": n, "presumption": presumption, **result}


def tree_depth_cell(total_nodes: int, fanout: int) -> Row:
    """One shape of a ``total_nodes``-member commit tree."""
    names = [f"n{i}" for i in range(total_nodes)]
    spec = (chain_spec(names) if fanout == 1
            else balanced_tree_spec(names, fanout=fanout))
    result = _run_spec(PRESUMED_ABORT, spec)
    return {"shape": f"fanout-{fanout}", **result}


def read_only_cell(n: int, readers: int) -> Row:
    """Flat tree of ``n`` with the first ``readers`` children reading."""
    names = [f"n{i}" for i in range(n)]
    participants = [ParticipantSpec(node="n0",
                                    ops=[write_op("root-key", 1)])]
    for index, name in enumerate(names[1:]):
        ops = ([read_op("catalogue")] if index < readers
               else [write_op(f"k-{name}", 1)])
        participants.append(ParticipantSpec(node=name, parent="n0",
                                            ops=ops))
    spec = TransactionSpec(participants=participants)
    result = _run_spec(PRESUMED_ABORT, spec)
    return {"readers": readers, **result}


def link_speed_cell(delay: float, n: int) -> Row:
    """One flat tree under one one-way link delay."""
    names = [f"n{i}" for i in range(n)]
    spec = flat_spec(names)
    result = _run_spec(PRESUMED_ABORT, spec, latency=delay)
    return {"link_delay": delay, **result}


# ----------------------------------------------------------------------
# Sweeps: grids of cells, dispatched through the parallel engine.
# ----------------------------------------------------------------------
def sweep_tree_size(sizes: Sequence[int],
                    presumptions: Sequence[str] = ("basic", "pa", "pn",
                                                   "pc"),
                    workers: Optional[int] = None) -> List[Row]:
    """Flat trees: cost vs participant count, per presumption."""
    grid = [{"n": n, "presumption": name}
            for n in sizes for name in presumptions]
    return sweep(tree_size_cell, grid, workers=workers,
                 label=lambda p: f"tree-size n={p['n']} "
                                 f"{p['presumption']}")


def sweep_tree_depth(total_nodes: int,
                     fanouts: Sequence[int],
                     workers: Optional[int] = None) -> List[Row]:
    """Same node count, different shapes: latency grows with depth
    while flows stay constant (4 per edge regardless of shape)."""
    grid = [{"total_nodes": total_nodes, "fanout": fanout}
            for fanout in fanouts]
    return sweep(tree_depth_cell, grid, workers=workers,
                 label=lambda p: f"tree-depth fanout={p['fanout']}")


def sweep_read_only_fraction(n: int,
                             reader_counts: Sequence[int],
                             workers: Optional[int] = None) -> List[Row]:
    """Flat tree of n: cost vs how many members are read-only."""
    grid = [{"n": n, "readers": readers} for readers in reader_counts]
    return sweep(read_only_cell, grid, workers=workers,
                 label=lambda p: f"read-only readers={p['readers']}")


def sweep_link_speed(latencies: Sequence[float],
                     n: int = 4,
                     workers: Optional[int] = None) -> List[Row]:
    """Commit latency vs one-way link delay (flows are invariant)."""
    grid = [{"delay": delay, "n": n} for delay in latencies]
    return sweep(link_speed_cell, grid, workers=workers,
                 label=lambda p: f"link-speed delay={p['delay']}")
