"""Parameter-sweep framework.

Structured sweeps over the simulator — tree size, tree depth, link
speed, read-only fraction — producing row dictionaries that render as
tables or CSV.  Used by ``benchmarks/bench_scaling.py`` and available
to downstream users who want the shape of a curve rather than one
point.
"""

from __future__ import annotations

import io
from typing import Callable, Dict, List, Sequence

from repro.core.cluster import Cluster
from repro.core.config import (
    BASIC_2PC,
    PRESUMED_ABORT,
    PRESUMED_COMMIT,
    PRESUMED_NOTHING,
    ProtocolConfig,
)
from repro.core.spec import ParticipantSpec, TransactionSpec
from repro.lrm.operations import read_op, write_op
from repro.net.latency import ConstantLatency
from repro.workload.trees import balanced_tree_spec, chain_spec, flat_spec

Row = Dict[str, object]

PRESUMPTIONS: Dict[str, ProtocolConfig] = {
    "basic": BASIC_2PC,
    "pa": PRESUMED_ABORT,
    "pn": PRESUMED_NOTHING,
    "pc": PRESUMED_COMMIT,
}


def rows_to_csv(rows: Sequence[Row]) -> str:
    """Render sweep rows as CSV (stable column order from first row)."""
    if not rows:
        return ""
    columns = list(rows[0].keys())
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for row in rows:
        if set(row.keys()) != set(columns):
            raise ValueError(f"inconsistent row keys: {sorted(row)} vs "
                             f"{columns}")
        out.write(",".join(str(row[c]) for c in columns) + "\n")
    return out.getvalue()


def _run_spec(config: ProtocolConfig, spec: TransactionSpec,
              latency: float = 1.0) -> Row:
    nodes = [p.node for p in spec.participants]
    cluster = Cluster(config, nodes=nodes,
                      latency=ConstantLatency(latency))
    handle = cluster.run_transaction(spec)
    assert handle.committed
    return {
        "flows": cluster.metrics.commit_flows(txn=spec.txn_id),
        "writes": cluster.metrics.total_log_writes(txn=spec.txn_id),
        "forced": cluster.metrics.forced_log_writes(txn=spec.txn_id),
        "latency": round(handle.latency, 3),
    }


def sweep_tree_size(sizes: Sequence[int],
                    presumptions: Sequence[str] = ("basic", "pa", "pn",
                                                   "pc")) -> List[Row]:
    """Flat trees: cost vs participant count, per presumption."""
    rows: List[Row] = []
    for n in sizes:
        names = [f"n{i}" for i in range(n)]
        for name in presumptions:
            spec = flat_spec(names)
            result = _run_spec(PRESUMPTIONS[name], spec)
            rows.append({"n": n, "presumption": name, **result})
    return rows


def sweep_tree_depth(total_nodes: int,
                     fanouts: Sequence[int]) -> List[Row]:
    """Same node count, different shapes: latency grows with depth
    while flows stay constant (4 per edge regardless of shape)."""
    rows: List[Row] = []
    names = [f"n{i}" for i in range(total_nodes)]
    for fanout in fanouts:
        spec = (chain_spec(names) if fanout == 1
                else balanced_tree_spec(names, fanout=fanout))
        result = _run_spec(PRESUMED_ABORT, spec)
        rows.append({"shape": f"fanout-{fanout}", **result})
    return rows


def sweep_read_only_fraction(n: int,
                             reader_counts: Sequence[int]) -> List[Row]:
    """Flat tree of n: cost vs how many members are read-only."""
    rows: List[Row] = []
    names = [f"n{i}" for i in range(n)]
    for readers in reader_counts:
        participants = [ParticipantSpec(node="n0",
                                        ops=[write_op("root-key", 1)])]
        for index, name in enumerate(names[1:]):
            ops = ([read_op("catalogue")] if index < readers
                   else [write_op(f"k-{name}", 1)])
            participants.append(ParticipantSpec(node=name, parent="n0",
                                                ops=ops))
        spec = TransactionSpec(participants=participants)
        result = _run_spec(PRESUMED_ABORT, spec)
        rows.append({"readers": readers, **result})
    return rows


def sweep_link_speed(latencies: Sequence[float],
                     n: int = 4) -> List[Row]:
    """Commit latency vs one-way link delay (flows are invariant)."""
    rows: List[Row] = []
    names = [f"n{i}" for i in range(n)]
    for delay in latencies:
        spec = flat_spec(names)
        result = _run_spec(PRESUMED_ABORT, spec, latency=delay)
        rows.append({"link_delay": delay, **result})
    return rows
