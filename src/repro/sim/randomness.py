"""Named, independently seeded random streams.

Each subsystem (network jitter, workload generation, fault injection)
draws from its own stream so that changing how one subsystem consumes
randomness does not perturb the others.  Streams are derived from a
single root seed, keeping whole runs reproducible.
"""

from __future__ import annotations

import random
import zlib
from typing import Dict, Sequence, TypeVar

T = TypeVar("T")


class RandomStream:
    """A seeded random stream with the handful of draws the simulator needs."""

    def __init__(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self.seed = seed

    def uniform(self, low: float, high: float) -> float:
        if high < low:
            raise ValueError(f"uniform bounds reversed: [{low}, {high}]")
        return self._rng.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self._rng.expovariate(rate)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def random(self) -> float:
        return self._rng.random()

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability out of range: {probability}")
        return self._rng.random() < probability

    def choice(self, items: Sequence[T]) -> T:
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self._rng.choice(items)

    def sample(self, items: Sequence[T], count: int) -> list:
        return self._rng.sample(items, count)

    def shuffle(self, items: list) -> None:
        self._rng.shuffle(items)


class StreamFactory:
    """Derives named :class:`RandomStream` instances from one root seed."""

    def __init__(self, root_seed: int = 0) -> None:
        self.root_seed = root_seed
        self._streams: Dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it deterministically."""
        if name not in self._streams:
            derived = zlib.crc32(name.encode("utf-8")) ^ (self.root_seed & 0xFFFFFFFF)
            self._streams[name] = RandomStream(derived)
        return self._streams[name]
