"""The simulator: a virtual clock driving an event queue.

The kernel is intentionally tiny — protocol correctness lives in the
layers above.  It offers:

* ``schedule(delay, action)`` / ``at(time, action)`` — one-shot events;
* ``Timer`` — cancellable timeout handle (heuristic timeouts, group
  commit timers, retry timers);
* ``run()`` / ``run_until(t)`` / ``step()`` — main loops with an
  event-count safety valve so a protocol bug cannot spin forever;
* trace hooks used by :mod:`repro.trace` to build sequence diagrams.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional

from repro.sim.events import Event, EventQueue
from repro.sim.randomness import RandomStream, StreamFactory


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, runaway loops)."""


class EventInterrupt(Exception):
    """Abandon the rest of the currently firing event.

    Raised from *inside* an event action (typically by a fault-injection
    hook observing a log write or message send), it unwinds the action
    at exactly that point: everything the action did before the raise
    stands, everything after it never happens.  The kernel catches it,
    runs ``on_interrupt`` (where a fault injector crashes the node), and
    continues with the next event — which is precisely the semantics of
    a node failing mid-operation.
    """

    def __init__(self,
                 on_interrupt: Optional[Callable[[], None]] = None) -> None:
        super().__init__("event interrupted")
        self.on_interrupt = on_interrupt

    def apply(self) -> None:
        if self.on_interrupt is not None:
            self.on_interrupt()


class KernelProfilerProtocol:
    """What the kernel asks of a profiler (see repro.obs.profiler).

    Defined here, duck-typed, so the simulator layer never imports the
    observability layer.
    """

    def record(self, event: Event, seconds: float) -> None:
        raise NotImplementedError


class Timer:
    """A cancellable handle for a scheduled timeout.

    A thin view over the underlying :class:`Event`, whose lifecycle
    state is authoritative — no shadow flags to keep in sync.
    """

    __slots__ = ("_simulator", "_event")

    def __init__(self, simulator: "Simulator", event: Event) -> None:
        self._simulator = simulator
        self._event = event

    @property
    def fired(self) -> bool:
        return self._event.fired

    @property
    def active(self) -> bool:
        return not self._event.fired and not self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the timeout if it has not fired yet."""
        return self._simulator._queue.cancel(self._event)


class Simulator:
    """Deterministic discrete-event simulator with named random streams."""

    #: Safety valve: aborts run loops after this many events unless the
    #: caller raises the limit explicitly.
    DEFAULT_MAX_EVENTS = 5_000_000

    #: Class-level opt-in profiler: simulators built while this is set
    #: (e.g. inside sweep cells the caller cannot reach) profile into
    #: it.  ``None`` — the default — keeps the run loop on the same
    #: branch-per-event fast path as the trace-hook skip.
    default_profiler: Optional["KernelProfilerProtocol"] = None

    def __init__(self, seed: int = 0) -> None:
        self.now: float = 0.0
        self._queue = EventQueue()
        self._streams = StreamFactory(seed)
        self._event_hooks: List[Callable[[Event], None]] = []
        self._profiler = Simulator.default_profiler
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Random streams
    # ------------------------------------------------------------------
    def stream(self, name: str) -> RandomStream:
        """Named random stream (stable across runs for a given root seed)."""
        return self._streams.stream(name)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None],
                 name: str = "", priority: int = 0) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, action, name=name,
                                priority=priority)

    def at(self, time: float, action: Callable[[], None],
           name: str = "", priority: int = 0) -> Event:
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time}, clock already at {self.now}")
        return self._queue.push(time, action, name=name, priority=priority)

    def call_soon(self, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` at the current instant (after pending events)."""
        return self._queue.push(self.now, action, name=name)

    def timer(self, delay: float, action: Callable[[], None],
              name: str = "timer") -> Timer:
        """Schedule a cancellable timeout."""
        return Timer(self, self.schedule(delay, action, name=name))

    def cancel(self, event: Event) -> bool:
        return self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def add_event_hook(self, hook: Callable[[Event], None]) -> None:
        """Register a hook invoked before every event fires (tracing)."""
        self._event_hooks.append(hook)

    def remove_event_hook(self, hook: Callable[[Event], None]) -> None:
        """Remove a previously added event hook (idempotent)."""
        try:
            self._event_hooks.remove(hook)
        except ValueError:
            pass

    def set_profiler(self,
                     profiler: Optional["KernelProfilerProtocol"]) -> None:
        """Install (or with ``None`` remove) an event-handling profiler.

        The profiler's ``record(event, seconds)`` is called with the
        wall-clock cost of every event action.  Takes effect on the
        next ``run()``/``step()`` entry.
        """
        self._profiler = profiler

    @property
    def profiler(self) -> Optional["KernelProfilerProtocol"]:
        return self._profiler

    def step(self) -> bool:
        """Fire the next event.  Returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event {event.name!r} is in the past "
                f"({event.time} < {self.now})")
        self.now = event.time
        self.events_processed += 1
        if self._event_hooks:
            for hook in self._event_hooks:
                hook(event)
        profiler = self._profiler
        try:
            if profiler is None:
                event.action()
            else:
                began = perf_counter()
                try:
                    event.action()
                finally:
                    profiler.record(event, perf_counter() - began)
        except EventInterrupt as interrupt:
            interrupt.apply()
        return True

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains.

        This is the kernel's hottest loop; it inlines :meth:`step` so a
        million-event run pays one method call per event (the queue
        pop) rather than three.
        """
        limit = max_events if max_events is not None else self.DEFAULT_MAX_EVENTS
        pop = self._queue.pop
        hooks = self._event_hooks
        profiler = self._profiler
        fired = 0
        while True:
            event = pop()
            if event is None:
                return
            time = event.time
            if time < self.now:
                raise SimulationError(
                    f"event {event.name!r} is in the past "
                    f"({time} < {self.now})")
            self.now = time
            self.events_processed += 1
            if hooks:
                for hook in hooks:
                    hook(event)
            try:
                if profiler is None:
                    event.action()
                else:
                    began = perf_counter()
                    try:
                        event.action()
                    finally:
                        profiler.record(event, perf_counter() - began)
            except EventInterrupt as interrupt:
                interrupt.apply()
            fired += 1
            if fired >= limit:
                raise SimulationError(
                    f"run() exceeded {limit} events — likely a protocol "
                    f"livelock (clock at {self.now})")

    def run_until(self, time: float, max_events: Optional[int] = None) -> None:
        """Run events with fire time <= ``time``; clock ends at ``time``."""
        if time < self.now:
            raise SimulationError(
                f"run_until({time}) but clock already at {self.now}")
        limit = max_events if max_events is not None else self.DEFAULT_MAX_EVENTS
        fired = 0
        while True:
            next_time = self._queue.peek_time()
            if next_time is None or next_time > time:
                break
            self.step()
            fired += 1
            if fired >= limit:
                raise SimulationError(
                    f"run_until() exceeded {limit} events (clock at {self.now})")
        self.now = max(self.now, time)

    def run_while(self, condition: Callable[[], bool],
                  max_events: Optional[int] = None) -> None:
        """Run while ``condition()`` holds and events remain."""
        limit = max_events if max_events is not None else self.DEFAULT_MAX_EVENTS
        fired = 0
        while condition():
            if not self.step():
                return
            fired += 1
            if fired >= limit:
                raise SimulationError(
                    f"run_while() exceeded {limit} events (clock at {self.now})")

    @property
    def pending_events(self) -> int:
        return len(self._queue)
